//! Fixed-bin histogram for transmission-time distributions.
//!
//! Fig. 3 of the paper shows per-connection transmission times scattering
//! around the mean with a long straggler tail; the experiment code uses this
//! histogram to report that distribution in text form.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed `[lo, hi)` range with equal-width bins.
///
/// Out-of-range samples are counted in saturating underflow/overflow buckets
/// rather than dropped, so the total count is always the number of pushes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` — both indicate programmer error
    /// at experiment-definition time, not data-dependent failure.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Floating-point edge: value just below `hi` can round to len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of samples, including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Number of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts, lowest bin first.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(lower_edge, upper_edge, count)` per bin.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + width * i as f64;
            (lo, lo + width, c)
        })
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, hi, c) in self.iter_bins() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "[{lo:>12.6}, {hi:>12.6}) {c:>8} {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0);
        h.push(0.5);
        h.push(9.99);
        h.push(5.0);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_counted_not_dropped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // upper edge is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn value_just_below_hi_stays_in_last_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.push(3.0 - 1e-12);
        assert_eq!(h.bins()[2], 1);
    }

    #[test]
    fn iter_bins_edges_tile_the_range() {
        let h = Histogram::new(1.0, 2.0, 4);
        let edges: Vec<(f64, f64, u64)> = h.iter_bins().collect();
        assert_eq!(edges.len(), 4);
        assert!((edges[0].0 - 1.0).abs() < 1e-12);
        assert!((edges[3].1 - 2.0).abs() < 1e-12);
        for w in edges.windows(2) {
            assert!((w[0].1 - w[1].0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for i in 0..8 {
            h.push(i as f64 / 2.0);
        }
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 4);
    }
}
