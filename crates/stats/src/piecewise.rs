//! Piecewise-affine least squares with breakpoint search.
//!
//! The contention-signature model (paper §7, eq. 5) is
//!
//! ```text
//! T(m) = γ·L(m)              if m <  M
//! T(m) = γ·L(m) + δ·s        if m ≥  M
//! ```
//!
//! where `L(m)` is the contention-free lower bound and `s` the per-round
//! multiplier of the start-up overhead (the paper uses `s = n−1`: "each
//! simultaneous communication induces an overload of 8.23 ms"). Given
//! measurements at one node count, this module fits `(γ, δ)` by least
//! squares for every candidate breakpoint `M` drawn from the observed
//! message sizes and selects the breakpoint by AIC, so a pure-linear model
//! (Myrinet: δ ≈ 0) is preferred when the step buys nothing.

use crate::error::StatsError;
use crate::matrix::Matrix;
use crate::regression::ols;
use serde::{Deserialize, Serialize};

/// Inputs for the piecewise fit. All slices are indexed per observation.
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseSpec<'a> {
    /// Abscissa used for breakpoint ordering (message size `m_i`).
    pub abscissa: &'a [f64],
    /// Multiplier of the slope coefficient γ (the lower bound `L(m_i)`).
    pub slope_basis: &'a [f64],
    /// Multiplier of the step coefficient δ once `m_i ≥ M` (typically `n−1`).
    pub step_basis: &'a [f64],
    /// Observed completion times `T_i`.
    pub observations: &'a [f64],
}

/// Result of the piecewise fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseAffineFit {
    /// Slope coefficient (the contention ratio γ).
    pub gamma: f64,
    /// Step coefficient (the per-round start-up overhead δ, in observation
    /// units); zero when no breakpoint was selected.
    pub delta: f64,
    /// Chosen breakpoint `M`; `None` when the pure-linear model won.
    pub cutoff: Option<f64>,
    /// Residual sum of squares of the winning model.
    pub rss: f64,
    /// R² of the winning model.
    pub r_squared: f64,
}

impl PiecewiseAffineFit {
    /// Evaluates the fitted model for one point.
    pub fn predict(&self, abscissa: f64, slope_basis: f64, step_basis: f64) -> f64 {
        let step = match self.cutoff {
            Some(m) if abscissa >= m => self.delta * step_basis,
            _ => 0.0,
        };
        self.gamma * slope_basis + step
    }
}

fn aic(n: usize, rss: f64, k: usize) -> f64 {
    // Gaussian-likelihood AIC up to constants; guard rss=0 exact fits.
    let n_f = n as f64;
    n_f * (rss.max(1e-300) / n_f).ln() + 2.0 * k as f64
}

/// Fits the piecewise model, searching breakpoints over the distinct
/// abscissa values. Set `nonnegative_delta` to reject step fits with δ < 0
/// (a "negative start-up cost" is physically meaningless in the paper's
/// model, and arises only from noise).
pub fn fit_piecewise(
    spec: &PiecewiseSpec<'_>,
    nonnegative_delta: bool,
) -> Result<PiecewiseAffineFit, StatsError> {
    let n = spec.observations.len();
    if spec.abscissa.len() != n || spec.slope_basis.len() != n || spec.step_basis.len() != n {
        return Err(StatsError::LengthMismatch {
            left: spec.abscissa.len(),
            right: n,
        });
    }
    // The paper: "comparing at least four measurement points in order to
    // better fit the performance curve".
    if n < 4 {
        return Err(StatsError::InsufficientData { needed: 4, got: n });
    }
    if spec
        .abscissa
        .iter()
        .chain(spec.slope_basis)
        .chain(spec.step_basis)
        .chain(spec.observations)
        .any(|v| !v.is_finite())
    {
        return Err(StatsError::NonFiniteInput);
    }

    // Candidate 0: pure proportional model T = γ·L.
    let rows: Vec<Vec<f64>> = spec.slope_basis.iter().map(|&l| vec![l]).collect();
    let design = Matrix::from_rows(&rows)?;
    let linear = ols(&design, spec.observations)?;
    let mut best = PiecewiseAffineFit {
        gamma: linear.coefficients[0],
        delta: 0.0,
        cutoff: None,
        rss: linear.rss,
        r_squared: linear.r_squared,
    };
    let mut best_aic = aic(n, linear.rss, 1);

    // Candidate breakpoints: every distinct abscissa value. A breakpoint at
    // the minimum means every observation pays the step (the Fast Ethernet
    // case, where M is below the sampled sizes).
    let mut cutoffs: Vec<f64> = spec.abscissa.to_vec();
    cutoffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cutoffs.dedup();

    for &m_cut in &cutoffs {
        let active: usize = spec.abscissa.iter().filter(|&&a| a >= m_cut).count();
        if active < 2 {
            continue; // a single stepped point cannot constrain δ
        }
        let rows: Vec<Vec<f64>> = spec
            .abscissa
            .iter()
            .zip(spec.slope_basis)
            .zip(spec.step_basis)
            .map(|((&a, &l), &s)| vec![l, if a >= m_cut { s } else { 0.0 }])
            .collect();
        let design = Matrix::from_rows(&rows)?;
        let fit = match ols(&design, spec.observations) {
            Ok(f) => f,
            Err(StatsError::SingularMatrix) => continue, // step column ∝ slope
            Err(e) => return Err(e),
        };
        let delta = fit.coefficients[1];
        if nonnegative_delta && delta < 0.0 {
            continue;
        }
        let candidate_aic = aic(n, fit.rss, 2);
        if candidate_aic < best_aic {
            best_aic = candidate_aic;
            best = PiecewiseAffineFit {
                gamma: fit.coefficients[0],
                delta,
                cutoff: Some(m_cut),
                rss: fit.rss,
                r_squared: fit.r_squared,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(
        abscissa: &'a [f64],
        slope: &'a [f64],
        step: &'a [f64],
        obs: &'a [f64],
    ) -> PiecewiseSpec<'a> {
        PiecewiseSpec {
            abscissa,
            slope_basis: slope,
            step_basis: step,
            observations: obs,
        }
    }

    #[test]
    fn pure_linear_data_selects_no_cutoff() {
        let m: Vec<f64> = (1..=8).map(|i| i as f64 * 1000.0).collect();
        let l: Vec<f64> = m.iter().map(|&v| 2.0 + v * 0.001).collect();
        let s = vec![23.0; 8];
        let obs: Vec<f64> = l.iter().map(|&v| 2.5 * v).collect();
        let fit = fit_piecewise(&spec(&m, &l, &s, &obs), true).unwrap();
        assert!(fit.cutoff.is_none());
        assert!((fit.gamma - 2.5).abs() < 1e-9);
        assert_eq!(fit.delta, 0.0);
    }

    #[test]
    fn recovers_step_and_cutoff() {
        // γ = 4.36, δ = 0.005 per unit step basis, M = 8192.
        let m: Vec<f64> = vec![1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 65536.0, 262144.0];
        let l: Vec<f64> = m.iter().map(|&v| 39.0 * (50e-6 + v * 8.5e-9)).collect();
        let s = vec![39.0; m.len()];
        let obs: Vec<f64> = m
            .iter()
            .zip(&l)
            .map(|(&mi, &li)| 4.36 * li + if mi >= 8192.0 { 0.005 * 39.0 } else { 0.0 })
            .collect();
        let fit = fit_piecewise(&spec(&m, &l, &s, &obs), true).unwrap();
        assert_eq!(fit.cutoff, Some(8192.0));
        assert!((fit.gamma - 4.36).abs() < 1e-6, "gamma = {}", fit.gamma);
        assert!((fit.delta - 0.005).abs() < 1e-9, "delta = {}", fit.delta);
    }

    #[test]
    fn cutoff_at_minimum_means_all_points_stepped() {
        // Affine everywhere: T = γL + δs for every point.
        let m: Vec<f64> = vec![16.0, 32.0, 64.0, 128.0, 256.0];
        let l: Vec<f64> = m.iter().map(|&v| v * 0.01).collect();
        let s = vec![23.0; m.len()];
        let obs: Vec<f64> = l.iter().map(|&li| 1.02 * li + 0.00823 * 23.0).collect();
        let fit = fit_piecewise(&spec(&m, &l, &s, &obs), true).unwrap();
        assert_eq!(fit.cutoff, Some(16.0));
        assert!((fit.gamma - 1.02).abs() < 1e-6);
        assert!((fit.delta - 0.00823).abs() < 1e-9);
    }

    #[test]
    fn nonnegative_constraint_rejects_negative_step() {
        let m: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let l = m.clone();
        let s = vec![1.0; m.len()];
        // Step *down* after m ≥ 4 — disallowed, so expect the plain fit.
        let obs: Vec<f64> = m
            .iter()
            .map(|&mi| 2.0 * mi - if mi >= 4.0 { 1.0 } else { 0.0 })
            .collect();
        let constrained = fit_piecewise(&spec(&m, &l, &s, &obs), true).unwrap();
        assert!(constrained.delta >= 0.0);
        let unconstrained = fit_piecewise(&spec(&m, &l, &s, &obs), false).unwrap();
        assert_eq!(unconstrained.cutoff, Some(4.0));
        assert!(unconstrained.delta < 0.0);
        assert!(unconstrained.rss <= constrained.rss);
    }

    #[test]
    fn too_few_points_rejected() {
        let m = [1.0, 2.0, 3.0];
        let fit = fit_piecewise(&spec(&m, &m, &m, &m), true);
        assert!(matches!(fit, Err(StatsError::InsufficientData { .. })));
    }

    #[test]
    fn predict_applies_step_only_at_or_above_cutoff() {
        let fit = PiecewiseAffineFit {
            gamma: 2.0,
            delta: 0.5,
            cutoff: Some(10.0),
            rss: 0.0,
            r_squared: 1.0,
        };
        assert_eq!(fit.predict(5.0, 1.0, 4.0), 2.0);
        assert_eq!(fit.predict(10.0, 1.0, 4.0), 4.0);
        assert_eq!(fit.predict(20.0, 3.0, 4.0), 8.0);
    }

    #[test]
    fn noisy_step_data_still_close() {
        let m: Vec<f64> = (1..=12).map(|i| i as f64 * 8192.0).collect();
        let l: Vec<f64> = m.iter().map(|&v| 23.0 * (60e-6 + v * 8e-8)).collect();
        let s = vec![23.0; m.len()];
        let obs: Vec<f64> = m
            .iter()
            .zip(&l)
            .enumerate()
            .map(|(i, (&mi, &li))| {
                let noise = if i % 2 == 0 { 1.002 } else { 0.998 };
                (1.02 * li
                    + if mi >= 3.0 * 8192.0 {
                        0.008 * 23.0
                    } else {
                        0.0
                    })
                    * noise
            })
            .collect();
        let fit = fit_piecewise(&spec(&m, &l, &s, &obs), true).unwrap();
        assert!((fit.gamma - 1.02).abs() < 0.02);
        assert!(fit.cutoff.is_some());
    }
}
