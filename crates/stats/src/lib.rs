//! Statistics and least-squares machinery for the contention-model workspace.
//!
//! The paper fits its contention signature "through a linear regression with
//! the Generalized Least Squares method, comparing at least four measurement
//! points" (§8). This crate provides that machinery from scratch:
//!
//! * [`descriptive`] — batch and online (Welford) summaries, quantiles;
//! * [`histogram`] — fixed-bin histograms for transmission-time distributions;
//! * [`matrix`] — a small dense matrix with Cholesky and LU solves;
//! * [`regression`] — ordinary, weighted and generalized least squares;
//! * [`piecewise`] — the piecewise-affine fit with breakpoint search used to
//!   recover the paper's `(γ, δ, M)` signature.
//!
//! Everything is `f64`-based and allocation-light; fitting a signature from a
//! dozen measurement points is microseconds of work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod matrix;
pub mod piecewise;
pub mod regression;

pub use descriptive::{OnlineStats, Summary};
pub use error::StatsError;
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use piecewise::{PiecewiseAffineFit, PiecewiseSpec};
pub use regression::{gls, ols, wls, LinearFit};
