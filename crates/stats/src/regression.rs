//! Ordinary, weighted and generalized least squares.
//!
//! The paper obtains its contention parameters "through a linear regression
//! with the Generalized Least Squares method, comparing at least four
//! measurement points" (§8). [`gls`] implements exactly that; [`ols`] and
//! [`wls`] are the standard special cases (identity / diagonal covariance),
//! used for the Hockney α/β fit and for repetition-count-weighted fits.

use crate::error::StatsError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Result of a linear least-squares fit `y ≈ X·coef`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted coefficients, one per design-matrix column.
    pub coefficients: Vec<f64>,
    /// Residuals `y − X·coef` per observation.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Coefficient of determination R² (1 − RSS/TSS); 1.0 for a perfect fit
    /// of constant data.
    pub r_squared: f64,
}

impl LinearFit {
    fn from_solution(design: &Matrix, y: &[f64], coefficients: Vec<f64>) -> Self {
        let fitted = design
            .mul_vec(&coefficients)
            .expect("design/coefficient dimensions agree by construction");
        let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(obs, fit)| obs - fit).collect();
        let rss: f64 = residuals.iter().map(|r| r * r).sum();
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let tss: f64 = y.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };
        Self {
            coefficients,
            residuals,
            rss,
            r_squared,
        }
    }

    /// Predicted value for one row of regressors.
    pub fn predict(&self, regressors: &[f64]) -> f64 {
        regressors
            .iter()
            .zip(&self.coefficients)
            .map(|(x, c)| x * c)
            .sum()
    }
}

fn validate(design: &Matrix, y: &[f64]) -> Result<(), StatsError> {
    if design.rows() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: design.rows(),
            right: y.len(),
        });
    }
    if design.rows() < design.cols() {
        return Err(StatsError::InsufficientData {
            needed: design.cols(),
            got: design.rows(),
        });
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    Ok(())
}

/// Ordinary least squares: solves the normal equations `XᵀX c = Xᵀy`.
pub fn ols(design: &Matrix, y: &[f64]) -> Result<LinearFit, StatsError> {
    validate(design, y)?;
    let xt = design.transpose();
    let xtx = xt.mul(design)?;
    let xty = xt.mul_vec(y)?;
    let coef = xtx.cholesky_solve(&xty)?;
    Ok(LinearFit::from_solution(design, y, coef))
}

/// Weighted least squares with per-observation weights `w_i > 0`
/// (equivalent to a diagonal covariance `Σ = diag(1/w_i)`).
pub fn wls(design: &Matrix, y: &[f64], weights: &[f64]) -> Result<LinearFit, StatsError> {
    validate(design, y)?;
    if weights.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: weights.len(),
            right: y.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            return Err(StatsError::InvalidWeight { index: i });
        }
    }
    // Whiten: multiply each row and observation by sqrt(w).
    let mut wdesign = Matrix::zeros(design.rows(), design.cols());
    let mut wy = vec![0.0; y.len()];
    for i in 0..design.rows() {
        let s = weights[i].sqrt();
        for j in 0..design.cols() {
            wdesign[(i, j)] = design[(i, j)] * s;
        }
        wy[i] = y[i] * s;
    }
    let fit = ols(&wdesign, &wy)?;
    // Report residuals/R² in the original (unweighted) space.
    Ok(LinearFit::from_solution(design, y, fit.coefficients))
}

/// Generalized least squares with a full observation covariance matrix `Σ`:
/// solves `XᵀΣ⁻¹X c = XᵀΣ⁻¹y`.
///
/// `sigma` must be symmetric positive-definite. With `Σ = I` this reduces to
/// [`ols`]; with diagonal `Σ` it reduces to [`wls`].
pub fn gls(design: &Matrix, y: &[f64], sigma: &Matrix) -> Result<LinearFit, StatsError> {
    validate(design, y)?;
    let n = y.len();
    if sigma.rows() != n || sigma.cols() != n {
        return Err(StatsError::DimensionMismatch {
            context: "gls: covariance must be n×n",
        });
    }
    // Σ⁻¹X column by column, and Σ⁻¹y, via Cholesky solves.
    let mut sinv_x = Matrix::zeros(n, design.cols());
    for j in 0..design.cols() {
        let col: Vec<f64> = (0..n).map(|i| design[(i, j)]).collect();
        let solved = sigma.cholesky_solve(&col)?;
        for i in 0..n {
            sinv_x[(i, j)] = solved[i];
        }
    }
    let sinv_y = sigma.cholesky_solve(y)?;
    let xt = design.transpose();
    let lhs = xt.mul(&sinv_x)?;
    let rhs = xt.mul_vec(&sinv_y)?;
    let coef = lhs.cholesky_solve(&rhs).or_else(|_| lhs.lu_solve(&rhs))?;
    Ok(LinearFit::from_solution(design, y, coef))
}

/// Convenience: fits `y = a + b·x` and returns `(a, b, fit)`.
pub fn simple_affine(x: &[f64], y: &[f64]) -> Result<(f64, f64, LinearFit), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
    let design = Matrix::from_rows(&rows)?;
    let fit = ols(&design, y)?;
    Ok((fit.coefficients[0], fit.coefficients[1], fit))
}

/// Convenience: fits `y = b·x` through the origin and returns `(b, fit)`.
pub fn simple_proportional(x: &[f64], y: &[f64]) -> Result<(f64, LinearFit), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
    let design = Matrix::from_rows(&rows)?;
    let fit = ols(&design, y)?;
    Ok((fit.coefficients[0], fit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 3.0 * v).collect();
        let (a, b, fit) = simple_affine(&x, &y).unwrap();
        assert!((a - 2.0).abs() < 1e-10);
        assert!((b - 3.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_on_noisy_line_has_small_residuals() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 5.0 + 0.5 * v + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let (a, b, fit) = simple_affine(&x, &y).unwrap();
        assert!((a - 5.0).abs() < 0.1);
        assert!((b - 0.5).abs() < 0.02);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn proportional_fit_through_origin() {
        let x = [1.0, 2.0, 4.0];
        let y = [2.5, 5.0, 10.0];
        let (b, _) = simple_proportional(&x, &y).unwrap();
        assert!((b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn wls_downweights_outlier() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y: Vec<f64> = x.iter().map(|v| 1.0 * v).collect();
        y[4] = 100.0; // gross outlier
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let heavy = wls(&design, &y, &[1.0, 1.0, 1.0, 1.0, 1e-9]).unwrap();
        assert!((heavy.coefficients[0] - 1.0).abs() < 1e-3);
        let uniform = ols(&design, &y).unwrap();
        assert!(uniform.coefficients[0] > 2.0); // outlier drags OLS away
    }

    #[test]
    fn gls_with_identity_matches_ols() {
        let x = [1.0, 2.0, 3.0, 5.0, 8.0];
        let y = [2.0, 4.1, 5.9, 10.2, 16.1];
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let fit_ols = ols(&design, &y).unwrap();
        let fit_gls = gls(&design, &y, &Matrix::identity(5)).unwrap();
        for (a, b) in fit_ols.coefficients.iter().zip(&fit_gls.coefficients) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gls_with_correlated_noise_still_recovers_signal() {
        // y = 3x with an AR-like covariance; GLS should land near 3.
        let x: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let n = x.len();
        let mut sigma = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                sigma[(i, j)] = 0.5f64.powi((i as i32 - j as i32).abs()) * 2.0;
            }
        }
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let fit = gls(&design, &y, &sigma).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_system_rejected() {
        let design = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            ols(&design, &[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn collinear_design_rejected() {
        // Second column is 2× the first.
        let design = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert_eq!(
            ols(&design, &[1.0, 2.0, 3.0]),
            Err(StatsError::SingularMatrix)
        );
    }

    #[test]
    fn invalid_weights_rejected() {
        let design = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            wls(&design, &[1.0, 2.0], &[1.0, 0.0]),
            Err(StatsError::InvalidWeight { index: 1 })
        ));
        assert!(matches!(
            wls(&design, &[1.0, 2.0], &[1.0, f64::NAN]),
            Err(StatsError::InvalidWeight { index: 1 })
        ));
    }

    #[test]
    fn predict_matches_design_row() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 5.0, 7.0]; // y = 1 + 2x
        let (_, _, fit) = simple_affine(&x, &y).unwrap();
        assert!((fit.predict(&[1.0, 10.0]) - 21.0).abs() < 1e-9);
    }
}
