//! Small dense matrices for the least-squares solvers.
//!
//! The regression problems in this workspace are tiny (2–4 regressors, tens
//! of observations), so a straightforward row-major `Vec<f64>` matrix with
//! Cholesky and partially-pivoted LU solves is both simpler and faster than
//! pulling in a linear-algebra dependency.

use crate::error::StatsError;

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(StatsError::DimensionMismatch {
                context: "from_rows: ragged input",
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                context: "mul: inner dimensions differ",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.cols != v.len() {
            return Err(StatsError::DimensionMismatch {
                context: "mul_vec: vector length differs from cols",
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Solves `self * x = b` for symmetric positive-definite `self` via
    /// Cholesky decomposition. This is the normal-equations path of the
    /// least-squares fits.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        let n = self.rows;
        if self.cols != n {
            return Err(StatsError::DimensionMismatch {
                context: "cholesky_solve: matrix not square",
            });
        }
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "cholesky_solve: rhs length differs",
            });
        }
        // L lower-triangular with self = L Lᵀ.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(x)
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    /// Used where symmetry is not guaranteed (GLS whitening).
    pub fn lu_solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        let n = self.rows;
        if self.cols != n {
            return Err(StatsError::DimensionMismatch {
                context: "lu_solve: matrix not square",
            });
        }
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "lu_solve: rhs length differs",
            });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            let mut best = a[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let v = a[perm[row] * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-300 {
                return Err(StatsError::SingularMatrix);
            }
            perm.swap(col, pivot);
            let prow = perm[col];
            let pval = a[prow * n + col];
            for &r in &perm[(col + 1)..n] {
                let factor = a[r * n + col] / pval;
                a[r * n + col] = 0.0;
                if factor != 0.0 {
                    for j in (col + 1)..n {
                        a[r * n + j] -= factor * a[prow * n + j];
                    }
                    x[r] -= factor * x[prow];
                }
            }
        }
        // Back substitution over the permuted rows.
        let mut out = vec![0.0f64; n];
        for i in (0..n).rev() {
            let r = perm[i];
            let mut sum = x[r];
            for j in (i + 1)..n {
                sum -= a[r * n + j] * out[j];
            }
            out[i] = sum / a[r * n + i];
        }
        Ok(out)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::identity(2);
        assert_eq!(id.mul(&m).unwrap(), m);
        assert_eq!(m.mul(&id).unwrap(), m);
    }

    #[test]
    fn transpose_twice_roundtrips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = m.mul_vec(&[5.0, 6.0]).unwrap();
        assert!(approx(&v, &[17.0, 39.0], 1e-12));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // SPD matrix built as AᵀA + I.
        let m = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let x = m.cholesky_solve(&[10.0, 8.0]).unwrap();
        let back = m.mul_vec(&x).unwrap();
        assert!(approx(&back, &[10.0, 8.0], 1e-10));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(
            m.cholesky_solve(&[1.0, 1.0]),
            Err(StatsError::SingularMatrix)
        );
    }

    #[test]
    fn lu_solves_general_system() {
        let m = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, -2.0, -3.0],
            vec![-1.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = [-8.0, 0.0, 3.0];
        let x = m.lu_solve(&b).unwrap();
        let back = m.mul_vec(&x).unwrap();
        assert!(approx(&back, &b, 1e-10));
    }

    #[test]
    fn lu_rejects_singular() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(m.lu_solve(&[1.0, 2.0]), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn mul_dimension_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
