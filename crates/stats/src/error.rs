//! Error type shared by the fitting routines.

use std::fmt;

/// Errors produced by the statistics and fitting routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough observations for the requested operation (needed, got).
    InsufficientData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// Input slices that must be the same length were not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A matrix operation received incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The normal-equations matrix was singular (collinear regressors,
    /// a zero-variance column, or duplicated abscissae).
    SingularMatrix,
    /// An observation weight or covariance entry was non-positive or NaN.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// Input contained NaN or infinite values.
    NonFiniteInput,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need at least {needed} points, got {got}"
                )
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StatsError::SingularMatrix => write!(f, "singular matrix in least-squares solve"),
            StatsError::InvalidWeight { index } => {
                write!(f, "invalid (non-positive or NaN) weight at index {index}")
            }
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for StatsError {}
