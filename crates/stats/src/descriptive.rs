//! Batch and streaming descriptive statistics.
//!
//! The experiment harness repeats every (message size, process count) point
//! many times and reports means; the stress-test figures additionally need
//! minima, maxima and quantiles to expose the straggler connections of
//! Fig. 3. [`Summary`] computes all of that in one pass over a slice, and
//! [`OnlineStats`] (Welford's algorithm) accumulates the same moments without
//! storing samples, which the simulator uses for per-link utilisation
//! counters.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// One-pass summary of a sample: count, mean, variance, extrema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; zero when `count < 2`.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty slice.
    ///
    /// Returns [`StatsError::InsufficientData`] on an empty slice and
    /// [`StatsError::NonFiniteInput`] if any value is NaN or infinite.
    pub fn of(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }
        let mut online = OnlineStats::new();
        for &v in values {
            online.push(v);
        }
        Ok(Self {
            count: online.count(),
            mean: online.mean(),
            variance: online.variance(),
            min: online.min(),
            max: online.max(),
        })
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

/// Welford's online mean/variance accumulator with extrema tracking.
///
/// Numerically stable for long streams (per-packet link occupancy samples can
/// run into the millions), and mergeable so the parallel sweep runner can
/// combine per-thread accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Current mean; zero for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; zero when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` for an empty accumulator.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` for an empty accumulator.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between
/// order statistics (type-7, the R/NumPy default).
///
/// The input does not need to be sorted; a sorted copy is made internally.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) || values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (0.5-quantile).
pub fn median(values: &[f64]) -> Result<f64, StatsError> {
    quantile(values, 0.5)
}

/// Arithmetic mean of a non-empty slice.
pub fn mean(values: &[f64]) -> Result<f64, StatsError> {
    Summary::of(values).map(|s| s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        // var = ((1.5)^2 + (0.5)^2 + (0.5)^2 + (1.5)^2) / 3 = 5/3
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(matches!(
            Summary::of(&[]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            Summary::of(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput)
        ));
    }

    #[test]
    fn online_merge_equals_batch() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &data[..37] {
            left.push(v);
        }
        for &v in &data[37..] {
            right.push(v);
        }
        left.merge(&right);
        let batch = Summary::of(&data).unwrap();
        assert_eq!(left.count(), 100);
        assert!((left.mean() - batch.mean).abs() < 1e-10);
        assert!((left.variance() - batch.variance).abs() < 1e-10);
        assert_eq!(left.min(), batch.min);
        assert_eq!(left.max(), batch.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert!((quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        // position 0.25 * 3 = 0.75 → 1 + 0.75 * (2 - 1)
        assert!((quantile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_sample_is_middle_element() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn std_error_shrinks_with_count() {
        let small = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let data: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let large = Summary::of(&data).unwrap();
        assert!(large.std_error() < small.std_error());
    }
}
