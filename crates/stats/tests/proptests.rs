//! Property-based tests for the statistics and fitting machinery.

use contention_stats::descriptive::{quantile, OnlineStats, Summary};
use contention_stats::matrix::Matrix;
use contention_stats::piecewise::{fit_piecewise, PiecewiseSpec};
use contention_stats::regression::{ols, simple_affine, wls};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    /// Welford accumulation equals the two-pass batch computation for any
    /// split point.
    #[test]
    fn welford_merge_equals_batch(data in finite_vec(1..200), split in 0usize..200) {
        let split = split.min(data.len());
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &data[..split] { left.push(v); }
        for &v in &data[split..] { right.push(v); }
        left.merge(&right);
        let batch = Summary::of(&data).unwrap();
        prop_assert_eq!(left.count(), data.len());
        prop_assert!((left.mean() - batch.mean).abs() < 1e-6 * (1.0 + batch.mean.abs()));
        prop_assert!((left.variance() - batch.variance).abs() < 1e-4 * (1.0 + batch.variance));
    }

    /// Quantiles are bounded by the extremes and monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(data in finite_vec(1..100), qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let s = Summary::of(&data).unwrap();
        let vlo = quantile(&data, lo).unwrap();
        let vhi = quantile(&data, hi).unwrap();
        prop_assert!(vlo >= s.min - 1e-9);
        prop_assert!(vhi <= s.max + 1e-9);
        prop_assert!(vlo <= vhi + 1e-9);
    }

    /// OLS recovers a planted affine relationship exactly (no noise).
    #[test]
    fn ols_recovers_planted_line(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        xs in prop::collection::btree_set(-1000i64..1000, 3..30),
    ) {
        let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a + b * x).collect();
        let (fa, fb, fit) = simple_affine(&xs, &ys).unwrap();
        prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()), "a: {} vs {}", fa, a);
        prop_assert!((fb - b).abs() < 1e-6 * (1.0 + b.abs()), "b: {} vs {}", fb, b);
        prop_assert!(fit.rss < 1e-6);
    }

    /// The OLS residuals are orthogonal to every design column (the normal
    /// equations, checked directly).
    #[test]
    fn ols_residuals_orthogonal_to_design(
        rows in prop::collection::vec(
            (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| vec![1.0, x, y]),
            4..40,
        ),
        ys in finite_vec(4..40),
    ) {
        let n = rows.len().min(ys.len());
        let design = Matrix::from_rows(&rows[..n]).unwrap();
        let y = &ys[..n];
        // Skip degenerate (collinear) designs.
        let Ok(fit) = ols(&design, y) else { return Ok(()); };
        for j in 0..design.cols() {
            let dot: f64 = (0..n).map(|i| design[(i, j)] * fit.residuals[i]).sum();
            let scale: f64 = (0..n).map(|i| design[(i, j)].abs()).sum::<f64>() + 1.0;
            prop_assert!(dot.abs() / scale < 1e-6, "column {} dot {}", j, dot);
        }
    }

    /// WLS with equal weights equals OLS.
    #[test]
    fn wls_uniform_weights_is_ols(
        xs in prop::collection::btree_set(-1000i64..1000, 3..20),
        noise in finite_vec(3..20),
        w in 0.1f64..10.0,
    ) {
        let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        let n = xs.len().min(noise.len());
        if n < 3 { return Ok(()); }
        let ys: Vec<f64> = xs[..n].iter().zip(&noise[..n]).map(|(&x, &e)| 2.0 * x + e * 1e-3).collect();
        let rows: Vec<Vec<f64>> = xs[..n].iter().map(|&x| vec![1.0, x]).collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let f1 = ols(&design, &ys).unwrap();
        let f2 = wls(&design, &ys, &vec![w; n]).unwrap();
        for (c1, c2) in f1.coefficients.iter().zip(&f2.coefficients) {
            prop_assert!((c1 - c2).abs() < 1e-6 * (1.0 + c1.abs()));
        }
    }

    /// Cholesky solve really solves: A x = b for random SPD A = LLᵀ + εI.
    #[test]
    fn cholesky_solves_random_spd(
        seedrows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 4), 4),
        b in prop::collection::vec(-100.0f64..100.0, 4),
    ) {
        let l = Matrix::from_rows(&seedrows).unwrap();
        let mut a = l.mul(&l.transpose()).unwrap();
        for i in 0..4 {
            a[(i, i)] += 1.0; // guarantee positive definiteness
        }
        let x = a.cholesky_solve(&b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (bi, bbi) in b.iter().zip(&back) {
            prop_assert!((bi - bbi).abs() < 1e-6 * (1.0 + bi.abs()));
        }
    }

    /// The piecewise fitter recovers a planted (γ, δ, M) signature from
    /// clean data, for any plausible parameter combination.
    #[test]
    fn piecewise_recovers_planted_signature(
        gamma in 0.5f64..8.0,
        delta in 0.0005f64..0.05,
        cut_idx in 1usize..5,
    ) {
        let ms: Vec<f64> = (1..=8).map(|i| (i * 131_072) as f64).collect();
        let cut = ms[cut_idx];
        let slope: Vec<f64> = ms.iter().map(|&m| 23.0 * (60e-6 + m * 8e-8)).collect();
        let step = vec![23.0f64; ms.len()];
        let obs: Vec<f64> = ms
            .iter()
            .zip(&slope)
            .map(|(&m, &l)| gamma * l + if m >= cut { delta * 23.0 } else { 0.0 })
            .collect();
        let fit = fit_piecewise(
            &PiecewiseSpec {
                abscissa: &ms,
                slope_basis: &slope,
                step_basis: &step,
                observations: &obs,
            },
            true,
        )
        .unwrap();
        prop_assert!((fit.gamma - gamma).abs() < 1e-6 * gamma, "gamma {} vs {}", fit.gamma, gamma);
        prop_assert!((fit.delta - delta).abs() < 1e-9 + 1e-6 * delta);
        prop_assert_eq!(fit.cutoff, Some(cut));
    }

    /// Piecewise prediction is monotone in the slope basis for fixed step
    /// state.
    #[test]
    fn piecewise_prediction_monotone(gamma in 0.1f64..10.0, delta in 0.0f64..1.0) {
        let fit = contention_stats::piecewise::PiecewiseAffineFit {
            gamma,
            delta,
            cutoff: Some(100.0),
            rss: 0.0,
            r_squared: 1.0,
        };
        prop_assert!(fit.predict(50.0, 2.0, 1.0) <= fit.predict(50.0, 3.0, 1.0));
        prop_assert!(fit.predict(150.0, 2.0, 1.0) >= fit.predict(50.0, 2.0, 1.0));
    }
}
