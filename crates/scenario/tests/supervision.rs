//! Supervised-execution integration tests: deadlines, budgets, the
//! stall/deadlock detector, panic isolation, mid-run cancellation, and
//! randomized fault plans.
//!
//! The headline scenario is the paper's GM-on-finite-buffer trap: GM
//! never retransmits, so tail drops at a small shared-buffer switch
//! leave ranks waiting on data that can never arrive. Under supervision
//! that is a *detected outcome* (`status = deadlocked`), not a hang.

use contention_scenario::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// GM transport pushing a large window through a 16 KiB shared-buffer
/// switch under 3-to-1 incast: drops are certain, retransmits never
/// happen. The buffer is big enough that the single-flow calibration
/// ping-pong survives — only the contended cells fall into the trap.
fn deadlocking_spec() -> ScenarioSpec {
    ScenarioBuilder::new("gm-finite-buffer-trap")
        .single_switch(
            4,
            LinkSpec::default(),
            SwitchSpec {
                shared_buffer_bytes: 16 * 1024,
                per_port_cap_bytes: 8 * 1024,
            },
        )
        .gm(1 << 20)
        .incast(1)
        .nodes([4])
        .message_bytes([256 * 1024])
        .reps(1)
        .warmup(0)
        .build()
        .expect("valid spec")
}

/// A small, healthy 2x2 grid used by the fault-injection tests.
fn healthy_spec() -> ScenarioSpec {
    ScenarioBuilder::new("supervised-grid")
        .single_switch(8, LinkSpec::default(), SwitchSpec::default())
        .uniform("direct")
        .nodes([2, 4])
        .message_bytes([1024, 4096])
        .reps(1)
        .warmup(0)
        .build()
        .expect("valid spec")
}

fn statuses(report: &Report) -> Vec<(usize, u64, String, String)> {
    report.batches[0]
        .cells
        .iter()
        .map(|c| {
            (
                c.n,
                c.message_bytes,
                c.status.name().to_string(),
                c.status.detail(),
            )
        })
        .collect()
}

#[test]
fn gm_on_finite_buffer_is_detected_as_deadlock_not_a_hang() {
    let session = Session::builder().workers(1).base_seed(7).build().unwrap();
    let started = Instant::now();
    let report = session.run(&deadlocking_spec()).expect("run terminates");
    // The stall detector fires as soon as the event queue drains with
    // unacked bytes outstanding — no wall-clock limit was configured.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "detector should fire promptly"
    );
    let cell = &report.batches[0].cells[0];
    assert_eq!(cell.status.name(), "deadlocked", "{:?}", cell.status);
    assert!(
        !cell.status.detail().is_empty(),
        "deadlock rows carry the blocked-rank diagnostic"
    );
    assert!(cell.mean_secs.is_nan(), "no measurement for a stopped cell");
    // Any non-ok row upgrades the report to the supervised schema.
    assert_eq!(report.schema_version, SUPERVISED_SCHEMA_VERSION);
    assert!(report.has_failures());
    let json = report.render(ReportFormat::Json);
    assert!(json.contains("\"status\": \"deadlocked\""), "{json}");
}

#[test]
fn deadlock_is_still_detected_under_a_wall_clock_deadline() {
    // A generous deadline must not mask the detector: the queue drains
    // long before 60 s of wall clock, so the diagnosis stays precise.
    let session = Session::builder()
        .workers(1)
        .base_seed(7)
        .deadline(Duration::from_secs(60))
        .build()
        .unwrap();
    let report = session.run(&deadlocking_spec()).expect("run terminates");
    let cell = &report.batches[0].cells[0];
    assert_eq!(cell.status.name(), "deadlocked", "{:?}", cell.status);
    // Configured limits force the supervised schema even before any row
    // goes bad.
    assert_eq!(report.schema_version, SUPERVISED_SCHEMA_VERSION);
}

#[test]
fn injected_panic_is_isolated_to_its_cell() {
    let spec = healthy_spec();
    let plan = FaultPlan::new().panic_cell(&spec.name, 4, 1024);
    let session = Session::builder()
        .workers(2)
        .base_seed(11)
        .inject_faults(plan)
        .build()
        .unwrap();
    let report = session
        .run(&spec)
        .expect("batch completes around the panic");
    let rows = statuses(&report);
    assert_eq!(rows.len(), 4);
    for (n, m, status, detail) in &rows {
        if (*n, *m) == (4, 1024) {
            assert_eq!(status, "panicked", "{detail}");
            assert!(detail.contains("injected fault"), "{detail}");
        } else {
            assert_eq!(status, "ok", "sibling cell n={n} m={m} must complete");
        }
    }
    // Sibling cells carry real measurements.
    let ok_cell = report.batches[0]
        .cells
        .iter()
        .find(|c| c.status.is_ok())
        .expect("some cell completed");
    assert!(ok_cell.mean_secs.is_finite() && ok_cell.mean_secs > 0.0);
    assert_eq!(report.schema_version, SUPERVISED_SCHEMA_VERSION);
}

#[test]
fn injected_stall_trips_the_wall_clock_deadline() {
    let spec = healthy_spec();
    let plan = FaultPlan::new().stall_cell(&spec.name, 2, 1024);
    let session = Session::builder()
        .workers(2)
        .base_seed(11)
        .deadline(Duration::from_millis(300))
        .inject_faults(plan)
        .build()
        .unwrap();
    let started = Instant::now();
    let report = session.run(&spec).expect("deadline unsticks the stall");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "stalled cell must be bounded by its deadline"
    );
    let rows = statuses(&report);
    let (_, _, status, detail) = rows
        .iter()
        .find(|(n, m, ..)| (*n, *m) == (2, 1024))
        .expect("stalled cell reported");
    assert_eq!(status, "timed-out", "{detail}");
    assert!(detail.contains("wall-clock deadline"), "{detail}");
}

#[test]
fn tiny_event_budget_stops_cells_as_budget_exceeded() {
    let spec = ScenarioBuilder::new("budgeted")
        .single_switch(8, LinkSpec::default(), SwitchSpec::default())
        .uniform("direct")
        .nodes([8])
        .message_bytes([256 * 1024])
        .reps(1)
        .warmup(0)
        .build()
        .expect("valid spec");
    let session = Session::builder()
        .workers(1)
        .base_seed(3)
        .event_budget(16)
        .build()
        .unwrap();
    let report = session.run(&spec).expect("budget stop is not an error");
    let cell = &report.batches[0].cells[0];
    assert_eq!(cell.status.name(), "budget-exceeded", "{:?}", cell.status);
    assert!(cell.status.detail().contains("16"), "{:?}", cell.status);
}

#[test]
fn mid_run_cancellation_is_honored_mid_cell_and_fills_the_rest() {
    // One worker, every cell stalled: the first popped cell parks until
    // the watchdog raises the token; the worker then refuses further
    // cells and the executor synthesizes `cancelled` rows for them.
    let spec = healthy_spec();
    let plan = FaultPlan::new()
        .stall_cell(&spec.name, 2, 1024)
        .stall_cell(&spec.name, 2, 4096)
        .stall_cell(&spec.name, 4, 1024)
        .stall_cell(&spec.name, 4, 4096);
    // Pre-warm a shared calibration cache so the supervised run reaches
    // its first cell immediately — cancellation during the calibration
    // phase is (by design) the hard `Err(Cancelled)` path instead.
    let cache = std::sync::Arc::new(CalibrationCache::new());
    Session::builder()
        .workers(1)
        .base_seed(5)
        .shared_cache(cache.clone())
        .build()
        .unwrap()
        .run(&spec)
        .expect("warm-up run");
    let token = CancelToken::new();
    let session = Session::builder()
        .workers(1)
        .base_seed(5)
        .shared_cache(cache)
        .cancel_token(token.clone())
        .inject_faults(plan)
        .build()
        .unwrap();
    let watchdog = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let started = Instant::now();
    let report = session
        .run(&spec)
        .expect("mid-run cancel returns a partial report, not an error");
    watchdog.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "cancellation latency must be bounded"
    );
    let rows = statuses(&report);
    assert_eq!(rows.len(), 4);
    for (n, m, status, _) in &rows {
        assert_eq!(status, "cancelled", "cell n={n} m={m}");
    }
    assert!(report.has_failures());
}

/// The unsupervised baseline the proptest compares against, computed
/// once: same spec, same seed, no limits, no faults.
fn baseline() -> &'static Vec<CellResult> {
    static BASELINE: OnceLock<Vec<CellResult>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let session = Session::builder().workers(2).base_seed(11).build().unwrap();
        let report = session.run(&healthy_spec()).expect("baseline runs");
        report.batches[0].cells.clone()
    })
}

/// Per-cell injected fault chosen by proptest: `None`, a panic, or a
/// wall-clock slowdown (which must not change simulated results).
/// `Stall` is excluded — unsupervised stalls park forever by design, and
/// this property runs without a deadline.
fn fault_strategy() -> impl Strategy<Value = Option<u8>> {
    // 0 => panic, 1 => slow, anything else => no fault (weighted 3:1:1).
    (0u8..5).prop_map(|draw| match draw {
        0 => Some(0u8),
        1 => Some(1u8),
        _ => None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Every supervised batch terminates; injected faults surface as
    /// their own status; untouched cells stay byte-identical to an
    /// unsupervised run.
    #[test]
    fn randomized_fault_plans_terminate_with_matching_statuses(
        faults in proptest::collection::vec(fault_strategy(), 4),
        slow_ms in 0u64..3,
    ) {
        let spec = healthy_spec();
        let grid: Vec<(usize, u64)> =
            vec![(2, 1024), (2, 4096), (4, 1024), (4, 4096)];
        let mut plan = FaultPlan::new();
        for ((n, m), fault) in grid.iter().zip(&faults) {
            plan = match fault {
                Some(0) => plan.panic_cell(&spec.name, *n, *m),
                Some(_) => {
                    plan.slow_cell(&spec.name, *n, *m, Duration::from_millis(slow_ms))
                }
                None => plan,
            };
        }
        let session = Session::builder()
            .workers(2)
            .base_seed(11)
            .inject_faults(plan)
            .build()
            .unwrap();
        let report = session.run(&spec).expect("supervised batch terminates");
        let cells = &report.batches[0].cells;
        prop_assert_eq!(cells.len(), grid.len());
        for (cell, fault) in cells.iter().zip(&faults) {
            match fault {
                Some(0) => prop_assert_eq!(cell.status.name(), "panicked"),
                _ => {
                    // Untouched and slowed cells run normally and match
                    // the unsupervised baseline bit-for-bit.
                    prop_assert_eq!(cell.status.name(), "ok");
                    let base = baseline()
                        .iter()
                        .find(|b| b.n == cell.n && b.message_bytes == cell.message_bytes)
                        .expect("baseline cell");
                    prop_assert_eq!(cell.cell_seed, base.cell_seed);
                    prop_assert_eq!(cell.mean_secs.to_bits(), base.mean_secs.to_bits());
                    prop_assert_eq!(cell.min_secs.to_bits(), base.min_secs.to_bits());
                    prop_assert_eq!(cell.max_secs.to_bits(), base.max_secs.to_bits());
                    prop_assert_eq!(cell.model_secs.to_bits(), base.model_secs.to_bits());
                    prop_assert_eq!(
                        cell.error_percent.to_bits(),
                        base.error_percent.to_bits()
                    );
                }
            }
        }
    }
}
