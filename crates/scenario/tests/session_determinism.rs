//! Session-facade determinism: every one of the 13 builtin scenarios,
//! produced *through the new `Session` API*, must be byte-identical
//! across worker counts 1/2/8 — and the incast-burst full grid must
//! reproduce the pre-refactor golden capture exactly (the same oracle
//! `determinism_golden.rs` pins through the legacy free functions).
//!
//! Together with the per-cell determinism contract (a cell depends only
//! on `(scenario, seed, n, m)`, never on its grid neighbours), the
//! trimmed one-cell sweeps below cover the full builtin grids: any
//! engine-level divergence would move these cells too.

use contention_scenario::prelude::*;
use std::sync::Arc;

/// Captured at the pre-refactor engine (seed 42, any worker count).
const GOLDEN: &str = include_str!("golden/incast-burst_seed42_workers_any.csv");

fn session(workers: usize, cache: &Arc<CalibrationCache>) -> Session {
    Session::builder()
        .workers(workers)
        .base_seed(42)
        .shared_cache(Arc::clone(cache))
        .build()
        .expect("session builds")
}

#[test]
fn incast_full_grid_through_the_session_matches_the_prerefactor_golden() {
    let spec = registry::by_name("incast-burst").expect("built-in");
    let cache = Arc::new(CalibrationCache::new());
    for workers in [1usize, 2, 8] {
        let report = session(workers, &cache).run(&spec).expect("runs");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(
            report.render(ReportFormat::Csv),
            GOLDEN,
            "workers={workers}: Session report diverged from the pre-refactor golden"
        );
    }
}

#[test]
fn all_thirteen_packet_builtins_are_byte_identical_across_workers() {
    // The huge-fabric fluid builtins are covered by fluid_validation and
    // the CI smoke run; this oracle pins the packet tier's byte-identity.
    let all: Vec<_> = registry::builtin()
        .into_iter()
        .filter(|s| s.backend == Backend::Packet)
        .collect();
    assert_eq!(
        all.len(),
        13,
        "packet builtin count moved; update this oracle"
    );
    let cache = Arc::new(CalibrationCache::new());
    for mut spec in all {
        // One cheap cell per builtin: enough to cross calibration, world
        // building, placement, workload generation and the whole engine.
        spec.sweep.nodes = vec![*spec.sweep.nodes.first().unwrap()];
        spec.sweep.message_bytes = vec![*spec.sweep.message_bytes.first().unwrap()];
        spec.sweep.reps = 1;
        spec.sweep.warmup = 0;
        let mut renders = Vec::new();
        for workers in [1usize, 2, 8] {
            let report = session(workers, &cache)
                .run(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            renders.push((workers, report.render(ReportFormat::Csv)));
        }
        let (_, first) = &renders[0];
        for (workers, render) in &renders[1..] {
            assert_eq!(
                render, first,
                "{}: workers={workers} diverged from workers=1",
                spec.name
            );
        }
    }
}
