//! JSON-emitter goldens: a hostile batch result — control characters,
//! quotes, backslashes and commas in the scenario name; NaN/±∞ in every
//! float column — must render to exactly the checked-in bytes, and those
//! bytes must be *valid JSON* (non-finite values become `null`, control
//! characters become `\uXXXX` escapes). The validity lint is shared with
//! the CLI integration tests.
//!
//! Regenerate the golden only for an intentional schema change (bump
//! `SCHEMA_VERSION` and document it in `report.rs`):
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p contention-scenario --test json_golden
//! ```

#[path = "common/json_lint.rs"]
mod json_lint;

use contention_scenario::executor::{BatchResult, CellResult, CellStatus};
use contention_scenario::report::{to_json, Report, ReportFormat, SCHEMA_VERSION};
use json_lint::validate_json;

const GOLDEN: &str = include_str!("golden/hostile_report.json");

/// Worst-case inputs: every string field user-controlled via TOML specs,
/// every float capable of going non-finite (an all-zero simulated time
/// makes `error_percent` divide by zero).
fn hostile() -> Vec<BatchResult> {
    vec![BatchResult {
        scenario: "evil \"name\", with\nnewline\ttab \u{1}ctrl back\\slash".into(),
        alpha_secs: f64::NAN,
        beta_secs_per_byte: 8e-9,
        cells: vec![CellResult {
            scenario: "evil \"name\", with\nnewline\ttab \u{1}ctrl back\\slash".into(),
            workload: "uniform".into(),
            topology: "single-switch".into(),
            n: 4,
            message_bytes: 65536,
            cell_seed: 99,
            mean_secs: f64::INFINITY,
            min_secs: f64::NEG_INFINITY,
            max_secs: 0.013,
            model_secs: 0.01,
            error_percent: f64::NAN,
            status: CellStatus::Ok,
        }],
    }]
}

#[test]
fn hostile_report_renders_to_the_golden_bytes() {
    let json = to_json(&hostile());
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/hostile_report.json"
        );
        std::fs::write(path, &json).expect("write golden");
        panic!("regenerated {path}; re-run without REGEN_GOLDEN");
    }
    assert_eq!(
        json, GOLDEN,
        "JSON rendering diverged from tests/golden/hostile_report.json"
    );
}

#[test]
fn hostile_report_is_valid_json_with_nulls_for_non_finite() {
    let json = to_json(&hostile());
    validate_json(&json).expect("report JSON must parse");
    // NaN alpha, +inf mean, -inf min, NaN error → exactly four nulls.
    assert_eq!(json.matches("null").count(), 4);
    assert!(json.contains("\\u0001"), "control chars must be escaped");
    assert!(!json.to_lowercase().contains("inf"), "no bare infinities");
    assert!(!json.contains("NaN"), "no bare NaNs");
}

#[test]
fn report_render_path_and_wrapper_agree_and_carry_the_version() {
    let report = Report::new(hostile());
    let json = report.render(ReportFormat::Json);
    assert_eq!(json, to_json(&hostile()));
    assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
    validate_json(&json).expect("render path emits valid JSON");
}

#[test]
fn the_lint_itself_rejects_broken_json() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\": inf}",
        "{\"a\": NaN}",
        "\"raw \u{1} control\"",
        "[1] trailing",
        "{\"a\" 1}",
        "01",
    ] {
        assert!(validate_json(bad).is_err(), "accepted: {bad:?}");
    }
    for good in ["null", "[\"a\\u0001b\", -1.5e-9, {\"k\": []}]", GOLDEN] {
        validate_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
    }
}
