//! Scheduler-determinism goldens: `run_batches` output must be
//! byte-identical across worker counts *and* match a report captured from
//! the engine before the hot-path overhaul (interned routes, lane-heap
//! event queue, pooled bands, cost-aware scheduling). The golden file is
//! the regression oracle for the refactor's "no behavioral change"
//! guarantee — regenerate it only for an *intentional* semantic change:
//!
//! ```text
//! ctnsim run incast-burst --workers 1 \
//!     --out crates/scenario/tests/golden/incast-burst_seed42_workers_any.csv
//! ```

use contention_scenario::executor::{run_batches, BatchConfig, GuardLimits, ModelKind};
use contention_scenario::registry::by_name;
use contention_scenario::report::to_csv;

/// Captured at the pre-refactor engine (seed 42, any worker count).
const GOLDEN: &str = include_str!("golden/incast-burst_seed42_workers_any.csv");

#[test]
fn report_is_byte_identical_across_workers_and_to_prerefactor_capture() {
    let spec = by_name("incast-burst").expect("built-in scenario");
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let cfg = BatchConfig {
            workers,
            base_seed: 42,
            ..Default::default()
        };
        let results = run_batches(std::slice::from_ref(&spec), &cfg).expect("scenario runs");
        reports.push((workers, to_csv(&results)));
    }
    for (workers, report) in &reports {
        assert_eq!(
            report, GOLDEN,
            "workers={workers}: report diverged from the pre-refactor golden"
        );
    }
}

/// The non-tree fabrics (torus, dragonfly) and non-scatter placements
/// obey the same determinism contract: one trimmed cell of each new
/// builtin, run under every model, must be byte-identical across worker
/// counts.
#[test]
fn new_fabric_scenarios_are_deterministic_across_workers_and_models() {
    for name in [
        "torus-neighbor-exchange",
        "torus3d-random-permutation",
        "dragonfly-adversarial-uniform",
        "packed-vs-scattered-fattree",
    ] {
        let mut spec = by_name(name).expect("built-in scenario");
        // One cheap cell: enough to cross the whole engine, small enough
        // for CI (model calibrations dominate and are memoized).
        spec.sweep.nodes = vec![*spec.sweep.nodes.first().unwrap()];
        spec.sweep.message_bytes = vec![*spec.sweep.message_bytes.first().unwrap()];
        spec.sweep.reps = 1;
        spec.sweep.warmup = 0;
        for model in [ModelKind::Med, ModelKind::Signature, ModelKind::Saturation] {
            let mut reports = Vec::new();
            for workers in [1usize, 2, 8] {
                let cfg = BatchConfig {
                    workers,
                    base_seed: 42,
                    model,
                    limits: GuardLimits::default(),
                };
                let results =
                    run_batches(std::slice::from_ref(&spec), &cfg).expect("scenario runs");
                reports.push(to_csv(&results));
            }
            assert_eq!(reports[0], reports[1], "{name}/{}: w1 vs w2", model.name());
            assert_eq!(reports[0], reports[2], "{name}/{}: w1 vs w8", model.name());
        }
    }
}
