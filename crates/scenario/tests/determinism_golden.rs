//! Scheduler-determinism goldens: `run_batches` output must be
//! byte-identical across worker counts *and* match a report captured from
//! the engine before the hot-path overhaul (interned routes, lane-heap
//! event queue, pooled bands, cost-aware scheduling). The golden file is
//! the regression oracle for the refactor's "no behavioral change"
//! guarantee — regenerate it only for an *intentional* semantic change:
//!
//! ```text
//! ctnsim run incast-burst --workers 1 \
//!     --out crates/scenario/tests/golden/incast-burst_seed42_workers_any.csv
//! ```

use contention_scenario::executor::{run_batches, BatchConfig};
use contention_scenario::registry::by_name;
use contention_scenario::report::to_csv;

/// Captured at the pre-refactor engine (seed 42, any worker count).
const GOLDEN: &str = include_str!("golden/incast-burst_seed42_workers_any.csv");

#[test]
fn report_is_byte_identical_across_workers_and_to_prerefactor_capture() {
    let spec = by_name("incast-burst").expect("built-in scenario");
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let cfg = BatchConfig {
            workers,
            base_seed: 42,
            ..Default::default()
        };
        let results = run_batches(std::slice::from_ref(&spec), &cfg).expect("scenario runs");
        reports.push((workers, to_csv(&results)));
    }
    for (workers, report) in &reports {
        assert_eq!(
            report, GOLDEN,
            "workers={workers}: report diverged from the pre-refactor golden"
        );
    }
}
