//! Equivalence property: every builtin registry spec is reconstructible
//! through the fluent `ScenarioBuilder` sugar — same spec, same fabric
//! fingerprint, same TOML round-trip — and grid-only edits (the
//! programmatic-sweep use case) never move the fabric fingerprint the
//! calibration caches key on.

use contention_scenario::builder::ScenarioBuilder;
use contention_scenario::registry::builtin;
use contention_scenario::spec::{Backend, ScenarioSpec, TopologySpec, TransportSpec, WorkloadSpec};
use proptest::prelude::*;

/// Reassembles a spec through the builder's shape-specific sugar (falling
/// back to the general `.topology()` form only for the parameter-heavy
/// fabrics) — the compile-time proof that the fluent surface covers every
/// shipped scenario.
fn rebuild(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut b = ScenarioBuilder::new(spec.name.clone()).description(spec.description.clone());
    b = match &spec.topology {
        TopologySpec::Preset { preset } => b.preset(preset.clone()),
        TopologySpec::SingleSwitch {
            hosts,
            link,
            switch,
        } => b.single_switch(*hosts, *link, *switch),
        TopologySpec::FatTree {
            k,
            hosts_per_edge,
            link,
            switch,
        } => b.fat_tree(*k, *hosts_per_edge, *link, *switch),
        TopologySpec::Torus2d {
            x,
            y,
            hosts_per_switch,
            link,
            switch,
        } => b.torus_2d(*x, *y, *hosts_per_switch, *link, *switch),
        TopologySpec::Torus3d {
            x,
            y,
            z,
            hosts_per_switch,
            link,
            switch,
        } => b.torus_3d(*x, *y, *z, *hosts_per_switch, *link, *switch),
        other => b.topology(other.clone()),
    };
    b = b.placement(spec.placement).mpi(spec.mpi);
    b = match spec.transport {
        TransportSpec::Tcp { window_bytes } => b.tcp(window_bytes),
        TransportSpec::Gm { window_bytes } => b.gm(window_bytes),
    };
    b = match &spec.workload {
        WorkloadSpec::Uniform { algorithm } => b.uniform(algorithm.clone()),
        WorkloadSpec::Skewed {
            hot_ranks,
            factor,
            nonblocking,
        } => b.skewed(*hot_ranks, *factor, *nonblocking),
        WorkloadSpec::Sparse {
            density,
            nonblocking,
        } => b.sparse(*density, *nonblocking),
        WorkloadSpec::Permutation => b.permutation(),
        WorkloadSpec::Incast { receivers } => b.incast(*receivers),
        WorkloadSpec::Outcast { senders } => b.outcast(*senders),
        WorkloadSpec::Phases { phases } => b.phases(phases.clone()),
    };
    b.backend(spec.backend)
        .nodes(spec.sweep.nodes.clone())
        .message_bytes(spec.sweep.message_bytes.clone())
        .warmup(spec.sweep.warmup)
        .reps(spec.sweep.reps)
        .build()
        .expect("rebuilt builtin validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder reconstruction is exact: equal spec, equal fabric
    /// fingerprint, and the TOML round-trip of the rebuilt spec decodes
    /// back to the registry original.
    #[test]
    fn every_builtin_reconstructs_through_the_builder(pick in 0usize..1024) {
        let all = builtin();
        let original = &all[pick % all.len()];
        let rebuilt = rebuild(original);
        prop_assert_eq!(&rebuilt, original, "rebuild of {}", original.name);
        prop_assert_eq!(
            rebuilt.fabric_fingerprint(),
            original.fabric_fingerprint(),
            "fingerprint of {}", original.name
        );
        let reparsed = ScenarioSpec::from_toml_str(&rebuilt.to_toml_string())
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", original.name)))?;
        prop_assert_eq!(&reparsed, original, "TOML round-trip of {}", original.name);
    }

    /// Grid-only edits (nodes/sizes/reps — the programmatic sweep case)
    /// keep the fabric fingerprint, so cached calibrations stay valid;
    /// the edited spec still TOML round-trips exactly.
    #[test]
    fn grid_edits_keep_the_fabric_fingerprint(
        pick in 0usize..1024,
        keep_nodes in 1usize..4,
        size_kib in 1u64..2048,
        reps in 1usize..4,
    ) {
        let all = builtin();
        let original = &all[pick % all.len()];
        let nodes: Vec<usize> = original
            .sweep
            .nodes
            .iter()
            .copied()
            .take(keep_nodes.min(original.sweep.nodes.len()))
            .collect();
        let edited = rebuild(original);
        let mut b = ScenarioBuilder::new(edited.name.clone())
            .description(edited.description.clone())
            .topology(edited.topology.clone())
            .placement(edited.placement)
            .transport(edited.transport)
            .mpi(edited.mpi)
            .workload(edited.workload.clone())
            .backend(edited.backend)
            .nodes(nodes)
            .message_bytes([size_kib * 1024])
            .reps(reps);
        // Pairwise exchange only allows power-of-two node counts; keep the
        // property about *grids*, not workload legality.
        if matches!(&edited.workload, WorkloadSpec::Uniform { algorithm } if algorithm == "pairwise") {
            b = b.uniform("direct");
        }
        let swept = match b.build() {
            Ok(s) => s,
            // Some random grids are legitimately invalid for the workload
            // (e.g. incast receivers >= min node count); that is the
            // validator doing its job, not a fingerprint property.
            Err(_) => return Ok(()),
        };
        prop_assert_eq!(
            swept.fabric_fingerprint(),
            original.fabric_fingerprint(),
            "grid edit moved the fingerprint of {}", original.name
        );
        let reparsed = ScenarioSpec::from_toml_str(&swept.to_toml_string())
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", swept.name)))?;
        prop_assert_eq!(reparsed, swept);
    }
}

/// The proptests above index builtins modulo the registry length; this
/// anchor makes a registry growth/shrink visible here too.
#[test]
fn registry_ships_thirteen_packet_and_two_fluid_builtins() {
    let all = builtin();
    assert_eq!(all.len(), 15);
    let packet = all.iter().filter(|s| s.backend == Backend::Packet).count();
    assert_eq!(packet, 13, "packet builtin count moved");
    assert_eq!(all.len() - packet, 2, "fluid builtin count moved");
}
