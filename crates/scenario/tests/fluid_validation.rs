//! Cross-validation of the fluid flow-level tier against the packet
//! engine: every packet-backend builtin runs its cheapest cell through
//! both backends, and the fluid completion time must land inside the
//! documented per-scenario error band. The bands are measured facts, not
//! aspirations — they are quoted in the README "Backends" section so a
//! user picking the fluid tier knows exactly how far it sits from the
//! calibrated packet reference on each traffic class.
//!
//! Alongside the bands, this suite pins the fluid tier's engine
//! contracts: repeat-determinism, telemetry transparency (a recording
//! session must not move a byte), and the up-front typed rejection of
//! the GM-on-finite-buffers caveat.

use contention_scenario::error::CtnError;
use contention_scenario::prelude::*;
use std::sync::Arc;

/// Documented fluid/packet completion-time ratio bands, measured on the
/// trimmed one-cell grids below at seed 42. A fluid run outside its band
/// is a regression in either tier.
/// Two regimes emerge (see the README "Backends" table):
///
/// * **Equilibrium-dominated** scenarios (lossless GM fabrics, deep
///   buffers, latency-bound exchanges) sit within ~2× of the packet
///   engine — the fluid max-min shares are exactly the bandwidth split
///   the packet transport converges to.
/// * **Timeout-dominated** scenarios (TCP on shallow-buffer switches,
///   where completion time is set by RTO stalls after drops — the
///   paper's straggler phenomenon) sit 100–300× below the packet
///   engine, because a loss-free fluid equilibrium has no drops and no
///   timers. Their bands are honest about that: the fluid tier answers
///   "how long would this take under ideal congestion control", not
///   "how long does lossy TCP take". Use the packet tier there.
const BANDS: &[(&str, f64, f64)] = &[
    // Equilibrium-dominated: fluid tracks the packet engine closely.
    ("paper-fast-ethernet", 0.35, 0.65),        // measured 0.478
    ("paper-gigabit-ethernet", 0.35, 0.65),     // measured 0.482
    ("paper-myrinet", 0.80, 1.05),              // measured 0.923
    ("incast-burst", 0.50, 0.90),               // measured 0.705
    ("permutation-lossless", 0.80, 1.05),       // measured 0.927
    ("torus-neighbor-exchange", 0.60, 1.00),    // measured 0.824
    ("torus3d-random-permutation", 0.50, 0.90), // measured 0.705
    ("dragonfly-adversarial-uniform", 0.45, 0.80), // measured 0.612
    // Timeout-dominated: packet time ≈ one RTO stall (~1 s), fluid sees
    // only the loss-free transfer time. Wide bands, by design.
    ("fat-tree-uniform", 0.001, 0.02),            // measured 0.004
    ("oversubscribed-tree-skewed", 0.001, 0.05),  // measured 0.007
    ("sparse-star", 0.001, 0.02),                 // measured 0.003
    ("mixed-phases-tree", 0.001, 0.05),           // measured 0.008
    ("packed-vs-scattered-fattree", 0.001, 0.05), // measured 0.006
];

fn band(name: &str) -> (f64, f64) {
    BANDS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, lo, hi)| (lo, hi))
        .unwrap_or_else(|| panic!("{name}: new builtin needs a documented error band"))
}

/// One cheap cell per builtin: smallest node count, first message size.
fn trimmed(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.sweep.nodes = vec![*spec.sweep.nodes.iter().min().unwrap()];
    spec.sweep.message_bytes = vec![*spec.sweep.message_bytes.first().unwrap()];
    spec.sweep.reps = 1;
    spec.sweep.warmup = 0;
    spec
}

fn session(cache: &Arc<CalibrationCache>) -> Session {
    Session::builder()
        .workers(2)
        .base_seed(42)
        .shared_cache(Arc::clone(cache))
        .build()
        .expect("session builds")
}

#[test]
fn fluid_tracks_the_packet_engine_within_documented_bands() {
    let cache = Arc::new(CalibrationCache::new());
    let mut table = Vec::new();
    for spec in registry::builtin() {
        if spec.backend != Backend::Packet {
            continue;
        }
        let packet = trimmed(spec);
        let mut fluid = packet.clone();
        fluid.backend = Backend::Fluid;
        let p = session(&cache).run(&packet).expect("packet runs");
        let f = session(&cache).run(&fluid).expect("fluid runs");
        let p_secs = p.batches[0].cells[0].mean_secs;
        let f_secs = f.batches[0].cells[0].mean_secs;
        let ratio = f_secs / p_secs;
        let (lo, hi) = band(&packet.name);
        let ok = ratio >= lo && ratio <= hi;
        table.push(format!(
            "{} {:<32} packet={p_secs:.6}s fluid={f_secs:.6}s ratio={ratio:.3} band=[{lo}, {hi}]",
            if ok { "ok  " } else { "FAIL" },
            packet.name
        ));
    }
    eprintln!("{}", table.join("\n"));
    assert!(
        table.iter().all(|row| row.starts_with("ok")),
        "fluid/packet ratios outside their documented bands:\n{}",
        table.join("\n")
    );
}

#[test]
fn fluid_cells_are_deterministic_and_telemetry_transparent() {
    let cache = Arc::new(CalibrationCache::new());
    let mut spec = trimmed(registry::by_name("fat-tree-uniform").expect("built-in"));
    spec.backend = Backend::Fluid;
    let plain = session(&cache).run(&spec).expect("runs");
    let again = session(&cache).run(&spec).expect("runs again");
    assert_eq!(
        plain.render(ReportFormat::Csv),
        again.render(ReportFormat::Csv),
        "fluid runs must be deterministic"
    );
    // Fluid cells are deterministic, so one run fills all three columns.
    let cell = &plain.batches[0].cells[0];
    assert_eq!(cell.mean_secs, cell.min_secs);
    assert_eq!(cell.mean_secs, cell.max_secs);
    for workers in [1usize, 2, 8] {
        let s = Session::builder()
            .workers(workers)
            .base_seed(42)
            .telemetry(true)
            .shared_cache(Arc::clone(&cache))
            .build()
            .expect("session builds");
        let report = s.run(&spec).expect("telemetry run");
        assert_eq!(
            report.render(ReportFormat::Csv),
            plain.render(ReportFormat::Csv),
            "workers={workers}: recording telemetry moved fluid report bytes"
        );
        let metrics = s.metrics().expect("snapshot");
        let engine = metrics.cells[0].engine.as_ref().expect("engine telemetry");
        assert!(
            engine.links.iter().any(|l| l.busy_ns > 0),
            "fluid rates must surface as link-utilization samples"
        );
    }
}

#[test]
fn fluid_rejects_gm_on_finite_buffers_up_front() {
    let mut spec = registry::by_name("oversubscribed-tree-skewed").expect("built-in");
    spec.transport = TransportSpec::Gm {
        window_bytes: 64 * 1024,
    };
    spec.backend = Backend::Fluid;
    let err = spec
        .validate()
        .expect_err("finite-buffer GM must be rejected");
    assert!(
        matches!(&err, SpecError::Invalid(m) if m.contains("deadlock")),
        "unexpected error: {err}"
    );
    // Through the session the same gate surfaces as the typed CtnError.
    let session = Session::builder().workers(1).base_seed(1).build().unwrap();
    match session.run(&spec) {
        Err(CtnError::Spec(SpecError::Invalid(m))) => {
            assert!(m.contains("fluid"), "message should name the backend: {m}")
        }
        other => panic!("expected CtnError::Spec, got {other:?}"),
    }
    // The packet tier still accepts the same fabric (the caveat is
    // calibration-specific), and lossless-grade buffers clear the gate.
    spec.backend = Backend::Packet;
    spec.validate().expect("packet tier unaffected");
    let mut lossless = registry::by_name("permutation-lossless").expect("built-in");
    lossless.backend = Backend::Fluid;
    lossless.validate().expect("lossless GM fabric is fine");
}

#[test]
fn huge_fluid_builtins_validate_and_reject_packet_scale_docs() {
    for name in ["fat-tree-1024-alltoall", "dragonfly-4k-adversarial"] {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(spec.backend, Backend::Fluid, "{name}");
        spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            spec.sweep.nodes.iter().all(|&n| n >= 1024),
            "{name} is the huge-fabric tier"
        );
        // The TOML round-trip keeps the backend axis.
        let reparsed = ScenarioSpec::from_toml_str(&spec.to_toml_string())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, spec, "{name}");
    }
}
