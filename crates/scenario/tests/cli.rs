//! Integration tests of the `ctnsim` binary: exit codes, stderr
//! diagnostics, and output formats, via the real executable
//! (`CARGO_BIN_EXE_ctnsim`).
//!
//! Exit-code contract: `0` success, `1` runtime failure (unknown
//! scenario, invalid spec, simulation/I-O error), `2` usage error
//! (unknown command, flag, or flag value), `3` partial failure (the
//! report was emitted but some cells carry a non-ok supervision
//! status).

#[path = "common/json_lint.rs"]
mod json_lint;

use json_lint::validate_json;
use std::process::{Command, Output};

fn ctnsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ctnsim"))
        .args(args)
        .output()
        .expect("ctnsim spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("ctnsim exits normally")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = ctnsim(&[]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("USAGE"), "{}", stderr(&out));
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = ctnsim(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown command \"frobnicate\""), "{err}");
    assert!(err.contains("ctnsim help"), "{err}");
}

#[test]
fn unknown_scenario_name_is_a_runtime_error() {
    let out = ctnsim(&["run", "no-such-scenario"]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(
        err.contains("unknown scenario \"no-such-scenario\""),
        "{err}"
    );
    assert!(err.contains("ctnsim list"), "{err}");
}

#[test]
fn bad_model_value_is_a_usage_error() {
    let out = ctnsim(&["run", "incast-burst", "--model", "quantum"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown model \"quantum\""), "{err}");
    assert!(err.contains("med, signature or saturation"), "{err}");
}

#[test]
fn bad_placement_value_is_a_usage_error() {
    let out = ctnsim(&["run", "incast-burst", "--placement", "teleport"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown placement \"teleport\""), "{err}");
    assert!(err.contains("scatter, pack or random"), "{err}");
}

#[test]
fn bad_format_value_is_a_usage_error() {
    let out = ctnsim(&["run", "incast-burst", "--format", "yaml"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown format \"yaml\""), "{err}");
    assert!(err.contains("text, csv or json"), "{err}");
}

#[test]
fn flag_without_value_and_unknown_flag_are_usage_errors() {
    let out = ctnsim(&["run", "incast-burst", "--model"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("--model needs a value"),
        "{}",
        stderr(&out)
    );
    let out = ctnsim(&["run", "incast-burst", "--frobnicate"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("unknown option --frobnicate"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn sweep_without_overrides_is_a_usage_error() {
    let out = ctnsim(&["sweep", "incast-burst"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("--nodes and/or --sizes"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn show_unknown_builtin_is_a_runtime_error() {
    let out = ctnsim(&["show", "no-such-builtin"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("unknown built-in \"no-such-builtin\""),
        "{}",
        stderr(&out)
    );
}

#[test]
fn list_names_every_builtin() {
    let out = ctnsim(&["list"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    for spec in contention_scenario::registry::builtin() {
        assert!(text.contains(&spec.name), "list misses {}", spec.name);
    }
}

/// Backend-restricted builtins are flagged in the listing so nobody
/// submits a 1k–4k-host fluid scenario to the packet tier and discovers
/// the mistake an hour later: every fluid-only row carries `fluid` in
/// the BACKEND column, every unrestricted row carries `any`, and the
/// footnote explains the restriction.
#[test]
fn list_flags_backend_restricted_builtins() {
    use contention_scenario::prelude::Backend;
    let out = ctnsim(&["list"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("BACKEND"), "missing column header:\n{text}");
    let mut fluid_rows = 0;
    for spec in contention_scenario::registry::builtin() {
        let row = text
            .lines()
            .find(|l| l.starts_with(&spec.name))
            .unwrap_or_else(|| panic!("no row for {}", spec.name));
        match spec.backend {
            Backend::Fluid => {
                fluid_rows += 1;
                assert!(row.contains(" fluid "), "unflagged fluid row: {row}");
            }
            Backend::Packet => {
                assert!(row.contains(" any "), "packet row not `any`: {row}");
            }
        }
    }
    assert_eq!(fluid_rows, 2, "the registry has two fluid-only builtins");
    assert!(
        text.contains("fluid backend"),
        "missing footnote about the restriction:\n{text}"
    );
}

/// One tiny real run per format: the json output must satisfy the strict
/// validity lint, the csv output the fixed header, the text output the
/// version banner; `--progress` streams cell lines to stderr without
/// touching stdout.
#[test]
fn run_emits_all_three_formats_and_streams_progress() {
    let base = [
        "run",
        "incast-burst",
        "--nodes",
        "4",
        "--sizes",
        "16384",
        "--reps",
        "1",
        "--warmup",
        "0",
        "--workers",
        "2",
    ];
    let json = ctnsim(&[&base[..], &["--format", "json"]].concat());
    assert_eq!(code(&json), 0, "{}", stderr(&json));
    let json_text = stdout(&json);
    validate_json(&json_text).expect("ctnsim --format json emits valid JSON");
    assert!(json_text.contains("\"schema_version\": 1"), "{json_text}");

    let csv = ctnsim(&[&base[..], &["--format", "csv"]].concat());
    assert_eq!(code(&csv), 0);
    assert!(
        stdout(&csv).starts_with("scenario,topology,workload,n,"),
        "{}",
        stdout(&csv)
    );

    let text = ctnsim(&[&base[..], &["--format", "text", "--progress"]].concat());
    assert_eq!(code(&text), 0);
    assert!(
        stdout(&text).starts_with("report v1\n"),
        "{}",
        stdout(&text)
    );
    let progress = stderr(&text);
    assert!(progress.contains("[1/1]"), "{progress}");
    assert!(progress.contains("incast-burst: done"), "{progress}");
    assert!(
        progress.contains("hit rate"),
        "--progress ends with the run summary line: {progress}"
    );
}

/// `--metrics` and `--trace` write lint-clean JSON next to an unchanged
/// report: the metrics document carries its schema version and the cell
/// list, the trace file is Chrome trace-event JSON with span events.
#[test]
fn metrics_and_trace_flags_write_valid_json_files() {
    let dir = std::env::temp_dir().join(format!("ctnsim-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");
    let out = ctnsim(&[
        "run",
        "incast-burst",
        "--nodes",
        "4",
        "--sizes",
        "16384",
        "--reps",
        "1",
        "--warmup",
        "0",
        "--workers",
        "2",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(
        stdout(&out).starts_with("scenario,topology,workload,n,"),
        "report still lands on stdout: {}",
        stdout(&out)
    );

    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    validate_json(&metrics).expect("--metrics emits valid JSON");
    assert!(
        metrics.contains("\"metrics_schema_version\": 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("\"engine\": {"),
        "telemetry attached: {metrics}"
    );

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    validate_json(&trace).expect("--trace emits valid JSON");
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(
        trace.contains("\"ph\":\"X\""),
        "cell spans present: {trace}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The GM-on-finite-buffer trap as a TOML spec: the run terminates,
/// emits a schema-v2 report with `deadlocked` rows, and exits 3
/// (partial failure) instead of hanging.
#[test]
fn deadlocking_spec_exits_3_with_deadlocked_status() {
    let dir = std::env::temp_dir().join(format!("ctnsim-supervision-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec_path = dir.join("gm-trap.toml");
    std::fs::write(
        &spec_path,
        r#"name = "gm-finite-buffer-trap"

[sweep]
message_bytes = [262144]
nodes = [4]
reps = 1
warmup = 0

[topology]
hosts = 4
kind = "single-switch"

[topology.link]
bandwidth_bytes_per_sec = 125000000.0
latency_ns = 20000

[topology.switch]
per_port_cap_bytes = 8192
shared_buffer_bytes = 16384

[transport]
kind = "gm"
window_bytes = 1048576

[workload]
kind = "incast"
receivers = 1
"#,
    )
    .expect("write spec");
    let out = ctnsim(&[
        "run",
        spec_path.to_str().unwrap(),
        "--format",
        "json",
        "--workers",
        "1",
        "--deadline",
        "60",
    ]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let json = stdout(&out);
    validate_json(&json).expect("partial-failure report is still valid JSON");
    assert!(json.contains("\"schema_version\": 2"), "{json}");
    assert!(json.contains("\"status\": \"deadlocked\""), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Supervision flags reject malformed values as usage errors.
#[test]
fn bad_supervision_flag_values_are_usage_errors() {
    for args in [
        ["run", "incast-burst", "--deadline", "zero"],
        ["run", "incast-burst", "--deadline", "-1"],
        ["run", "incast-burst", "--event-budget", "many"],
    ] {
        let out = ctnsim(&args);
        assert_eq!(code(&out), 2, "{args:?}: {}", stderr(&out));
    }
}
