//! A minimal strict JSON validity checker shared by the report-golden and
//! CLI integration tests (the workspace has no JSON dependency; this is a
//! test-only lint, not a parser — it builds no tree, it only accepts or
//! rejects).
//!
//! Checks the whole grammar the reports can emit: objects, arrays,
//! strings with escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`), numbers
//! (rejecting bare `inf`/`NaN`/leading zeros), `true`/`false`/`null`, and
//! trailing garbage.

/// Validates that `input` is exactly one JSON value (plus whitespace).
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    skip_ws(&bytes, &mut pos);
    value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at char {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {c:?} at char {pos}, found {:?}",
            b.get(*pos)
        ))
    }
}

fn value(b: &[char], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => object(b, pos),
        Some('[') => array(b, pos),
        Some('"') => string(b, pos),
        Some('t') => literal(b, pos, "true"),
        Some('f') => literal(b, pos, "false"),
        Some('n') => literal(b, pos, "null"),
        Some(c) if *c == '-' || c.is_ascii_digit() => number(b, pos),
        other => Err(format!("unexpected {other:?} at char {pos}")),
    }
}

fn literal(b: &[char], pos: &mut usize, word: &str) -> Result<(), String> {
    for c in word.chars() {
        expect(b, pos, c)?;
    }
    Ok(())
}

fn object(b: &[char], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, '{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ':')?;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(());
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at char {pos}, found {other:?}"
                ))
            }
        }
    }
}

fn array(b: &[char], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, '[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(());
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at char {pos}, found {other:?}"
                ))
            }
        }
    }
}

fn string(b: &[char], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, '"')?;
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *pos += 1;
                return Ok(());
            }
            Some('\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => *pos += 1,
                    Some('u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                other => {
                                    return Err(format!("bad \\u escape at char {pos}: {other:?}"))
                                }
                            }
                        }
                    }
                    other => return Err(format!("bad escape at char {pos}: {other:?}")),
                }
            }
            Some(c) if (*c as u32) < 0x20 => {
                return Err(format!("raw control char {:#x} at char {pos}", *c as u32))
            }
            Some(_) => *pos += 1,
        }
    }
}

fn number(b: &[char], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    // Integer part: 0 | [1-9][0-9]*
    match b.get(*pos) {
        Some('0') => {
            *pos += 1;
            if matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                return Err(format!("leading zero at char {pos}"));
            }
        }
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        other => return Err(format!("bad number at char {pos}: {other:?}")),
    }
    if b.get(*pos) == Some(&'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad fraction at char {pos}"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some('e' | 'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some('+' | '-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad exponent at char {pos}"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}
