//! Golden-file coverage of the TOML round-trip: a checked-in document must
//! decode to exactly the expected spec, re-encode, and decode back equal.

use contention_scenario::spec::{
    Backend, LinkSpec, MpiSpec, ScenarioSpec, SweepSpec, SwitchSpec, TopologySpec, TransportSpec,
    WorkloadSpec,
};
use simnet::generate::Placement;

const GOLDEN: &str = include_str!("golden/oversubscribed_tree.toml");

fn expected() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden-oversubscribed-tree".into(),
        description: "Skewed exchange over a 4:1 oversubscribed tree (golden file)".into(),
        topology: TopologySpec::Tree {
            leaves: 4,
            hosts_per_leaf: 6,
            edge_link: LinkSpec {
                bandwidth_bytes_per_sec: 125e6,
                latency_ns: 20_000,
            },
            oversubscription: 4.0,
            uplinks_per_leaf: 2,
            uplink_latency_ns: 10_000,
            edge_switch: SwitchSpec {
                shared_buffer_bytes: 262_144,
                per_port_cap_bytes: 65_536,
            },
            core_switch: SwitchSpec {
                shared_buffer_bytes: 1_048_576,
                per_port_cap_bytes: 131_072,
            },
        },
        placement: Placement::Scatter,
        transport: TransportSpec::Tcp {
            window_bytes: 65_536,
        },
        mpi: MpiSpec {
            eager_threshold: Some(8192),
            hiccup_probability: Some(0.01),
            ..MpiSpec::default()
        },
        workload: WorkloadSpec::Phases {
            phases: vec![
                WorkloadSpec::Skewed {
                    hot_ranks: 2,
                    factor: 4.0,
                    nonblocking: true,
                },
                WorkloadSpec::Uniform {
                    algorithm: "direct".into(),
                },
            ],
        },
        sweep: SweepSpec {
            nodes: vec![8, 16],
            message_bytes: vec![65_536, 262_144],
            warmup: 1,
            reps: 2,
        },
        backend: Backend::Packet,
    }
}

#[test]
fn golden_file_decodes_to_expected_spec() {
    let parsed = ScenarioSpec::from_toml_str(GOLDEN).expect("golden file parses");
    assert_eq!(parsed, expected());
}

#[test]
fn golden_spec_round_trips_through_serializer() {
    let spec = expected();
    let text = spec.to_toml_string();
    let reparsed = ScenarioSpec::from_toml_str(&text)
        .unwrap_or_else(|e| panic!("serialized golden spec failed to reparse: {e}\n{text}"));
    assert_eq!(spec, reparsed);
}

#[test]
fn golden_spec_is_runnable() {
    let mut spec = ScenarioSpec::from_toml_str(GOLDEN).expect("golden file parses");
    // Shrink the grid so the smoke run stays fast.
    spec.sweep = SweepSpec {
        nodes: vec![4],
        message_bytes: vec![16 * 1024],
        warmup: 0,
        reps: 1,
    };
    let session = contention_scenario::session::Session::builder()
        .workers(2)
        .base_seed(5)
        .build()
        .expect("session builds");
    let report = session.run(&spec).expect("golden scenario runs");
    assert_eq!(report.batches[0].cells.len(), 1);
    assert!(report.batches[0].cells[0].mean_secs > 0.0);
}
