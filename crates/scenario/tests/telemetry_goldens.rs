//! Telemetry transparency goldens: attaching a *recording* `Recorder`
//! must not move a single output byte. Every one of the 13 builtin
//! scenarios runs with telemetry on at workers 1/2/8 and must render the
//! same CSV as the plain session; the incast-burst full grid must still
//! reproduce the pre-refactor golden capture. On top of the byte
//! contract, the [`SessionMetrics`] snapshot and its two export formats
//! (metrics JSON, Chrome trace-event JSON) are checked for shape and
//! JSON validity with the lint the report goldens share.

#[path = "common/json_lint.rs"]
mod json_lint;

use contention_scenario::prelude::*;
use json_lint::validate_json;
use std::sync::Arc;

/// Captured at the pre-refactor engine (seed 42, any worker count).
const GOLDEN: &str = include_str!("golden/incast-burst_seed42_workers_any.csv");

fn session(workers: usize, telemetry: bool, cache: &Arc<CalibrationCache>) -> Session {
    Session::builder()
        .workers(workers)
        .base_seed(42)
        .telemetry(telemetry)
        .shared_cache(Arc::clone(cache))
        .build()
        .expect("session builds")
}

fn trimmed(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.sweep.nodes = vec![*spec.sweep.nodes.first().unwrap()];
    spec.sweep.message_bytes = vec![*spec.sweep.message_bytes.first().unwrap()];
    spec.sweep.reps = 1;
    spec.sweep.warmup = 0;
    spec
}

#[test]
fn incast_full_grid_with_telemetry_matches_the_prerefactor_golden() {
    let spec = registry::by_name("incast-burst").expect("built-in");
    let cache = Arc::new(CalibrationCache::new());
    for workers in [1usize, 2, 8] {
        let s = session(workers, true, &cache);
        let report = s.run(&spec).expect("runs");
        assert_eq!(
            report.render(ReportFormat::Csv),
            GOLDEN,
            "workers={workers}: recording telemetry moved report bytes"
        );
        let metrics = s.metrics().expect("snapshot exists after a run");
        assert_eq!(metrics.cells.len(), report.cell_count());
        assert!(
            metrics.cells.iter().all(|c| c.engine.is_some()),
            "telemetry sessions attach engine telemetry to every cell"
        );
    }
}

#[test]
fn all_thirteen_packet_builtins_are_byte_identical_with_a_recording_recorder() {
    // Fluid builtins run grids far too large for a debug-mode triple run;
    // fluid telemetry transparency is covered in fluid_validation.
    let all: Vec<_> = registry::builtin()
        .into_iter()
        .filter(|s| s.backend == Backend::Packet)
        .collect();
    assert_eq!(
        all.len(),
        13,
        "packet builtin count moved; update this oracle"
    );
    let plain_cache = Arc::new(CalibrationCache::new());
    let telem_cache = Arc::new(CalibrationCache::new());
    for spec in all {
        let spec = trimmed(spec);
        let plain = session(1, false, &plain_cache)
            .run(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
            .render(ReportFormat::Csv);
        for workers in [1usize, 2, 8] {
            let report = session(workers, true, &telem_cache)
                .run(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(
                report.render(ReportFormat::Csv),
                plain,
                "{}: workers={workers} with telemetry diverged from the plain session",
                spec.name
            );
        }
    }
}

#[test]
fn session_metrics_snapshot_has_schedule_workers_and_cache_counters() {
    let spec = registry::by_name("incast-burst").expect("built-in");
    let cache = Arc::new(CalibrationCache::new());
    let s = session(2, true, &cache);
    assert!(s.metrics().is_none(), "no snapshot before the first run");
    let report = s.run(&spec).expect("runs");
    let metrics = s.metrics().expect("snapshot after the run");

    assert!(metrics.wall_secs > 0.0);
    assert_eq!(metrics.cells.len(), report.cell_count());
    // Schedule indexes are a permutation of 0..cells, reported in order.
    let schedule: Vec<usize> = metrics.cells.iter().map(|c| c.schedule_index).collect();
    assert_eq!(schedule, (0..metrics.cells.len()).collect::<Vec<_>>());
    // Worker occupancy accounts for every cell.
    assert_eq!(
        metrics.workers.iter().map(|w| w.cells).sum::<usize>(),
        metrics.cells.len()
    );
    assert!(metrics.workers.iter().all(|w| w.busy_secs >= 0.0));
    // First run on a fresh cache: misses only.
    assert_eq!(metrics.cache.hits, 0);
    assert!(metrics.cache.misses >= 1);
    assert_eq!(metrics.cache.inserts, metrics.cache.misses);
    for cell in &metrics.cells {
        assert!(cell.wall_secs >= 0.0 && cell.start_secs >= 0.0);
        let engine = cell.engine.as_ref().expect("telemetry session");
        assert!(engine.events > 0, "{}: no events recorded", cell.scenario);
        assert!(
            engine.links.iter().any(|l| l.busy_ns > 0),
            "{}: no busy links",
            cell.scenario
        );
    }

    // Second run over the same spec: everything is memoized.
    s.run(&spec).expect("runs again");
    let again = s.metrics().expect("snapshot replaced");
    assert_eq!(again.cache.misses, 0);
    assert!(again.cache.hits >= 1);
}

#[test]
fn metrics_and_trace_exports_pass_the_shared_json_lint() {
    let spec = trimmed(registry::by_name("incast-burst").expect("built-in"));
    let cache = Arc::new(CalibrationCache::new());
    let s = session(2, true, &cache);
    s.run(&spec).expect("runs");
    let metrics = s.metrics().expect("snapshot");

    let doc = metrics.render_json();
    validate_json(&doc).unwrap_or_else(|e| panic!("metrics JSON invalid: {e}\n{doc}"));
    assert!(doc.contains("\"metrics_schema_version\": 1"));
    assert!(doc.contains("\"cells\""));

    let trace = metrics.render_chrome_trace();
    validate_json(&trace).unwrap_or_else(|e| panic!("trace JSON invalid: {e}\n{trace}"));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""), "cell spans present");
    assert!(trace.contains("\"ph\":\"M\""), "metadata records present");
}

#[test]
fn disabled_telemetry_still_snapshots_wall_clock_and_schedule() {
    let spec = trimmed(registry::by_name("incast-burst").expect("built-in"));
    let cache = Arc::new(CalibrationCache::new());
    let s = session(1, false, &cache);
    s.run(&spec).expect("runs");
    let metrics = s.metrics().expect("snapshot exists without telemetry");
    assert_eq!(metrics.cells.len(), 1);
    assert!(metrics.cells[0].engine.is_none(), "no recorder attached");
    assert!(metrics.wall_secs > 0.0);
    // The no-engine document still lints.
    validate_json(&metrics.render_json()).expect("valid JSON");
    validate_json(&metrics.render_chrome_trace()).expect("valid trace JSON");
}
