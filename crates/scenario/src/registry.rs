//! The built-in scenario library: the paper's three clusters re-expressed
//! as specs, plus fabrics and workloads the paper could not measure —
//! multi-level trees with controlled oversubscription, fat-trees, tori
//! and dragonflies under scatter/pack/random placement, and irregular
//! exchanges.
//!
//! Every builtin is constructed through the
//! [`ScenarioBuilder`] — the registry is
//! both the scenario library and the living proof that the programmatic
//! API expresses everything the engine can run.

use crate::builder::ScenarioBuilder;
use crate::spec::{Backend, LinkSpec, ScenarioSpec, SwitchSpec, TopologySpec, WorkloadSpec};
use simnet::generate::Placement;

fn kib(n: u64) -> u64 {
    n * 1024
}

fn paper_cluster(preset: &str, description: &str, nodes: Vec<usize>) -> ScenarioSpec {
    // Preset topologies carry their own transport/MPI stacks; the
    // builder's transport default is ignored for them.
    ScenarioBuilder::new(format!("paper-{preset}"))
        .description(description)
        .preset(preset)
        .uniform("direct")
        .nodes(nodes)
        .message_bytes([kib(64), kib(256), kib(512)])
        .warmup(1)
        .reps(2)
        .build()
        .expect("paper preset builtin is valid")
}

/// All built-in scenarios, in presentation order.
pub fn builtin() -> Vec<ScenarioSpec> {
    let fast_link = LinkSpec {
        bandwidth_bytes_per_sec: 125e6,
        latency_ns: 20_000,
    };
    let small_switch = SwitchSpec {
        shared_buffer_bytes: 256 * 1024,
        per_port_cap_bytes: 64 * 1024,
    };
    let deep_switch = SwitchSpec {
        shared_buffer_bytes: 4 * 1024 * 1024,
        per_port_cap_bytes: 1024 * 1024,
    };
    let lossless_switch = SwitchSpec {
        shared_buffer_bytes: u64::MAX / 4,
        per_port_cap_bytes: u64::MAX / 8,
    };
    let valid = |b: ScenarioBuilder| b.build().expect("builtin scenario is valid");

    vec![
        paper_cluster(
            "fast-ethernet",
            "Steffenel's icluster2 Fast Ethernet testbed (Figs. 6-8) as a spec",
            vec![8, 16, 24],
        ),
        paper_cluster(
            "gigabit-ethernet",
            "Steffenel's GdX Gigabit Ethernet testbed (Figs. 9-11) as a spec",
            vec![8, 16, 24],
        ),
        paper_cluster(
            "myrinet",
            "Steffenel's icluster2 Myrinet 2000 testbed (Figs. 12-14) as a spec",
            vec![8, 16],
        ),
        valid(
            ScenarioBuilder::new("fat-tree-uniform")
                .description(
                    "Uniform All-to-All on a 4-ary fat-tree: rearrangeably non-blocking, \
                     contention comes from ECMP collisions, not capacity",
                )
                .fat_tree(4, 4, fast_link, small_switch)
                .tcp(kib(64))
                .uniform("direct-nb")
                .nodes([8, 16])
                .message_bytes([kib(64), kib(256)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("oversubscribed-tree-skewed")
                .description(
                    "Skewed irregular exchange over a 4:1 oversubscribed two-level tree \
                     (the Oltchik-style partitioning stress: hot senders share thin uplinks)",
                )
                .topology(TopologySpec::Tree {
                    leaves: 4,
                    hosts_per_leaf: 6,
                    edge_link: fast_link,
                    oversubscription: 4.0,
                    uplinks_per_leaf: 1,
                    uplink_latency_ns: 10_000,
                    edge_switch: small_switch,
                    core_switch: small_switch,
                })
                .tcp(kib(64))
                .skewed(2, 4.0, true)
                .nodes([8, 16, 24])
                .message_bytes([kib(32), kib(128)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("incast-burst")
                .description(
                    "All-to-one incast on a shallow-buffered switch: the paper's \u{a7}3 \
                     buffer-exhaustion stress as a reusable scenario",
                )
                .single_switch(16, fast_link, small_switch)
                .tcp(kib(64))
                .incast(1)
                .nodes([4, 8, 16])
                .message_bytes([kib(128), kib(512)])
                .warmup(0)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("sparse-star")
                .description(
                    "Sparse (40%) irregular exchange over a star of switches — the Bienz \
                     irregular-communication regime single-switch models miss",
                )
                .topology(TopologySpec::StarOfSwitches {
                    leaves: 3,
                    hosts_per_leaf: 8,
                    edge_link: fast_link,
                    uplink: LinkSpec {
                        bandwidth_bytes_per_sec: 250e6,
                        latency_ns: 10_000,
                    },
                    uplinks_per_leaf: 2,
                    edge_switch: small_switch,
                    core_switch: deep_switch,
                })
                .tcp(kib(64))
                .sparse(0.4, true)
                .nodes([8, 16, 24])
                .message_bytes([kib(64), kib(256)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("permutation-lossless")
                .description(
                    "Random permutation traffic on a lossless single switch: the \
                     contention-free baseline every irregular pattern is judged against",
                )
                .single_switch(
                    24,
                    LinkSpec {
                        bandwidth_bytes_per_sec: 250e6,
                        latency_ns: 4_000,
                    },
                    lossless_switch,
                )
                .gm(kib(1024))
                .hiccup_probability(0.0)
                .permutation()
                .nodes([8, 16, 24])
                .message_bytes([kib(256), kib(1024)])
                .warmup(0)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("mixed-phases-tree")
                .description(
                    "Multi-phase mix (permutation, then incast, then uniform) over an \
                     oversubscribed tree — the shifting-bottleneck case single-pattern \
                     models cannot fit",
                )
                .topology(TopologySpec::Tree {
                    leaves: 2,
                    hosts_per_leaf: 8,
                    edge_link: fast_link,
                    oversubscription: 2.0,
                    uplinks_per_leaf: 2,
                    uplink_latency_ns: 10_000,
                    edge_switch: small_switch,
                    core_switch: deep_switch,
                })
                .tcp(kib(64))
                .phases([
                    WorkloadSpec::Permutation,
                    WorkloadSpec::Incast { receivers: 2 },
                    WorkloadSpec::Uniform {
                        algorithm: "direct".into(),
                    },
                ])
                .nodes([8, 16])
                .message_bytes([kib(64), kib(128)])
                .warmup(0)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("torus-neighbor-exchange")
                .description(
                    "Ring-algorithm All-to-All on a packed 4\u{d7}4 torus: neighbour-heavy \
                     rounds meet dimension-ordered routing, so contention concentrates on \
                     the rings the packing straddles",
                )
                .torus_2d(4, 4, 2, fast_link, deep_switch)
                .placement(Placement::Pack)
                .tcp(kib(64))
                .uniform("ring")
                .nodes([8, 16, 32])
                .message_bytes([kib(64), kib(256)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("torus3d-random-permutation")
                .description(
                    "Permutation traffic on a 3\u{d7}3\u{d7}3 torus under seeded random \
                     placement — the fragmented-batch-queue regime where e-cube routes \
                     collide unpredictably (Bienz-style placement sensitivity)",
                )
                // GM never retransmits, so the torus must be lossless
                // (Myrinet-style link-level backpressure) — a dropped
                // frame would deadlock the permutation.
                .torus_3d(3, 3, 3, 1, fast_link, lossless_switch)
                .placement(Placement::RandomSeeded)
                .gm(kib(256))
                .permutation()
                .nodes([8, 16, 27])
                .message_bytes([kib(128), kib(512)])
                .warmup(0)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("dragonfly-adversarial-uniform")
                .description(
                    "Uniform All-to-All on a packed dragonfly (4 groups \u{d7} 4 routers \
                     \u{d7} 2 hosts): packing fills whole groups, so every cross-group \
                     byte funnels through single global links — the adversarial pattern \
                     minimal routing cannot dodge",
                )
                .topology(TopologySpec::Dragonfly {
                    groups: 4,
                    routers_per_group: 4,
                    hosts_per_router: 2,
                    host_link: fast_link,
                    local_link: fast_link,
                    global_link: LinkSpec {
                        bandwidth_bytes_per_sec: 250e6,
                        latency_ns: 40_000,
                    },
                    switch: small_switch,
                })
                .placement(Placement::Pack)
                .tcp(kib(64))
                .uniform("direct")
                .nodes([8, 16, 24])
                .message_bytes([kib(64), kib(256)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("packed-vs-scattered-fattree")
                .description(
                    "The fat-tree-uniform fabric under Pack placement — diff its report \
                     against fat-tree-uniform to read the placement cost directly \
                     (same grid, same seeds, only the rank\u{2192}host map differs)",
                )
                .fat_tree(4, 4, fast_link, small_switch)
                .placement(Placement::Pack)
                .tcp(kib(64))
                .uniform("direct-nb")
                .nodes([8, 16])
                .message_bytes([kib(64), kib(256)])
                .warmup(1)
                .reps(2),
        ),
        valid(
            ScenarioBuilder::new("fat-tree-1024-alltoall")
                .description(
                    "Uniform All-to-All across a full 16-ary fat-tree (1024 hosts, ~1M \
                     simultaneous flows) — the capacity-planning scale only the fluid \
                     tier can reach",
                )
                .fat_tree(16, 8, fast_link, deep_switch)
                .tcp(kib(64))
                .uniform("direct-nb")
                .nodes([1024])
                .message_bytes([kib(1024)])
                .warmup(0)
                .reps(1)
                .backend(Backend::Fluid),
        ),
        valid(
            ScenarioBuilder::new("dragonfly-4k-adversarial")
                .description(
                    "Permutation traffic on a packed 16\u{d7}16\u{d7}16 dragonfly (4096 \
                     hosts): packing fills whole groups, so the permutation's cross-group \
                     bytes all funnel through single global links — fluid tier only",
                )
                .topology(TopologySpec::Dragonfly {
                    groups: 16,
                    routers_per_group: 16,
                    hosts_per_router: 16,
                    host_link: fast_link,
                    local_link: fast_link,
                    global_link: LinkSpec {
                        bandwidth_bytes_per_sec: 250e6,
                        latency_ns: 40_000,
                    },
                    switch: lossless_switch,
                })
                .placement(Placement::Pack)
                .gm(kib(1024))
                .permutation()
                .nodes([4096])
                .message_bytes([kib(1024)])
                .warmup(0)
                .reps(1)
                .backend(Backend::Fluid),
        ),
    ]
}

/// Looks up a built-in scenario by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    builtin().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_valid_unique_scenarios() {
        let all = builtin();
        assert!(all.len() >= 6, "only {} scenarios", all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        for spec in &all {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn paper_clusters_are_present() {
        for name in [
            "paper-fast-ethernet",
            "paper-gigabit-ethernet",
            "paper-myrinet",
        ] {
            assert!(by_name(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn non_tree_fabrics_and_placements_are_present() {
        for (name, kind, placement) in [
            ("torus-neighbor-exchange", "torus-2d", Placement::Pack),
            (
                "torus3d-random-permutation",
                "torus-3d",
                Placement::RandomSeeded,
            ),
            (
                "dragonfly-adversarial-uniform",
                "dragonfly",
                Placement::Pack,
            ),
            ("packed-vs-scattered-fattree", "fat-tree", Placement::Pack),
        ] {
            let spec = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(spec.topology.kind(), kind, "{name}");
            assert_eq!(spec.placement, placement, "{name}");
        }
        // The placement-ablation pair shares fabric and grid, so their
        // reports diff cell-for-cell.
        let scattered = by_name("fat-tree-uniform").unwrap();
        let packed = by_name("packed-vs-scattered-fattree").unwrap();
        assert_eq!(scattered.topology, packed.topology);
        assert_eq!(scattered.sweep, packed.sweep);
    }
}
