//! A dependency-free TOML subset: enough to round-trip [`ScenarioSpec`]
//! documents (the build environment has no crates.io access, so the real
//! `toml` crate is unavailable).
//!
//! Supported: `[table]` / `[dotted.table]` headers, `key = value` pairs
//! with bare or dotted keys, basic strings with `\" \\ \n \t` escapes,
//! integers (with `_` separators), floats, booleans, arrays (nestable,
//! multi-line), and inline tables `{ k = v, ... }`. Comments run from `#`
//! to end of line outside strings. Unsupported TOML (array-of-tables
//! headers, literal/multiline strings, dates) is rejected with an error —
//! never silently misread.
//!
//! [`ScenarioSpec`]: crate::spec::ScenarioSpec

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A table (sorted keys, so serialization is deterministic).
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// New empty table.
    pub fn table() -> Self {
        Value::Table(BTreeMap::new())
    }

    /// The table's entry at `key`, if this is a table and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float content; integers coerce (TOML writers often drop `.0`).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Walks `path`, creating empty tables as needed, without disturbing
    /// existing content. Errors if a non-table is in the way.
    fn ensure_path(&mut self, path: &[String]) -> Result<(), TomlError> {
        let mut node = self;
        for part in path {
            let Value::Table(map) = node else {
                return Err(TomlError::new(0, format!("{part} is not a table")));
            };
            node = map.entry(part.clone()).or_insert_with(Value::table);
        }
        match node {
            Value::Table(_) => Ok(()),
            _ => Err(TomlError::new(
                0,
                "redefining a non-table as a table".to_string(),
            )),
        }
    }

    /// Inserts into a (possibly nested) table, creating intermediate
    /// tables along `path`.
    fn insert_path(&mut self, path: &[String], key: String, value: Value) -> Result<(), TomlError> {
        let mut node = self;
        for part in path {
            let Value::Table(map) = node else {
                return Err(TomlError::new(0, format!("{part} is not a table")));
            };
            node = map.entry(part.clone()).or_insert_with(Value::table);
        }
        let Value::Table(map) = node else {
            return Err(TomlError::new(0, format!("{key} parent is not a table")));
        };
        if map.insert(key.clone(), value).is_some() {
            return Err(TomlError::new(0, format!("duplicate key {key}")));
        }
        Ok(())
    }
}

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// Line the error was detected on (0 when unknown).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "TOML line {}: {}", self.line, self.message)
        } else {
            write!(f, "TOML: {}", self.message)
        }
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into a root [`Value::Table`].
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root = Value::table();
    let mut current_path: Vec<String> = Vec::new();
    let mut lines = LogicalLines::new(input);
    while let Some((line_no, line)) = lines.next_logical()? {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let _ = header;
            return Err(TomlError::new(
                line_no,
                "array-of-tables headers are not supported; use an inline-table array value",
            ));
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(inner) = rest.strip_suffix(']') else {
                return Err(TomlError::new(line_no, "unterminated table header"));
            };
            current_path = split_key(inner, line_no)?;
            // Materialize the table (without disturbing an existing one)
            // so empty sections still appear.
            root.ensure_path(&current_path)
                .map_err(|e| TomlError::new(line_no, e.message))?;
            continue;
        }
        let Some(eq) = find_unquoted(line, '=') else {
            return Err(TomlError::new(
                line_no,
                format!("expected key = value, got {line:?}"),
            ));
        };
        let key_part = line[..eq].trim();
        let value_part = line[eq + 1..].trim();
        let mut key_path = split_key(key_part, line_no)?;
        let Some(final_key) = key_path.pop() else {
            return Err(TomlError::new(line_no, "empty key"));
        };
        let mut parser = ValueParser {
            chars: value_part.char_indices().peekable(),
            src: value_part,
            line: line_no,
        };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.chars.peek().is_some() {
            return Err(TomlError::new(line_no, "trailing characters after value"));
        }
        let mut full_path = current_path.clone();
        full_path.extend(key_path);
        root.insert_path(&full_path, final_key, value)
            .map_err(|e| TomlError::new(line_no, e.message))?;
    }
    Ok(root)
}

/// Joins physical lines until brackets/braces balance outside strings, so
/// arrays and inline tables may span lines.
struct LogicalLines<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> LogicalLines<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            lines: input.lines().enumerate(),
        }
    }

    fn next_logical(&mut self) -> Result<Option<(usize, String)>, TomlError> {
        let Some((idx, first)) = self.lines.next() else {
            return Ok(None);
        };
        let line_no = idx + 1;
        let mut acc = strip_comment(first).to_string();
        let mut depth = bracket_depth(&acc, line_no)?;
        while depth > 0 {
            let Some((_, next)) = self.lines.next() else {
                return Err(TomlError::new(
                    line_no,
                    "unterminated array or inline table",
                ));
            };
            acc.push(' ');
            acc.push_str(strip_comment(next));
            depth = bracket_depth(&acc, line_no)?;
        }
        Ok(Some((line_no, acc)))
    }
}

/// Removes a `#` comment (outside strings).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Net `[`/`{` depth outside strings (negative is an error).
fn bracket_depth(s: &str, line_no: usize) -> Result<i32, TomlError> {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
        if depth < 0 {
            return Err(TomlError::new(line_no, "unbalanced closing bracket"));
        }
    }
    if in_str {
        return Err(TomlError::new(line_no, "unterminated string"));
    }
    Ok(depth)
}

/// First `needle` outside quotes.
fn find_unquoted(s: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            c if c == needle && !in_str => return Some(i),
            _ => {}
        }
        escaped = false;
    }
    None
}

/// Splits `a.b.c` into components; components may be bare or quoted.
fn split_key(s: &str, line_no: usize) -> Result<Vec<String>, TomlError> {
    let mut parts = Vec::new();
    for raw in s.split('.') {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err(TomlError::new(
                line_no,
                format!("empty key component in {s:?}"),
            ));
        }
        let part = if let Some(q) = raw.strip_prefix('"') {
            q.strip_suffix('"')
                .ok_or_else(|| TomlError::new(line_no, "unterminated quoted key"))?
                .to_string()
        } else {
            if !raw
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(TomlError::new(line_no, format!("invalid bare key {raw:?}")));
            }
            raw.to_string()
        };
        parts.push(part);
    }
    Ok(parts)
}

struct ValueParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    line: usize,
}

impl ValueParser<'_> {
    fn err(&self, msg: impl Into<String>) -> TomlError {
        TomlError::new(self.line, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        self.skip_ws();
        let next = self.chars.peek().map(|&(_, c)| c);
        match next {
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some('t' | 'f') => self.parse_bool(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character {c:?} in value"))),
            None => Err(self.err("missing value")),
        }
    }

    fn parse_string(&mut self) -> Result<Value, TomlError> {
        self.chars.next(); // opening quote
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(Value::Str(out)),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = self.chars.next() else {
                                return Err(self.err("truncated \\u escape"));
                            };
                            let Some(d) = h.to_digit(16) else {
                                return Err(self.err(format!("invalid hex digit {h:?} in \\u")));
                            };
                            code = code * 16 + d;
                        }
                        let Some(c) = char::from_u32(code) else {
                            return Err(self.err(format!("\\u{code:04x} is not a scalar value")));
                        };
                        out.push(c);
                    }
                    Some((_, c)) => return Err(self.err(format!("unsupported escape \\{c}"))),
                    None => return Err(self.err("unterminated escape")),
                },
                Some((_, c)) => out.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        self.chars.next(); // [
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, ']'))) {
                self.chars.next();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.chars.peek() {
                Some((_, ',')) => {
                    self.chars.next();
                }
                Some((_, ']')) => {}
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        self.chars.next(); // {
        let mut map = BTreeMap::new();
        loop {
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, '}'))) {
                self.chars.next();
                return Ok(Value::Table(map));
            }
            let mut key = String::new();
            while let Some(&(_, c)) = self.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    key.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            if key.is_empty() {
                return Err(self.err("expected key in inline table"));
            }
            self.skip_ws();
            match self.chars.next() {
                Some((_, '=')) => {}
                _ => return Err(self.err("expected = in inline table")),
            }
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key} in inline table")));
            }
            self.skip_ws();
            match self.chars.peek() {
                Some((_, ',')) => {
                    self.chars.next();
                }
                Some((_, '}')) => {}
                _ => return Err(self.err("expected , or } in inline table")),
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, TomlError> {
        let start = self.chars.peek().map(|&(i, _)| i).unwrap_or(0);
        let rest = &self.src[start..];
        if let Some(r) = rest.strip_prefix("true") {
            let _ = r;
            for _ in 0..4 {
                self.chars.next();
            }
            Ok(Value::Bool(true))
        } else if rest.starts_with("false") {
            for _ in 0..5 {
                self.chars.next();
            }
            Ok(Value::Bool(false))
        } else {
            Err(self.err("expected true or false"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let mut text = String::new();
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_ascii_digit() || "+-._eE".contains(c) {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        let cleaned: String = text.chars().filter(|&c| c != '_').collect();
        if cleaned.contains('.') || cleaned.to_ascii_lowercase().contains('e') {
            cleaned
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float {text:?}")))
        } else {
            cleaned
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer {text:?}")))
        }
    }
}

/// Serializes a root table back to TOML text. Scalars and arrays of the
/// current table are emitted first (sorted), then nested tables as
/// `[dotted.headers]` — the exact shape [`parse`] accepts, so
/// `parse(serialize(v)) == v` for any value tree this module produces.
pub fn serialize(root: &Value) -> String {
    let mut out = String::new();
    let Value::Table(map) = root else {
        panic!("serialize expects a root table");
    };
    emit_table(map, &mut Vec::new(), &mut out);
    out
}

fn emit_table(map: &BTreeMap<String, Value>, path: &mut Vec<String>, out: &mut String) {
    for (k, v) in map {
        if !matches!(v, Value::Table(_)) {
            out.push_str(&format!("{} = {}\n", bare_or_quoted(k), inline(v)));
        }
    }
    for (k, v) in map {
        if let Value::Table(sub) = v {
            path.push(k.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            let header: Vec<String> = path.iter().map(|p| bare_or_quoted(p)).collect();
            out.push_str(&format!("[{}]\n", header.join(".")));
            emit_table(sub, path, out);
            path.pop();
        }
    }
}

/// Emits a basic string using only escapes [`parse`] understands, so the
/// round-trip guarantee holds for any content (Rust's `{:?}` would emit
/// `\u{…}` forms the parser rejects).
fn toml_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn bare_or_quoted(k: &str) -> String {
    if !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        k.to_string()
    } else {
        toml_string(k)
    }
}

fn inline(v: &Value) -> String {
    match v {
        Value::Str(s) => toml_string(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            let text = format!("{f}");
            // Keep the float-ness visible so reparsing yields a Float.
            if text.contains(['.', 'e', 'E']) {
                text
            } else {
                format!("{text}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(inline).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{} = {}", bare_or_quoted(k), inline(v)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# demo
name = "alltoall" # trailing comment
count = 1_000
ratio = 2.5
big = 1.25e8
on = true

[sweep]
nodes = [4, 8,
         16]
phases = [{ kind = "uniform" }, { kind = "incast", receivers = 2 }]

[topology.link]
latency_ns = 20000
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("alltoall"));
        assert_eq!(v.get("count").unwrap().as_int(), Some(1000));
        assert_eq!(v.get("ratio").unwrap().as_float(), Some(2.5));
        assert_eq!(v.get("big").unwrap().as_float(), Some(1.25e8));
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
        let nodes = v
            .get("sweep")
            .unwrap()
            .get("nodes")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[2].as_int(), Some(16));
        let phases = v
            .get("sweep")
            .unwrap()
            .get("phases")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(phases[1].get("receivers").unwrap().as_int(), Some(2));
        assert_eq!(
            v.get("topology")
                .unwrap()
                .get("link")
                .unwrap()
                .get("latency_ns")
                .unwrap()
                .as_int(),
            Some(20_000)
        );
    }

    #[test]
    fn serialization_round_trips() {
        let doc = r#"
name = "x"
[a]
q = [1, 2, 3]
r = 1.5
[a.b]
s = "deep"
t = { u = 1, v = "w" }
"#;
        let v = parse(doc).unwrap();
        let text = serialize(&v);
        let reparsed = parse(&text).unwrap();
        assert_eq!(v, reparsed, "round-trip through:\n{text}");
    }

    #[test]
    fn control_characters_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(
            "s".to_string(),
            Value::Str("line\nreturn\rtab\tbell\u{7}quote\"\\".to_string()),
        );
        let v = Value::Table(map);
        let text = serialize(&v);
        assert_eq!(parse(&text).unwrap(), v, "through:\n{text}");
        // \u escapes also parse directly.
        let parsed = parse("x = \"a\\u0041b\"").unwrap();
        assert_eq!(parsed.get("x").unwrap().as_str(), Some("aAb"));
        assert!(parse("x = \"\\uZZZZ\"").is_err());
        assert!(parse("x = \"\\u00\"").is_err());
    }

    #[test]
    fn rejects_unsupported_and_malformed() {
        assert!(parse("[[points]]\nx = 1").is_err());
        assert!(parse("a = ").is_err());
        assert!(parse("a = [1, 2").is_err());
        assert!(parse("a = 1\na = 2").is_err());
        assert!(parse("a = \"unterminated").is_err());
        assert!(parse("date = 2006-09-25").is_err());
    }

    #[test]
    fn duplicate_table_header_is_tolerated_but_duplicate_key_is_not() {
        let ok = parse("[a]\nx = 1\n[a]\ny = 2").unwrap();
        assert_eq!(ok.get("a").unwrap().get("y").unwrap().as_int(), Some(2));
        assert!(parse("[a]\nx = 1\n[a]\nx = 2").is_err());
    }
}
