//! Per-run telemetry: cell/worker/cache metrics and their two export
//! formats (a metrics JSON document and a Chrome trace-event timeline).
//!
//! Every [`Session`](crate::session::Session) run assembles a
//! [`SessionMetrics`] snapshot — wall-clock spans, LPT schedule
//! positions, worker occupancy and calibration-cache counters are always
//! collected (they cost a few atomic increments and `Instant` reads per
//! cell); per-cell **engine** telemetry (link utilization series, event
//! marks, queue histograms) is attached only when the session was built
//! with [`SessionBuilder::telemetry`](crate::session::SessionBuilder::telemetry),
//! because it threads a recording `Recorder` through the simulator.
//!
//! The numbers here are observational: wall-clock times vary run to run,
//! and none of them feed back into simulation results — the byte-identity
//! determinism contract is unaffected by collecting or exporting them.

use simnet::obs::json;
use simnet::obs::{EngineTelemetry, TraceBuilder};

/// Schema version stamped into the metrics JSON document.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Per-link sample series beyond this many links are summarized without
/// their point series (busiest links keep theirs) to bound document size.
const SERIES_LINKS_LIMIT: usize = 16;

/// Event marks exported per cell (the recorder's ring usually holds more).
const MARKS_EXPORT_LIMIT: usize = 512;

/// Links at or above this utilization (permille) count as saturated in
/// the trace timeline.
const SATURATION_PERMILLE: u16 = 950;

/// Calibration-cache counters over one run (or cumulative, from
/// [`CalibrationCache::stats`](crate::session::CalibrationCache::stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fits answered from the memo.
    pub hits: u64,
    /// Fits that had to run.
    pub misses: u64,
    /// Fits inserted into the memo (≤ misses; racing sessions may insert
    /// the same key once each).
    pub inserts: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; zero lookups count as 0.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Counter-wise difference (`self` minus `earlier`), for per-run
    /// deltas over a shared cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
        }
    }

    /// Counter-wise sum — the inverse of [`CacheStats::since`]: adding
    /// every per-run delta over a shared cache reconstructs the lifetime
    /// counters.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            inserts: self.inserts + other.inserts,
        }
    }
}

/// Telemetry for one finished grid cell.
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// Scenario name.
    pub scenario: String,
    /// Rank count.
    pub n: usize,
    /// Per-pair message size in bytes.
    pub message_bytes: u64,
    /// Worker thread that ran the cell.
    pub worker: usize,
    /// Position in the cost-aware (LPT) schedule: 0 started first.
    pub schedule_index: usize,
    /// Wall-clock start, seconds since the run began.
    pub start_secs: f64,
    /// Wall-clock duration of the cell (warmup + measured reps).
    pub wall_secs: f64,
    /// Terminal status name (`ok`, `timed-out`, `budget-exceeded`,
    /// `deadlocked`, `panicked`, `cancelled`) — the supervision outcome
    /// of the cell this telemetry describes.
    pub status: String,
    /// Engine telemetry, present when the session records telemetry.
    pub engine: Option<EngineTelemetry>,
}

impl CellMetrics {
    /// `scenario n=… m=…` — the label used in exports.
    pub fn label(&self) -> String {
        format!("{} n={} m={}", self.scenario, self.n, self.message_bytes)
    }
}

/// Per-worker occupancy over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerMetrics {
    /// Worker thread index.
    pub worker: usize,
    /// Cells this worker completed.
    pub cells: usize,
    /// Wall-clock seconds spent simulating cells.
    pub busy_secs: f64,
}

/// Snapshot of one [`Session`](crate::session::Session) run, retrievable
/// via [`Session::metrics`](crate::session::Session::metrics).
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// Total wall-clock of the run (calibration through assembly).
    pub wall_secs: f64,
    /// Per-worker occupancy, indexed by worker thread.
    pub workers: Vec<WorkerMetrics>,
    /// Calibration-cache activity during this run.
    pub cache: CacheStats,
    /// One entry per finished cell, in LPT schedule order.
    pub cells: Vec<CellMetrics>,
}

impl SessionMetrics {
    /// Folds another run's snapshot into this one, for aggregation
    /// across sessions (a daemon serving many runs wants one cumulative
    /// document, not one per session):
    ///
    /// * `wall_secs` accumulates (total serving time across runs);
    /// * `workers` merge **by worker index** — occupancy of worker *k*
    ///   across runs sums into one entry, kept sorted by index;
    /// * `cache` counters sum (feed per-run *deltas* from
    ///   [`CacheStats::since`] when runs share one cache, or the
    ///   per-run snapshots when each session owns its cache);
    /// * `cells` append in merge order.
    ///
    /// Merging is associative — any fold order over the same snapshots
    /// yields the same aggregate — and `SessionMetrics::default()` is
    /// its identity, so a running aggregate can start empty.
    pub fn merge(&mut self, other: &SessionMetrics) {
        self.wall_secs += other.wall_secs;
        for w in &other.workers {
            match self.workers.iter_mut().find(|m| m.worker == w.worker) {
                Some(mine) => {
                    mine.cells += w.cells;
                    mine.busy_secs += w.busy_secs;
                }
                None => self.workers.push(*w),
            }
        }
        self.workers.sort_by_key(|w| w.worker);
        self.cache = self.cache.merged(&other.cache);
        self.cells.extend(other.cells.iter().cloned());
    }

    /// Aggregates any number of snapshots: [`SessionMetrics::merge`]
    /// folded over the identity.
    pub fn aggregate<'a, I>(runs: I) -> SessionMetrics
    where
        I: IntoIterator<Item = &'a SessionMetrics>,
    {
        let mut total = SessionMetrics::default();
        for run in runs {
            total.merge(run);
        }
        total
    }

    /// Renders the metrics JSON document (schema
    /// [`METRICS_SCHEMA_VERSION`]). Link series are capped to the
    /// busiest `SERIES_LINKS_LIMIT` (16) links per cell; the cap is
    /// recorded in the document so truncation is never silent.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "\"metrics_schema_version\": {METRICS_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!(
            "\"wall_secs\": {},\n",
            json::number(self.wall_secs)
        ));
        out.push_str(&format!(
            "\"cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"hit_rate\": {}}},\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.inserts,
            json::number(self.cache.hit_rate())
        ));
        out.push_str("\"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"worker\": {}, \"cells\": {}, \"busy_secs\": {}}}",
                w.worker,
                w.cells,
                json::number(w.busy_secs)
            ));
        }
        out.push_str("],\n\"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&render_cell_json(c));
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders a Chrome trace-event timeline (loadable in
    /// `chrome://tracing` and Perfetto): cell spans on a wall-clock
    /// process (one row per worker) and link-saturation intervals plus
    /// protocol event marks on a simulated-time process (one row per
    /// cell).
    pub fn render_chrome_trace(&self) -> String {
        let mut t = TraceBuilder::new();
        const WALL_PID: u64 = 1;
        const SIM_PID: u64 = 2;
        t.process_name(WALL_PID, "ctnsim executor (wall clock)");
        t.process_name(SIM_PID, "simulated time (per cell)");
        for w in &self.workers {
            t.thread_name(WALL_PID, w.worker as u64, &format!("worker {}", w.worker));
        }
        for (idx, c) in self.cells.iter().enumerate() {
            t.span(
                WALL_PID,
                c.worker as u64,
                &c.label(),
                "cell",
                c.start_secs * 1e6,
                c.wall_secs * 1e6,
                &[
                    ("schedule_index", c.schedule_index.to_string()),
                    ("n", c.n.to_string()),
                    ("message_bytes", c.message_bytes.to_string()),
                ],
            );
            let Some(engine) = &c.engine else { continue };
            t.thread_name(SIM_PID, idx as u64, &c.label());
            for link in busiest_links(engine) {
                for (start, end) in
                    link.saturated_intervals(SATURATION_PERMILLE, engine.sample_interval_ns)
                {
                    t.span(
                        SIM_PID,
                        idx as u64,
                        &format!("tx{} saturated", link.tx),
                        "link-saturation",
                        start as f64 / 1e3,
                        (end - start) as f64 / 1e3,
                        &[("tx", link.tx.to_string())],
                    );
                }
            }
            for m in engine.marks.iter().take(MARKS_EXPORT_LIMIT) {
                t.instant(
                    SIM_PID,
                    idx as u64,
                    &format!("{} #{}", m.kind.as_str(), m.id),
                    "mark",
                    m.t_ns as f64 / 1e3,
                );
            }
        }
        t.finish()
    }
}

/// Active links of a cell, busiest first, capped at
/// [`SERIES_LINKS_LIMIT`].
fn busiest_links(engine: &EngineTelemetry) -> Vec<&simnet::obs::LinkTelemetry> {
    let mut links: Vec<_> = engine
        .links
        .iter()
        .filter(|l| l.busy_ns > 0 || l.max_queue_bytes > 0 || l.drops > 0)
        .collect();
    links.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.tx.cmp(&b.tx)));
    links.truncate(SERIES_LINKS_LIMIT);
    links
}

fn render_cell_json(c: &CellMetrics) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"scenario\": {}, ", json::string(&c.scenario)));
    out.push_str(&format!(
        "\"n\": {}, \"message_bytes\": {}, \"worker\": {}, \"schedule_index\": {}, ",
        c.n, c.message_bytes, c.worker, c.schedule_index
    ));
    out.push_str(&format!(
        "\"start_secs\": {}, \"wall_secs\": {}, \"status\": {}, ",
        json::number(c.start_secs),
        json::number(c.wall_secs),
        json::string(&c.status)
    ));
    out.push_str("\"engine\": ");
    match &c.engine {
        None => out.push_str("null"),
        Some(e) => out.push_str(&render_engine_json(e, c.wall_secs)),
    }
    out.push('}');
    out
}

fn render_engine_json(e: &EngineTelemetry, wall_secs: f64) -> String {
    let events_per_sec = if wall_secs > 0.0 {
        e.events as f64 / wall_secs
    } else {
        0.0
    };
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"events\": {}, \"pushes\": {}, \"sim_secs\": {}, \"events_per_wall_sec\": {}, \
         \"sample_interval_ns\": {}, ",
        e.events,
        e.pushes,
        json::number(e.sim_span_secs()),
        json::number(events_per_sec),
        e.sample_interval_ns
    ));
    out.push_str(&format!(
        "\"pop_queue_hist\": {}, \"push_queue_hist\": {}, ",
        render_u64_array(&e.pop_queue_hist),
        render_u64_array(&e.push_queue_hist)
    ));
    out.push_str(&format!(
        "\"marks_dropped\": {}, \"marks\": [",
        e.marks_dropped
    ));
    for (i, m) in e.marks.iter().take(MARKS_EXPORT_LIMIT).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"t_ns\": {}, \"kind\": {}, \"id\": {}, \"value\": {}}}",
            m.t_ns,
            json::string(m.kind.as_str()),
            m.id,
            m.value
        ));
    }
    let series = busiest_links(e);
    out.push_str(&format!(
        "], \"series_links_limit\": {SERIES_LINKS_LIMIT}, \"links\": ["
    ));
    let sim_ns = e.last_event_ns.saturating_sub(e.first_event_ns).max(1);
    for (i, l) in series.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"tx\": {}, \"busy_frac\": {}, \"max_queue_bytes\": {}, \"drops\": {}, \
             \"samples_dropped\": {}, \"samples\": [",
            l.tx,
            json::number(l.busy_ns as f64 / sim_ns as f64),
            l.max_queue_bytes,
            l.drops,
            l.samples_dropped
        ));
        for (j, s) in l.samples.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "[{}, {}, {}]",
                s.t_ns, s.util_permille, s.queue_bytes
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn render_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics(with_engine: bool) -> SessionMetrics {
        let engine = with_engine.then(|| EngineTelemetry {
            sample_interval_ns: 1000,
            events: 42,
            pushes: 40,
            first_event_ns: 0,
            last_event_ns: 5000,
            pop_queue_hist: vec![1, 2, 3],
            push_queue_hist: vec![4],
            links: vec![simnet::obs::LinkTelemetry {
                tx: 3,
                busy_ns: 4000,
                max_queue_bytes: 3000,
                drops: 1,
                samples: vec![simnet::obs::Sample {
                    t_ns: 1000,
                    util_permille: 990,
                    queue_bytes: 1500,
                }],
                samples_dropped: 0,
            }],
            marks: vec![simnet::obs::Mark {
                t_ns: 500,
                kind: simnet::obs::MarkKind::Timeout,
                id: 2,
                value: 0,
            }],
            marks_dropped: 0,
        });
        SessionMetrics {
            wall_secs: 1.5,
            workers: vec![WorkerMetrics {
                worker: 0,
                cells: 1,
                busy_secs: 1.2,
            }],
            cache: CacheStats {
                hits: 3,
                misses: 1,
                inserts: 1,
            },
            cells: vec![CellMetrics {
                scenario: "quote\"me".to_string(),
                n: 4,
                message_bytes: 65536,
                worker: 0,
                schedule_index: 0,
                start_secs: 0.1,
                wall_secs: 1.2,
                status: "ok".to_string(),
                engine,
            }],
        }
    }

    #[test]
    fn cache_stats_hit_rate_and_delta() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            inserts: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let later = CacheStats {
            hits: 5,
            misses: 1,
            inserts: 1,
        };
        assert_eq!(
            later.since(&s),
            CacheStats {
                hits: 2,
                misses: 0,
                inserts: 0
            }
        );
    }

    /// A snapshot with dyadic-rational wall-clock values so f64 addition
    /// is exact and associativity can be asserted with `==`.
    fn dyadic_metrics(worker: usize, wall: f64, hits: u64, scenario: &str) -> SessionMetrics {
        SessionMetrics {
            wall_secs: wall,
            workers: vec![WorkerMetrics {
                worker,
                cells: 1,
                busy_secs: wall / 2.0,
            }],
            cache: CacheStats {
                hits,
                misses: 1,
                inserts: 1,
            },
            cells: vec![CellMetrics {
                scenario: scenario.to_string(),
                n: 2,
                message_bytes: 1024,
                worker,
                schedule_index: 0,
                start_secs: 0.0,
                wall_secs: wall / 2.0,
                status: "ok".to_string(),
                engine: None,
            }],
        }
    }

    #[test]
    fn merge_is_associative_with_default_identity() {
        let a = dyadic_metrics(0, 0.5, 2, "a");
        let b = dyadic_metrics(1, 0.25, 3, "b");
        let c = dyadic_metrics(0, 2.0, 5, "c");

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.render_json(), right.render_json());

        // Identity on both sides.
        let mut from_empty = SessionMetrics::default();
        from_empty.merge(&a);
        let mut onto_empty = a.clone();
        onto_empty.merge(&SessionMetrics::default());
        assert_eq!(from_empty.render_json(), a.render_json());
        assert_eq!(onto_empty.render_json(), a.render_json());

        // aggregate() is the same fold.
        let agg = SessionMetrics::aggregate([&a, &b, &c]);
        assert_eq!(agg.render_json(), left.render_json());
    }

    #[test]
    fn merge_sums_worker_occupancy_by_index() {
        let mut total = SessionMetrics::aggregate([
            &dyadic_metrics(1, 0.5, 0, "x"),
            &dyadic_metrics(0, 0.25, 0, "y"),
            &dyadic_metrics(1, 0.125, 0, "z"),
        ]);
        total.workers.sort_by_key(|w| w.worker); // already sorted; assert it
        assert_eq!(total.workers.len(), 2);
        assert_eq!(total.workers[0].worker, 0);
        assert_eq!(total.workers[0].cells, 1);
        assert_eq!(total.workers[1].worker, 1);
        assert_eq!(total.workers[1].cells, 2);
        assert_eq!(total.workers[1].busy_secs, 0.25 + 0.0625);
        assert_eq!(total.wall_secs, 0.875);
        assert_eq!(total.cells.len(), 3);
        assert_eq!(total.cells[0].scenario, "x");
        assert_eq!(total.cells[2].scenario, "z");
    }

    #[test]
    fn cache_stats_merged_sums_per_run_deltas_back_to_lifetime() {
        // Three snapshots of one shared cache's lifetime counters …
        let s0 = CacheStats::default();
        let s1 = CacheStats {
            hits: 3,
            misses: 2,
            inserts: 2,
        };
        let s2 = CacheStats {
            hits: 9,
            misses: 3,
            inserts: 2,
        };
        // … whose per-run deltas sum back to the lifetime total.
        let run1 = s1.since(&s0);
        let run2 = s2.since(&s1);
        assert_eq!(run1.merged(&run2), s2.since(&s0));
        assert_eq!(run1.merged(&CacheStats::default()), run1);
        // merge() feeds cache counters through the same sum.
        let mut m = SessionMetrics {
            cache: run1,
            ..SessionMetrics::default()
        };
        m.merge(&SessionMetrics {
            cache: run2,
            ..SessionMetrics::default()
        });
        assert_eq!(m.cache, s2);
    }

    #[test]
    fn metrics_json_escapes_names_and_carries_series() {
        let doc = sample_metrics(true).render_json();
        assert!(doc.contains(r#""scenario": "quote\"me""#));
        assert!(doc.contains("\"metrics_schema_version\": 1"));
        assert!(doc.contains("\"hit_rate\": 0.75"));
        assert!(doc.contains(r#""status": "ok""#));
        assert!(doc.contains("[1000, 990, 1500]"), "sample triplet: {doc}");
        assert!(doc.contains(r#""kind": "timeout""#));
    }

    #[test]
    fn metrics_json_without_engine_telemetry_is_null() {
        let doc = sample_metrics(false).render_json();
        assert!(doc.contains("\"engine\": null"));
    }

    #[test]
    fn chrome_trace_has_cell_span_and_saturation_interval() {
        let doc = sample_metrics(true).render_chrome_trace();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains(r#""name":"quote\"me n=4 m=65536""#));
        assert!(doc.contains("link-saturation"));
        assert!(doc.contains("tx3 saturated"));
        assert!(doc.contains(r#""name":"timeout #2""#));
    }
}
