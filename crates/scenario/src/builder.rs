//! The fluent [`ScenarioBuilder`]: programmatic construction of validated
//! [`ScenarioSpec`]s.
//!
//! TOML strings serve hand-written scenario files well, but the
//! interesting workloads are *generated* — parameter sweeps, placement
//! ablations, per-algorithm grids. The builder is the canonical way to
//! construct a spec in code; the TOML parser is one front-end to it
//! (`ScenarioSpec::from_toml_str` decodes the document and feeds this
//! builder), and every built-in in [`crate::registry`] is itself built
//! through it, so anything the registry ships is expressible here by
//! construction.
//!
//! ## Example
//!
//! ```
//! use contention_scenario::prelude::*;
//!
//! let spec = ScenarioBuilder::new("doc-builder")
//!     .description("4 hosts on one switch, direct exchange")
//!     .single_switch(4, LinkSpec::default(), SwitchSpec::default())
//!     .tcp(64 * 1024)
//!     .uniform("direct")
//!     .nodes([2, 4])
//!     .message_bytes([16 * 1024])
//!     .reps(1)
//!     .build()
//!     .expect("valid spec");
//! assert_eq!(spec.sweep.nodes, vec![2, 4]);
//! // The TOML round-trip is the same spec.
//! let reparsed = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
//! assert_eq!(spec, reparsed);
//! ```

use crate::spec::{
    Backend, LinkSpec, MpiSpec, ScenarioSpec, SpecError, SweepSpec, SwitchSpec, TopologySpec,
    TransportSpec, WorkloadSpec,
};
use simnet::generate::Placement;

/// Fluent constructor of validated [`ScenarioSpec`]s.
///
/// Topology and workload are required; everything else defaults the same
/// way an omitted TOML section does (TCP transport, scatter placement, no
/// MPI overrides, the default sweep grid). [`ScenarioBuilder::build`]
/// runs the full [`ScenarioSpec::validate`], so a spec that builds is a
/// spec that runs.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    name: String,
    description: String,
    topology: Option<TopologySpec>,
    placement: Placement,
    transport: TransportSpec,
    mpi: MpiSpec,
    workload: Option<WorkloadSpec>,
    sweep: SweepSpec,
    backend: Backend,
}

impl ScenarioBuilder {
    /// Starts a scenario named `name` (the registry key / report column).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// One-line description shown by `ctnsim list`.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    // ---- topology ------------------------------------------------------

    /// Any fabric, as a [`TopologySpec`] value — the general form behind
    /// the shape-specific sugar below.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// One of the paper's calibrated clusters (`fast-ethernet`,
    /// `gigabit-ethernet`, `myrinet`).
    pub fn preset(self, preset: impl Into<String>) -> Self {
        self.topology(TopologySpec::Preset {
            preset: preset.into(),
        })
    }

    /// `hosts` hosts on one switch.
    pub fn single_switch(self, hosts: usize, link: LinkSpec, switch: SwitchSpec) -> Self {
        self.topology(TopologySpec::SingleSwitch {
            hosts,
            link,
            switch,
        })
    }

    /// k-ary fat-tree.
    pub fn fat_tree(
        self,
        k: usize,
        hosts_per_edge: usize,
        link: LinkSpec,
        switch: SwitchSpec,
    ) -> Self {
        self.topology(TopologySpec::FatTree {
            k,
            hosts_per_edge,
            link,
            switch,
        })
    }

    /// 2-D torus of switches, dimension-ordered routing.
    pub fn torus_2d(
        self,
        x: usize,
        y: usize,
        hosts_per_switch: usize,
        link: LinkSpec,
        switch: SwitchSpec,
    ) -> Self {
        self.topology(TopologySpec::Torus2d {
            x,
            y,
            hosts_per_switch,
            link,
            switch,
        })
    }

    /// 3-D torus of switches, dimension-ordered routing.
    pub fn torus_3d(
        self,
        x: usize,
        y: usize,
        z: usize,
        hosts_per_switch: usize,
        link: LinkSpec,
        switch: SwitchSpec,
    ) -> Self {
        self.topology(TopologySpec::Torus3d {
            x,
            y,
            z,
            hosts_per_switch,
            link,
            switch,
        })
    }

    // ---- placement / transport / MPI ----------------------------------

    /// How ranks map onto the fabric's hosts (default scatter).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Which simulation tier runs the cells (default packet).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Any transport, as a [`TransportSpec`] value.
    pub fn transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// TCP-like lossy transport with the given send window.
    pub fn tcp(self, window_bytes: u64) -> Self {
        self.transport(TransportSpec::Tcp { window_bytes })
    }

    /// GM-like lossless transport with the given send window.
    pub fn gm(self, window_bytes: u64) -> Self {
        self.transport(TransportSpec::Gm { window_bytes })
    }

    /// Replaces all MPI-stack overrides at once.
    pub fn mpi(mut self, mpi: MpiSpec) -> Self {
        self.mpi = mpi;
        self
    }

    /// Overrides the eager/rendezvous threshold in bytes.
    pub fn eager_threshold(mut self, bytes: u64) -> Self {
        self.mpi.eager_threshold = Some(bytes);
        self
    }

    /// Overrides the OS scheduling hiccup probability.
    pub fn hiccup_probability(mut self, p: f64) -> Self {
        self.mpi.hiccup_probability = Some(p);
        self
    }

    // ---- workload ------------------------------------------------------

    /// Any traffic pattern, as a [`WorkloadSpec`] value.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Uniform All-to-All under a named algorithm (`direct`, `direct-nb`,
    /// `bruck`, `pairwise`, `ring`).
    pub fn uniform(self, algorithm: impl Into<String>) -> Self {
        self.workload(WorkloadSpec::Uniform {
            algorithm: algorithm.into(),
        })
    }

    /// Skewed irregular exchange: `hot_ranks` senders transmit `factor ×`
    /// larger blocks.
    pub fn skewed(self, hot_ranks: usize, factor: f64, nonblocking: bool) -> Self {
        self.workload(WorkloadSpec::Skewed {
            hot_ranks,
            factor,
            nonblocking,
        })
    }

    /// Sparse irregular exchange keeping each pair with probability
    /// `density`.
    pub fn sparse(self, density: f64, nonblocking: bool) -> Self {
        self.workload(WorkloadSpec::Sparse {
            density,
            nonblocking,
        })
    }

    /// Seeded random permutation traffic.
    pub fn permutation(self) -> Self {
        self.workload(WorkloadSpec::Permutation)
    }

    /// All-to-one incast onto `receivers` sink ranks.
    pub fn incast(self, receivers: usize) -> Self {
        self.workload(WorkloadSpec::Incast { receivers })
    }

    /// `senders` source ranks send to everyone else.
    pub fn outcast(self, senders: usize) -> Self {
        self.workload(WorkloadSpec::Outcast { senders })
    }

    /// Multiple barrier-separated phases, in order.
    pub fn phases(self, phases: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workload(WorkloadSpec::Phases {
            phases: phases.into_iter().collect(),
        })
    }

    // ---- sweep ---------------------------------------------------------

    /// Replaces the whole sweep grid at once.
    pub fn sweep(mut self, sweep: SweepSpec) -> Self {
        self.sweep = sweep;
        self
    }

    /// Node counts to run.
    pub fn nodes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        self.sweep.nodes = nodes.into_iter().collect();
        self
    }

    /// Per-pair message sizes in bytes.
    pub fn message_bytes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.sweep.message_bytes = sizes.into_iter().collect();
        self
    }

    /// Discarded warm-up repetitions per cell.
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.sweep.warmup = warmup;
        self
    }

    /// Measured repetitions per cell.
    pub fn reps(mut self, reps: usize) -> Self {
        self.sweep.reps = reps;
        self
    }

    // ---- build ---------------------------------------------------------

    /// Assembles and validates the spec. Fails with the same
    /// [`SpecError::Invalid`] diagnostics the TOML front-end produces —
    /// both routes share this one validation.
    pub fn build(self) -> Result<ScenarioSpec, SpecError> {
        let Some(topology) = self.topology else {
            return Err(SpecError::Invalid(format!(
                "{}: a scenario needs a topology (builder: .preset/.single_switch/… )",
                self.name
            )));
        };
        let Some(workload) = self.workload else {
            return Err(SpecError::Invalid(format!(
                "{}: a scenario needs a workload (builder: .uniform/.incast/… )",
                self.name
            )));
        };
        let spec = ScenarioSpec {
            name: self.name,
            description: self.description,
            topology,
            placement: self.placement,
            transport: self.transport,
            mpi: self.mpi,
            workload,
            sweep: self.sweep,
            backend: self.backend,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_an_omitted_toml_section() {
        let spec = ScenarioBuilder::new("b")
            .single_switch(8, LinkSpec::default(), SwitchSpec::default())
            .uniform("direct")
            .build()
            .unwrap();
        assert_eq!(spec.transport, TransportSpec::default());
        assert_eq!(spec.placement, Placement::default());
        assert_eq!(spec.mpi, MpiSpec::default());
        assert_eq!(spec.sweep, SweepSpec::default());
        assert!(spec.description.is_empty());
    }

    #[test]
    fn missing_topology_or_workload_is_a_spec_error() {
        let no_topo = ScenarioBuilder::new("x").uniform("direct").build();
        assert!(matches!(no_topo, Err(SpecError::Invalid(m)) if m.contains("topology")));
        let no_workload = ScenarioBuilder::new("x")
            .single_switch(4, LinkSpec::default(), SwitchSpec::default())
            .build();
        assert!(matches!(no_workload, Err(SpecError::Invalid(m)) if m.contains("workload")));
    }

    #[test]
    fn build_runs_full_validation() {
        let over_capacity = ScenarioBuilder::new("x")
            .single_switch(4, LinkSpec::default(), SwitchSpec::default())
            .uniform("direct")
            .nodes([64])
            .build();
        assert!(matches!(over_capacity, Err(SpecError::Invalid(_))));
        let bad_algo = ScenarioBuilder::new("x")
            .single_switch(4, LinkSpec::default(), SwitchSpec::default())
            .uniform("quantum")
            .build();
        assert!(matches!(bad_algo, Err(SpecError::Invalid(_))));
    }

    #[test]
    fn later_setters_win() {
        let spec = ScenarioBuilder::new("x")
            .preset("fast-ethernet")
            .single_switch(8, LinkSpec::default(), SwitchSpec::default())
            .incast(1)
            .uniform("direct")
            .tcp(1024)
            .gm(2048)
            .nodes([4])
            .nodes([2, 4])
            .build()
            .unwrap();
        assert!(matches!(
            spec.topology,
            TopologySpec::SingleSwitch { hosts: 8, .. }
        ));
        assert!(matches!(spec.workload, WorkloadSpec::Uniform { .. }));
        assert_eq!(spec.transport, TransportSpec::Gm { window_bytes: 2048 });
        assert_eq!(spec.sweep.nodes, vec![2, 4]);
    }
}
