//! The session-level error hierarchy.
//!
//! [`SpecError`] stays the spec layer's error (a
//! TOML document or a builder chain that does not describe a runnable
//! scenario); [`CtnError`] is what the [`Session`](crate::session::Session)
//! facade returns, classifying every failure by the *phase* it happened
//! in — spec construction, calibration, or cell execution — so embedders
//! can branch on the variant instead of parsing strings.

use crate::spec::SpecError;

/// Any failure a [`Session`](crate::session::Session) run can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtnError {
    /// The scenario description itself is unusable (TOML parse error,
    /// missing field, inconsistent grid, unknown algorithm, …).
    Spec(SpecError),
    /// The session configuration (not any scenario) is unusable — e.g.
    /// zero workers.
    Config {
        /// What is wrong with the configuration.
        detail: String,
    },
    /// A calibration on the scenario's fabric failed (Hockney ping-pong
    /// fit, contention-signature or saturation regression).
    Calibration {
        /// Scenario whose calibration failed.
        scenario: String,
        /// What went wrong, human-readable.
        detail: String,
    },
    /// A grid cell's simulation failed after calibration succeeded.
    Execution {
        /// Scenario whose cell failed.
        scenario: String,
        /// What went wrong, human-readable.
        detail: String,
    },
    /// The run was aborted through its
    /// [`CancelToken`](crate::session::CancelToken) before every cell
    /// finished.
    Cancelled,
}

impl CtnError {
    /// Convenience constructor for [`CtnError::Calibration`].
    pub(crate) fn calibration(scenario: &str, detail: impl Into<String>) -> Self {
        CtnError::Calibration {
            scenario: scenario.to_string(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CtnError::Execution`].
    pub(crate) fn execution(scenario: &str, detail: impl Into<String>) -> Self {
        CtnError::Execution {
            scenario: scenario.to_string(),
            detail: detail.into(),
        }
    }

    /// Flattens back to the legacy [`SpecError`] the deprecated free
    /// functions still return; every non-spec variant collapses into
    /// [`SpecError::Invalid`] with the same message the pre-session code
    /// produced (calibration failures regain their `scenario:` prefix —
    /// the structured variant carries the name separately, the legacy
    /// string carried it inline).
    pub(crate) fn into_spec_error(self) -> SpecError {
        match self {
            CtnError::Spec(e) => e,
            CtnError::Calibration { scenario, detail } => {
                SpecError::Invalid(format!("{scenario}: {detail}"))
            }
            CtnError::Execution { detail, .. } | CtnError::Config { detail } => {
                SpecError::Invalid(detail)
            }
            CtnError::Cancelled => SpecError::Invalid("run cancelled".to_string()),
        }
    }
}

impl std::fmt::Display for CtnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtnError::Spec(e) => write!(f, "{e}"),
            CtnError::Config { detail } => write!(f, "invalid session config: {detail}"),
            CtnError::Calibration { scenario, detail } => {
                write!(f, "calibration failed for {scenario:?}: {detail}")
            }
            CtnError::Execution { scenario, detail } => {
                write!(f, "execution failed for {scenario:?}: {detail}")
            }
            CtnError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for CtnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtnError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for CtnError {
    fn from(e: SpecError) -> Self {
        CtnError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_classify_and_display() {
        let spec = CtnError::from(SpecError::Invalid("bad grid".into()));
        assert!(matches!(spec, CtnError::Spec(_)));
        assert_eq!(spec.to_string(), "invalid scenario: bad grid");

        let cal = CtnError::calibration("s", "Hockney fit failed");
        assert_eq!(
            cal.to_string(),
            "calibration failed for \"s\": Hockney fit failed"
        );
        // The legacy flattening reconstructs the pre-session inline-name
        // message format.
        assert!(matches!(
            cal.into_spec_error(),
            SpecError::Invalid(m) if m == "s: Hockney fit failed"
        ));

        let exec = CtnError::execution("s", "boom");
        assert!(exec.to_string().contains("execution failed"));
        let cfg = CtnError::Config {
            detail: "zero workers".into(),
        };
        assert_eq!(cfg.to_string(), "invalid session config: zero workers");
        assert_eq!(CtnError::Cancelled.to_string(), "run cancelled");
    }

    #[test]
    fn source_chains_to_spec_error() {
        use std::error::Error as _;
        let e = CtnError::from(SpecError::Invalid("x".into()));
        assert!(e.source().is_some());
        assert!(CtnError::Cancelled.source().is_none());
    }
}
