//! The owned [`Session`] facade: the embeddable, concurrency-safe entry
//! point to the simulate → calibrate → predict → score workflow.
//!
//! A session owns three things the old free functions kept implicit or
//! process-global:
//!
//! * an **execution policy** (worker count, base seed, predictor model),
//! * an **instance-owned [`CalibrationCache`]** — the Hockney and
//!   signature/saturation memo that used to live in a process-wide
//!   `static`. Each session defaults to a private cache; embedders that
//!   want sharing pass the same [`Arc`] to several sessions via
//!   [`SessionBuilder::shared_cache`], and drop it when they are done —
//!   lifetime and sharing are theirs to control,
//! * a **[`CancelToken`]** that aborts a sweep between cells.
//!
//! Execution streams: [`Session::run_with`] delivers [`RunEvent`]s to a
//! [`RunObserver`] as cells finish (live progress for `ctnsim`, early
//! abort for sweeps, the hook a future daemon multiplexes on), while the
//! final [`Report`] stays byte-identical for any worker count.
//!
//! ## Example
//!
//! ```
//! use contention_scenario::prelude::*;
//!
//! let spec = ScenarioBuilder::new("doc-session")
//!     .single_switch(4, LinkSpec::default(), SwitchSpec::default())
//!     .uniform("direct")
//!     .nodes([2])
//!     .message_bytes([16 * 1024])
//!     .build()
//!     .expect("valid spec");
//!
//! let session = Session::builder().workers(2).base_seed(7).build().unwrap();
//! let mut finished = 0usize;
//! let report = session
//!     .run_with(&spec, &mut |event: RunEvent<'_>| {
//!         if let RunEvent::CellFinished { .. } = event {
//!             finished += 1;
//!         }
//!     })
//!     .expect("runs");
//! assert_eq!(finished, 1);
//! assert_eq!(report.batches[0].cells.len(), 1);
//! ```

use crate::error::CtnError;
use crate::executor::{
    self, BatchConfig, BatchResult, CellResult, FaultPlan, GuardLimits, ModelCtx, ModelKind,
};
use crate::metrics::{CacheStats, CellMetrics, SessionMetrics};
use crate::report::Report;
use crate::spec::ScenarioSpec;
use contention_model::hockney::HockneyParams;
use contention_model::saturation::SaturationModel;
use contention_model::signature::ContentionSignature;
use simnet::obs::TelemetryConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An instance-owned memo of calibration fits, keyed by `(fabric
/// fingerprint, derived seed)` (plus the model kind for the
/// signature/saturation fits).
///
/// Every fit is a pure function of its key, so a cache hit is
/// byte-for-byte the fit a fresh run would produce — the cache can only
/// change how *fast* a session runs, never what it reports. Sessions
/// default to a private cache; wrap one in an [`Arc`] and hand it to
/// several builders to share fits across sessions.
#[derive(Debug, Default)]
pub struct CalibrationCache {
    pub(crate) hockney: Mutex<HashMap<(u64, u64), HockneyParams>>,
    pub(crate) model: Mutex<HashMap<(u64, u64, &'static str), ModelCtx>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl CalibrationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized Hockney fits.
    pub fn hockney_entries(&self) -> usize {
        self.hockney.lock().expect("cache lock").len()
    }

    /// Number of memoized signature/saturation fits.
    pub fn model_entries(&self) -> usize {
        self.model.lock().expect("cache lock").len()
    }

    /// Drops every memoized fit. The lifetime counters keep counting —
    /// they record activity, not contents.
    pub fn clear(&self) {
        self.hockney.lock().expect("cache lock").clear();
        self.model.lock().expect("cache lock").clear();
    }

    /// Lifetime hit/miss/insert counters across every session using this
    /// cache. Subtract two snapshots ([`CacheStats::since`]) for a
    /// per-run delta.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }
}

/// A cloneable handle that aborts a running sweep.
///
/// Workers check the token before starting each cell, and the engines
/// poll it at their preemption points (every few thousand events), so
/// cancellation lands with bounded latency even mid-cell. A run
/// cancelled before anything started returns [`CtnError::Cancelled`]; a
/// run cancelled in flight still returns its [`Report`], with the
/// interrupted and unstarted cells carried as `cancelled` status rows.
///
/// Cancellation is **one-shot and permanent** (like other cancellation
/// tokens, there is deliberately no reset — clearing a flag other
/// threads are racing to observe invites lost cancellations): a
/// cancelled token also cancels every *future* run of the session it is
/// installed in. To keep working after an abort, build a fresh session —
/// `Session::builder().shared_cache(old.cache())` carries the calibration
/// cache over, so nothing refits.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// The raw shared flag, for wiring into an engine guard
    /// (`RunGuard::with_cancel_flag`) — the engines only ever read it.
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// One streaming progress event of a [`Session`] run.
///
/// Events borrow from the run in flight; copy out what must outlive the
/// observer call. `CellFinished` events arrive in *completion* order
/// (worker-dependent), never in grid order — the final [`Report`] is the
/// deterministic artifact, the events are the live view.
#[derive(Debug)]
pub enum RunEvent<'a> {
    /// A scenario's grid has been calibrated and queued.
    BatchStarted {
        /// Scenario name.
        scenario: &'a str,
        /// Cells in this scenario's grid.
        cells: usize,
    },
    /// One grid cell finished simulating.
    CellFinished {
        /// Scenario name.
        scenario: &'a str,
        /// The finished cell's measurements.
        cell: &'a CellResult,
        /// Telemetry for the cell: wall-clock span, worker, schedule
        /// position, and (when the session records telemetry) engine
        /// counters.
        metrics: &'a CellMetrics,
        /// Finished cells of this scenario so far (including this one).
        completed: usize,
        /// Total cells in this scenario's grid.
        total: usize,
    },
    /// Every cell of a scenario finished; the batch is assembled in
    /// deterministic grid order.
    BatchFinished {
        /// Scenario name.
        scenario: &'a str,
        /// The assembled, grid-ordered result.
        batch: &'a BatchResult,
    },
}

/// Receives [`RunEvent`]s while a session runs.
///
/// Implemented for any `FnMut(RunEvent<'_>)` closure, so ad-hoc progress
/// hooks need no named type.
pub trait RunObserver {
    /// Called on the thread that invoked the run, once per event.
    fn on_event(&mut self, event: RunEvent<'_>);
}

impl<F: FnMut(RunEvent<'_>)> RunObserver for F {
    fn on_event(&mut self, event: RunEvent<'_>) {
        self(event)
    }
}

/// The no-op observer behind [`Session::run`].
pub(crate) struct NullObserver;

impl RunObserver for NullObserver {
    fn on_event(&mut self, _event: RunEvent<'_>) {}
}

/// Configures and builds a [`Session`].
#[derive(Debug, Default)]
pub struct SessionBuilder {
    workers: Option<usize>,
    base_seed: Option<u64>,
    model: ModelKind,
    cache: Option<Arc<CalibrationCache>>,
    cancel: Option<CancelToken>,
    telemetry: Option<TelemetryConfig>,
    limits: GuardLimits,
    faults: Option<FaultPlan>,
}

impl SessionBuilder {
    /// Worker threads sharing the cell queue. Defaults to the machine's
    /// available parallelism. Zero is rejected by [`SessionBuilder::build`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Base seed every cell derives its stream from (default 42). Results
    /// are deterministic per `(scenario, seed, cell)` and independent of
    /// the worker count.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = Some(seed);
        self
    }

    /// Predictor behind the `model_secs` / `error_percent` columns
    /// (default [`ModelKind::Med`]).
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Shares a calibration cache with other sessions instead of owning a
    /// private one. Hits are byte-identical to fresh fits, so sharing only
    /// changes speed, never reports.
    pub fn shared_cache(mut self, cache: Arc<CalibrationCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Installs a cancellation token; keep a clone to abort runs from
    /// another thread. A fresh token is created when absent.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables (or disables) engine telemetry with default settings:
    /// every cell's simulator runs with a recording `Recorder`, and
    /// [`Session::metrics`] carries per-cell
    /// [`EngineTelemetry`](simnet::obs::EngineTelemetry). Off by default —
    /// the no-op recorder compiles down to the uninstrumented engine.
    /// Telemetry observes only; reports stay byte-identical either way.
    pub fn telemetry(self, enabled: bool) -> Self {
        self.telemetry_config(enabled.then(TelemetryConfig::default))
    }

    /// Like [`SessionBuilder::telemetry`], with explicit sampling
    /// settings (`None` disables).
    pub fn telemetry_config(mut self, config: Option<TelemetryConfig>) -> Self {
        self.telemetry = config;
        self
    }

    /// Wall-clock ceiling per cell (warmup plus every repetition). A
    /// cell that exceeds it is stopped at the engine's next preemption
    /// point and reported with status `timed-out`; its siblings keep
    /// running. Setting any limit stamps reports with the supervised
    /// schema (v2), which adds the status columns.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Engine-event budget per cell (rate recomputations in the fluid
    /// tier). An exhausted budget reports status `budget-exceeded`.
    pub fn event_budget(mut self, budget: u64) -> Self {
        self.limits.event_budget = Some(budget);
        self
    }

    /// Simulated-time ceiling per cell; crossing it reports status
    /// `timed-out` with the horizon as provenance.
    pub fn sim_horizon(mut self, horizon: Duration) -> Self {
        self.limits.sim_horizon = Some(horizon);
        self
    }

    /// Replaces all supervision limits at once.
    pub fn limits(mut self, limits: GuardLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Installs a deterministic [`FaultPlan`] — **test-only**: it exists
    /// so the supervision layer's status taxonomy can be exercised
    /// end-to-end (injected panics, stalls and slowdowns) without
    /// modifying the engine. Cells the plan does not name run exactly as
    /// without a plan.
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the session. Fails with [`CtnError::Config`] when `workers`
    /// was set to zero.
    pub fn build(self) -> Result<Session, CtnError> {
        let workers = self
            .workers
            .unwrap_or_else(contention_lab::runner::default_workers);
        if workers == 0 {
            return Err(CtnError::Config {
                detail: "session needs at least one worker".to_string(),
            });
        }
        Ok(Session {
            cfg: BatchConfig {
                workers,
                base_seed: self.base_seed.unwrap_or(42),
                model: self.model,
                limits: self.limits,
            },
            cache: self.cache.unwrap_or_default(),
            cancel: self.cancel.unwrap_or_default(),
            telemetry: self.telemetry,
            faults: self.faults,
            metrics: Mutex::new(None),
        })
    }
}

/// An owned handle on the scenario engine: policy + calibration cache +
/// cancellation, with streaming or plain execution.
///
/// Sessions are cheap to construct and internally synchronized — share
/// one behind an [`Arc`] across threads, or build one per request; the
/// determinism contract (reports depend only on `(scenario, seed, cell)`,
/// never on workers or cache state) holds either way.
#[derive(Debug)]
pub struct Session {
    cfg: BatchConfig,
    cache: Arc<CalibrationCache>,
    cancel: CancelToken,
    telemetry: Option<TelemetryConfig>,
    faults: Option<FaultPlan>,
    metrics: Mutex<Option<SessionMetrics>>,
}

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session with default policy (all cores, seed 42, MED model) and a
    /// private cache.
    pub fn new() -> Self {
        Self::builder().build().expect("default session is valid")
    }

    /// Worker threads this session runs with.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// The session's base seed.
    pub fn base_seed(&self) -> u64 {
        self.cfg.base_seed
    }

    /// The session's predictor model.
    pub fn model(&self) -> ModelKind {
        self.cfg.model
    }

    /// The session's supervision limits (unlimited by default).
    pub fn limits(&self) -> GuardLimits {
        self.cfg.limits
    }

    /// The session's calibration cache, shareable with other builders.
    pub fn cache(&self) -> Arc<CalibrationCache> {
        Arc::clone(&self.cache)
    }

    /// A clone of the session's cancellation token. Cancelling it aborts
    /// the in-flight run *and all future runs* of this session (see
    /// [`CancelToken`]); recover by building a new session around
    /// [`Session::cache`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs one scenario's full grid to a versioned [`Report`].
    pub fn run(&self, spec: &ScenarioSpec) -> Result<Report, CtnError> {
        self.run_many(std::slice::from_ref(spec))
    }

    /// Runs several scenarios as one flat cell queue (a wide scenario
    /// cannot serialize a narrow one behind it).
    pub fn run_many(&self, specs: &[ScenarioSpec]) -> Result<Report, CtnError> {
        self.run_many_with(specs, &mut NullObserver)
    }

    /// Like [`Session::run`], streaming [`RunEvent`]s to `observer` as the
    /// run progresses.
    pub fn run_with<O: RunObserver + ?Sized>(
        &self,
        spec: &ScenarioSpec,
        observer: &mut O,
    ) -> Result<Report, CtnError> {
        self.run_many_with(std::slice::from_ref(spec), observer)
    }

    /// Like [`Session::run_many`], streaming [`RunEvent`]s to `observer`.
    pub fn run_many_with<O: RunObserver + ?Sized>(
        &self,
        specs: &[ScenarioSpec],
        observer: &mut O,
    ) -> Result<Report, CtnError> {
        let mut sink = |event: RunEvent<'_>| observer.on_event(event);
        let (batches, metrics) = executor::execute(
            specs,
            &self.cfg,
            &self.cache,
            self.telemetry.as_ref(),
            self.faults.as_ref(),
            &mut sink,
            &self.cancel,
        )?;
        *self.metrics.lock().expect("metrics lock") = Some(metrics);
        // A session with supervision limits stamps the supervised schema
        // even when every cell passed (the consumer asked for the status
        // column); an unlimited session's report upgrades only when a
        // fault actually produced a non-Ok row, so default runs stay
        // byte-identical to the v1 goldens.
        if self.cfg.limits.is_unlimited() {
            Ok(Report::new(batches))
        } else {
            Ok(Report::supervised(batches))
        }
    }

    /// Telemetry snapshot of the most recent completed run: wall clock,
    /// worker occupancy, calibration-cache counters and per-cell spans
    /// (always collected), plus per-cell engine telemetry when the
    /// session was built with [`SessionBuilder::telemetry`]. `None`
    /// before the first successful run.
    pub fn metrics(&self) -> Option<SessionMetrics> {
        self.metrics.lock().expect("metrics lock").clone()
    }

    /// Measures (or recalls from the cache) the scenario fabric's Hockney
    /// parameters — the paper's 2-rank ping-pong fit.
    pub fn calibrate_hockney(&self, spec: &ScenarioSpec) -> Result<HockneyParams, CtnError> {
        executor::hockney_fit(&self.cache, spec, self.cfg.base_seed)
    }

    /// Fits (or recalls) the fabric's contention signature `(γ, δ, M)`:
    /// the paper's §8 procedure on the scenario's own fabric, sampled at a
    /// capacity-derived node count.
    pub fn calibrate_signature(
        &self,
        spec: &ScenarioSpec,
    ) -> Result<ContentionSignature, CtnError> {
        let hockney = self.calibrate_hockney(spec)?;
        match executor::model_ctx(
            &self.cache,
            spec,
            hockney,
            self.cfg.base_seed,
            ModelKind::Signature,
        )? {
            ModelCtx::Signature(sig) => Ok(sig),
            _ => unreachable!("signature calibration returns a signature context"),
        }
    }

    /// Fits (or recalls) the fabric's saturation-ramp model `γ(n)`.
    pub fn calibrate_saturation(&self, spec: &ScenarioSpec) -> Result<SaturationModel, CtnError> {
        let hockney = self.calibrate_hockney(spec)?;
        match executor::model_ctx(
            &self.cache,
            spec,
            hockney,
            self.cfg.base_seed,
            ModelKind::Saturation,
        )? {
            ModelCtx::Saturation(sat) => Ok(sat),
            _ => unreachable!("saturation calibration returns a saturation context"),
        }
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::by_name;
    use crate::report::{to_csv, ReportFormat};

    fn trimmed(name: &str) -> ScenarioSpec {
        let mut spec = by_name(name).expect("built-in");
        spec.sweep.nodes = vec![*spec.sweep.nodes.first().unwrap()];
        spec.sweep.message_bytes = vec![*spec.sweep.message_bytes.first().unwrap()];
        spec.sweep.reps = 1;
        spec.sweep.warmup = 0;
        spec
    }

    #[test]
    fn session_report_matches_legacy_free_function_bytes() {
        let spec = by_name("incast-burst").unwrap();
        let session = Session::builder().workers(2).base_seed(7).build().unwrap();
        let report = session.run(&spec).unwrap();
        let legacy = crate::executor::run_batches(
            std::slice::from_ref(&spec),
            &BatchConfig {
                workers: 2,
                base_seed: 7,
                model: ModelKind::Med,
                limits: GuardLimits::default(),
            },
        )
        .unwrap();
        assert_eq!(report.batches, legacy);
        assert_eq!(report.render(ReportFormat::Csv), to_csv(&legacy));
    }

    #[test]
    fn streaming_observer_sees_every_cell_and_batch_boundaries() {
        let spec = trimmed("incast-burst");
        let session = Session::builder().workers(4).base_seed(3).build().unwrap();
        let mut started = Vec::new();
        let mut cells = 0usize;
        let mut finished = Vec::new();
        let report = session
            .run_with(&spec, &mut |event: RunEvent<'_>| match event {
                RunEvent::BatchStarted { scenario, cells: c } => {
                    started.push((scenario.to_string(), c))
                }
                RunEvent::CellFinished {
                    completed, total, ..
                } => {
                    cells += 1;
                    assert!(completed <= total);
                }
                RunEvent::BatchFinished { scenario, batch } => {
                    assert_eq!(scenario, batch.scenario);
                    finished.push(batch.cells.len());
                }
            })
            .unwrap();
        assert_eq!(started, vec![("incast-burst".to_string(), 1)]);
        assert_eq!(cells, 1);
        assert_eq!(finished, vec![1]);
        assert_eq!(report.batches.len(), 1);
    }

    #[test]
    fn cancellation_aborts_between_cells() {
        let spec = by_name("incast-burst").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let session = Session::builder()
            .workers(2)
            .cancel_token(token.clone())
            .build()
            .unwrap();
        assert!(token.is_cancelled());
        assert!(matches!(session.run(&spec), Err(CtnError::Cancelled)));
        // Cancellation covers the calibration phase: a pre-cancelled run
        // must not have fitted anything.
        assert_eq!(session.cache().hockney_entries(), 0);
        assert_eq!(session.cache().model_entries(), 0);
    }

    #[test]
    fn shared_cache_is_reused_across_sessions() {
        let spec = trimmed("incast-burst");
        let cache = Arc::new(CalibrationCache::new());
        let a = Session::builder()
            .workers(1)
            .shared_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        let b = Session::builder()
            .workers(2)
            .shared_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        let ra = a.run(&spec).unwrap();
        assert_eq!(cache.hockney_entries(), 1, "first run fits once");
        let rb = b.run(&spec).unwrap();
        assert_eq!(cache.hockney_entries(), 1, "second session reuses the fit");
        assert_eq!(ra.batches, rb.batches, "cache sharing never changes bytes");
        cache.clear();
        assert_eq!(cache.hockney_entries(), 0);
    }

    #[test]
    fn session_calibrations_expose_the_models() {
        let spec = by_name("incast-burst").unwrap();
        let session = Session::builder().workers(2).build().unwrap();
        let hockney = session.calibrate_hockney(&spec).unwrap();
        assert!(hockney.alpha_secs > 0.0);
        let sig = session.calibrate_signature(&spec).unwrap();
        assert!(sig.gamma >= 1.0, "contention never beats the bound");
        let sat = session.calibrate_saturation(&spec).unwrap();
        assert!(sat.gamma_at(8).is_finite());
        assert_eq!(session.cache().model_entries(), 2);
    }

    #[test]
    fn zero_workers_is_a_typed_config_error() {
        assert!(matches!(
            Session::builder().workers(0).build(),
            Err(CtnError::Config { .. })
        ));
    }
}
