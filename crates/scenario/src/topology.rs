//! Turns a [`TopologySpec`] into a runnable [`World`].

use crate::spec::{ScenarioSpec, SpecError, TopologySpec};
use contention_lab::presets::ClusterPreset;
use simmpi::prelude::*;
use simnet::generate::{self, DragonflyParams, FatTreeParams, Generated, TorusParams, TreeParams};
use simnet::prelude::*;

fn preset_by_name(name: &str) -> Result<ClusterPreset, SpecError> {
    ClusterPreset::all()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            SpecError::Invalid(format!(
                "unknown preset {name:?} (expected one of {:?})",
                ClusterPreset::all().map(|p| p.name)
            ))
        })
}

/// Host capacity of a topology spec.
pub fn capacity(t: &TopologySpec) -> Result<usize, SpecError> {
    Ok(match t {
        TopologySpec::Preset { preset } => preset_by_name(preset)?.max_hosts(),
        TopologySpec::SingleSwitch { hosts, .. } => *hosts,
        TopologySpec::StarOfSwitches {
            leaves,
            hosts_per_leaf,
            ..
        }
        | TopologySpec::Tree {
            leaves,
            hosts_per_leaf,
            ..
        } => leaves * hosts_per_leaf,
        TopologySpec::FatTree {
            k, hosts_per_edge, ..
        } => FatTreeParams {
            k: *k,
            hosts_per_edge: *hosts_per_edge,
            link: LinkConfig::gigabit_ethernet(),
            switch: SwitchConfig::commodity_ethernet(),
        }
        .capacity(),
        TopologySpec::Torus2d {
            x,
            y,
            hosts_per_switch,
            ..
        } => x * y * hosts_per_switch,
        TopologySpec::Torus3d {
            x,
            y,
            z,
            hosts_per_switch,
            ..
        } => x * y * z * hosts_per_switch,
        TopologySpec::Dragonfly {
            groups,
            routers_per_group,
            hosts_per_router,
            ..
        } => groups * routers_per_group * hosts_per_router,
    })
}

fn generated(t: &TopologySpec) -> Result<Generated, SpecError> {
    Ok(match t {
        TopologySpec::Preset { .. } => unreachable!("presets build through ClusterPreset"),
        TopologySpec::SingleSwitch {
            hosts,
            link,
            switch,
        } => generate::single_switch(*hosts, link.to_config(), switch.to_config()),
        TopologySpec::StarOfSwitches {
            leaves,
            hosts_per_leaf,
            edge_link,
            uplink,
            uplinks_per_leaf,
            edge_switch,
            core_switch,
        } => generate::star_of_switches(
            *leaves,
            *hosts_per_leaf,
            edge_link.to_config(),
            uplink.to_config(),
            *uplinks_per_leaf,
            edge_switch.to_config(),
            core_switch.to_config(),
        ),
        TopologySpec::Tree {
            leaves,
            hosts_per_leaf,
            edge_link,
            oversubscription,
            uplinks_per_leaf,
            uplink_latency_ns,
            edge_switch,
            core_switch,
        } => generate::two_level_tree(&TreeParams {
            leaves: *leaves,
            hosts_per_leaf: *hosts_per_leaf,
            edge_link: edge_link.to_config(),
            uplinks_per_leaf: *uplinks_per_leaf,
            oversubscription: *oversubscription,
            uplink_latency_ns: *uplink_latency_ns,
            edge_switch: edge_switch.to_config(),
            core_switch: core_switch.to_config(),
        }),
        TopologySpec::FatTree {
            k,
            hosts_per_edge,
            link,
            switch,
        } => generate::fat_tree(&FatTreeParams {
            k: *k,
            hosts_per_edge: *hosts_per_edge,
            link: link.to_config(),
            switch: switch.to_config(),
        }),
        TopologySpec::Torus2d {
            x,
            y,
            hosts_per_switch,
            link,
            switch,
        } => generate::torus(&TorusParams {
            dims: [*x, *y, 1],
            hosts_per_switch: *hosts_per_switch,
            link: link.to_config(),
            switch: switch.to_config(),
        }),
        TopologySpec::Torus3d {
            x,
            y,
            z,
            hosts_per_switch,
            link,
            switch,
        } => generate::torus(&TorusParams {
            dims: [*x, *y, *z],
            hosts_per_switch: *hosts_per_switch,
            link: link.to_config(),
            switch: switch.to_config(),
        }),
        TopologySpec::Dragonfly {
            groups,
            routers_per_group,
            hosts_per_router,
            host_link,
            local_link,
            global_link,
            switch,
        } => generate::dragonfly(&DragonflyParams {
            groups: *groups,
            routers_per_group: *routers_per_group,
            hosts_per_router: *hosts_per_router,
            host_link: host_link.to_config(),
            local_link: local_link.to_config(),
            global_link: global_link.to_config(),
            switch: switch.to_config(),
        }),
    })
}

/// Builds an `n`-rank world for the scenario, with every stochastic
/// element seeded from `seed`. Ranks map onto hosts through the spec's
/// [`Placement`](simnet::generate::Placement) policy — scatter (the
/// presets' round-robin, and the default), pack, or a seeded random
/// partial permutation.
///
/// # Panics
/// Panics if `n` exceeds the spec's capacity (callers validate first).
pub fn build_world(spec: &ScenarioSpec, n: usize, seed: u64) -> Result<World, SpecError> {
    build_world_with(spec, n, seed, NoopRecorder)
}

/// [`build_world`] with a telemetry recorder attached to the underlying
/// simulator (see `simnet::obs`). The recorder observes only; worlds built
/// with and without one behave identically.
///
/// # Panics
/// Panics if `n` exceeds the spec's capacity (callers validate first).
pub fn build_world_with<R: Recorder>(
    spec: &ScenarioSpec,
    n: usize,
    seed: u64,
    recorder: R,
) -> Result<World<R>, SpecError> {
    if let TopologySpec::Preset { preset } = &spec.topology {
        // Presets carry their own MPI stack; apply the spec's overrides on
        // top before building.
        let mut preset = preset_by_name(preset)?;
        preset.mpi = spec.mpi.apply(preset.mpi);
        return Ok(preset.build_world_with(n, seed, recorder));
    }
    let g = generated(&spec.topology)?;
    let ranks = spec.placement.place(&g, n, seed);
    let sim_config = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let topo = g
        .builder
        .build(&sim_config)
        .map_err(|e| SpecError::Invalid(format!("topology failed to build: {e}")))?;
    let sim = Simulator::with_recorder(topo, sim_config, recorder);
    let mpi = simmpi::MpiConfig {
        seed: seed ^ 0x5A5A_5A5A,
        ..spec.mpi.apply(simmpi::MpiConfig::default())
    };
    Ok(World::new(sim, ranks, mpi, spec.transport.to_kind()))
}

/// Builds the bare fabric for the fluid backend: the routed
/// [`Topology`] plus the rank→host map and the effective MPI stack, with
/// every stochastic element seeded from `seed` exactly as
/// [`build_world`] seeds the packet path (same placement, same
/// `seed ^ 0x5A5A_5A5A` MPI seed). The caller owns the topology and
/// lends it to a [`simmpi::FluidWorld`].
///
/// # Panics
/// Panics if `n` exceeds the spec's capacity (callers validate first).
pub fn build_fluid_fabric(
    spec: &ScenarioSpec,
    n: usize,
    seed: u64,
) -> Result<(Topology, Vec<HostId>, simmpi::MpiConfig), SpecError> {
    if let TopologySpec::Preset { preset } = &spec.topology {
        let mut preset = preset_by_name(preset)?;
        preset.mpi = spec.mpi.apply(preset.mpi);
        let (topo, hosts) = preset.build_fabric(n, seed);
        let mpi = simmpi::MpiConfig {
            seed: seed ^ 0x5A5A_5A5A,
            ..preset.mpi
        };
        return Ok((topo, hosts, mpi));
    }
    let g = generated(&spec.topology)?;
    let ranks = spec.placement.place(&g, n, seed);
    let sim_config = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let topo = g
        .builder
        .build(&sim_config)
        .map_err(|e| SpecError::Invalid(format!("topology failed to build: {e}")))?;
    let mpi = simmpi::MpiConfig {
        seed: seed ^ 0x5A5A_5A5A,
        ..spec.mpi.apply(simmpi::MpiConfig::default())
    };
    Ok((topo, ranks, mpi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::builtin;
    use crate::spec::Backend;

    #[test]
    fn capacities_are_positive_for_all_builtins() {
        for spec in builtin() {
            assert!(capacity(&spec.topology).unwrap() >= 2, "{}", spec.name);
        }
    }

    #[test]
    fn worlds_build_for_all_builtins() {
        for spec in builtin() {
            if spec.backend == Backend::Fluid {
                // Huge-fabric fluid builtins never build a packet world.
                continue;
            }
            let n = *spec.sweep.nodes.iter().min().unwrap();
            let world = build_world(&spec, n, 7).unwrap();
            assert_eq!(world.n_ranks(), n, "{}", spec.name);
        }
    }

    #[test]
    fn fluid_fabric_matches_the_packet_world_mapping() {
        for spec in builtin() {
            if spec.backend == Backend::Fluid {
                continue;
            }
            let n = *spec.sweep.nodes.iter().min().unwrap();
            let world = build_world(&spec, n, 7).unwrap();
            let (topo, hosts, mpi) = build_fluid_fabric(&spec, n, 7).unwrap();
            assert_eq!(hosts.len(), n, "{}", spec.name);
            assert_eq!(
                topo.n_hosts,
                world.sim().topology().n_hosts,
                "{}",
                spec.name
            );
            assert_eq!(mpi.seed, 7 ^ 0x5A5A_5A5A, "{}", spec.name);
        }
    }
}
