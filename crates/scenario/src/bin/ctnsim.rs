//! `ctnsim` — run contention scenarios from the command line.
//!
//! ```text
//! ctnsim list
//! ctnsim run <name|file.toml>... [--workers N] [--seed S] [--format text|csv|json] [--out FILE]
//! ctnsim sweep <name|file.toml> --nodes 4,8 --sizes 65536,262144 [--reps R] [--workers N]
//! ctnsim show <name>
//! ```
//!
//! A thin shell over the library's [`Session`] facade: argument parsing
//! and I/O live here, everything else (calibration caching, streaming
//! progress, report rendering) is the same code an embedder calls.
//!
//! Exit codes: `0` success, `1` runtime failure (unknown scenario,
//! invalid spec, simulation or I/O error), `2` usage error (unknown
//! command, flag or flag value), `3` partial failure (the run finished
//! and the report was emitted, but some cells were stopped by a
//! supervision limit, a deadlock, a panic or a cancellation — see the
//! report's `status` column).

use contention_scenario::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "ctnsim — contention scenario runner

USAGE:
    ctnsim list
        Show the built-in scenarios.

    ctnsim run <name|file.toml>... [OPTIONS]
        Run one or more scenarios (built-in names or TOML spec files) and
        emit per-cell results with model-error columns.

    ctnsim sweep <name|file.toml> --nodes N1,N2 --sizes B1,B2 [OPTIONS]
        Run a scenario with its grid replaced from the command line.

    ctnsim show <name>
        Print a built-in scenario as TOML (a template for custom specs).

OPTIONS:
    --workers N       Worker threads (default: available parallelism)
    --seed S          Base seed (default 42); results are deterministic per
                      (scenario, seed, cell) and independent of --workers
    --model NAME      Predictor behind the model_secs/error_percent
                      columns: med (default; the MED lower bound),
                      signature (fitted (γ, δ, M) contention signature) or
                      saturation (γ(n) ramp for half-saturated networks)
    --placement NAME  Override how ranks map onto the fabric: scatter
                      (round-robin across edge groups), pack (fill groups
                      in order) or random (seeded partial permutation).
                      Not available on preset topologies.
    --backend NAME    Override which simulation tier runs the cells:
                      packet (per-packet discrete events, the calibrated
                      reference) or fluid (flow-level max-min fair
                      sharing; orders of magnitude faster on 1k+-host
                      fabrics, see the README error bands)
    --format NAME     Output format: text, csv (default) or json
    --out FILE        Write the report to FILE instead of stdout
    --progress        Stream per-cell progress to stderr while running,
                      then a run summary (wall clock, cache hit rate)
    --metrics FILE    Write per-run telemetry (cell spans, worker
                      occupancy, link utilization series, protocol event
                      marks) as a JSON document to FILE
    --trace FILE      Write a Chrome trace-event timeline to FILE; open
                      it in Perfetto (ui.perfetto.dev) or chrome://tracing
    --reps R          Measured repetitions per cell (override)
    --warmup W        Warm-up repetitions per cell (override)
    --deadline SECS   Wall-clock ceiling per cell; a cell that exceeds it
                      is stopped at the engine's next preemption point and
                      reported with status timed-out while its siblings
                      finish (exit code 3 marks the partial failure)
    --event-budget N  Engine-event ceiling per cell (rate recomputations
                      on the fluid backend); exhausted cells report
                      status budget-exceeded

Exit codes: 0 success; 1 runtime failure; 2 usage error; 3 partial
failure — the report was emitted but some cells carry a non-ok status
(timed-out, budget-exceeded, deadlocked, panicked or cancelled).
";

/// Runtime failure (unknown scenario, invalid spec, simulation error).
fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("ctnsim: {msg}");
    ExitCode::FAILURE
}

/// Usage error (unknown command, flag, or flag value).
fn fail_usage(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("ctnsim: {msg}");
    ExitCode::from(2)
}

struct Options {
    workers: Option<usize>,
    seed: u64,
    model: ModelKind,
    placement: Option<Placement>,
    backend: Option<Backend>,
    format: ReportFormat,
    out: Option<String>,
    progress: bool,
    metrics: Option<String>,
    trace: Option<String>,
    nodes: Option<Vec<usize>>,
    sizes: Option<Vec<u64>>,
    reps: Option<usize>,
    warmup: Option<usize>,
    deadline: Option<Duration>,
    event_budget: Option<u64>,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        workers: None,
        seed: 42,
        model: ModelKind::Med,
        placement: None,
        backend: None,
        format: ReportFormat::Csv,
        out: None,
        progress: false,
        metrics: None,
        trace: None,
        nodes: None,
        sizes: None,
        reps: None,
        warmup: None,
        deadline: None,
        event_budget: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workers" => {
                o.workers = Some(
                    value_of("--workers")?
                        .parse()
                        .map_err(|_| "--workers expects a positive integer".to_string())?,
                )
            }
            "--seed" => {
                o.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--model" => {
                let name = value_of("--model")?;
                o.model = ModelKind::parse(&name).ok_or_else(|| {
                    format!("unknown model {name:?} (expected med, signature or saturation)")
                })?;
            }
            "--placement" => {
                let name = value_of("--placement")?;
                o.placement = Some(Placement::parse(&name).ok_or_else(|| {
                    format!("unknown placement {name:?} (expected scatter, pack or random)")
                })?);
            }
            "--backend" => {
                let name = value_of("--backend")?;
                o.backend = Some(Backend::parse(&name).ok_or_else(|| {
                    format!("unknown backend {name:?} (expected packet or fluid)")
                })?);
            }
            "--format" => {
                let name = value_of("--format")?;
                o.format = ReportFormat::parse(&name).ok_or_else(|| {
                    format!("unknown format {name:?} (expected text, csv or json)")
                })?;
            }
            "--out" => o.out = Some(value_of("--out")?),
            "--progress" => o.progress = true,
            "--metrics" => o.metrics = Some(value_of("--metrics")?),
            "--trace" => o.trace = Some(value_of("--trace")?),
            "--nodes" => o.nodes = Some(parse_list(&value_of("--nodes")?, "--nodes")?),
            "--sizes" => {
                o.sizes = Some(
                    parse_list(&value_of("--sizes")?, "--sizes")?
                        .into_iter()
                        .map(|v| v as u64)
                        .collect(),
                )
            }
            "--reps" => {
                o.reps = Some(
                    value_of("--reps")?
                        .parse()
                        .map_err(|_| "--reps expects a positive integer".to_string())?,
                )
            }
            "--warmup" => {
                o.warmup = Some(
                    value_of("--warmup")?
                        .parse()
                        .map_err(|_| "--warmup expects an integer".to_string())?,
                )
            }
            "--deadline" => {
                let secs: f64 = value_of("--deadline")?
                    .parse()
                    .map_err(|_| "--deadline expects seconds (a positive number)".to_string())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline expects seconds (a positive number)".to_string());
                }
                o.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--event-budget" => {
                o.event_budget = Some(
                    value_of("--event-budget")?
                        .parse()
                        .map_err(|_| "--event-budget expects a non-negative integer".to_string())?,
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            name => o.positional.push(name.to_string()),
        }
    }
    Ok(o)
}

fn parse_list(text: &str, flag: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("{flag}: {part:?} is not a positive integer"))
        })
        .collect()
}

fn load_spec(name_or_path: &str) -> Result<ScenarioSpec, String> {
    if let Some(spec) = registry::by_name(name_or_path) {
        return Ok(spec);
    }
    if name_or_path.ends_with(".toml") {
        let text = std::fs::read_to_string(name_or_path)
            .map_err(|e| format!("cannot read {name_or_path}: {e}"))?;
        return ScenarioSpec::from_toml_str(&text).map_err(|e| format!("{name_or_path}: {e}"));
    }
    Err(format!(
        "unknown scenario {name_or_path:?}; `ctnsim list` shows built-ins, or pass a .toml file"
    ))
}

fn emit(options: &Options, report: &Report) -> Result<(), String> {
    let text = report.render(options.format);
    match &options.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {} scenario(s), {} cell(s) to {path}",
                report.batches.len(),
                report.cell_count()
            );
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_list() -> ExitCode {
    let all = registry::builtin();
    println!(
        "{:<28} {:>5}  {:<7}  DESCRIPTION",
        "NAME", "CELLS", "BACKEND"
    );
    let mut fluid_only = 0usize;
    for spec in &all {
        let backend = match spec.backend {
            Backend::Fluid => {
                fluid_only += 1;
                "fluid"
            }
            Backend::Packet => "any",
        };
        println!(
            "{:<28} {:>5}  {:<7}  {}",
            spec.name,
            spec.sweep.nodes.len() * spec.sweep.message_bytes.len(),
            backend,
            spec.description
        );
    }
    println!(
        "\n{} scenarios; `ctnsim run <name>` executes one.",
        all.len()
    );
    if fluid_only > 0 {
        println!(
            "Scenarios marked `fluid` are sized for the fluid backend; forcing \
             `--backend packet` on them is rejected or impractically slow."
        );
    }
    ExitCode::SUCCESS
}

/// Streams per-cell progress lines to stderr as the session runs.
fn progress_observer(event: RunEvent<'_>) {
    match event {
        RunEvent::BatchStarted { scenario, cells } => {
            eprintln!("ctnsim: {scenario}: {cells} cell(s) queued");
        }
        RunEvent::CellFinished {
            scenario,
            cell,
            completed,
            total,
            ..
        } => {
            let err = if cell.error_percent.is_finite() {
                format!("{:+.1}%", cell.error_percent)
            } else {
                "-".to_string()
            };
            let status = if cell.status.is_ok() {
                String::new()
            } else {
                format!(" status={}", cell.status.name())
            };
            eprintln!(
                "ctnsim: {scenario}: [{completed}/{total}] n={} m={} mean={:.6}s err={err}{status}",
                cell.n, cell.message_bytes, cell.mean_secs
            );
        }
        RunEvent::BatchFinished { scenario, .. } => {
            eprintln!("ctnsim: {scenario}: done");
        }
    }
}

fn run_specs(mut specs: Vec<ScenarioSpec>, options: &Options) -> ExitCode {
    for spec in &mut specs {
        if let Some(nodes) = &options.nodes {
            spec.sweep.nodes = nodes.clone();
        }
        if let Some(sizes) = &options.sizes {
            spec.sweep.message_bytes = sizes.clone();
        }
        if let Some(reps) = options.reps {
            spec.sweep.reps = reps;
        }
        if let Some(warmup) = options.warmup {
            spec.sweep.warmup = warmup;
        }
        if let Some(placement) = options.placement {
            spec.placement = placement;
        }
        if let Some(backend) = options.backend {
            spec.backend = backend;
        }
    }
    let mut builder = Session::builder()
        .base_seed(options.seed)
        .model(options.model)
        .telemetry(options.metrics.is_some() || options.trace.is_some());
    if let Some(workers) = options.workers {
        builder = builder.workers(workers);
    }
    if let Some(deadline) = options.deadline {
        builder = builder.deadline(deadline);
    }
    if let Some(budget) = options.event_budget {
        builder = builder.event_budget(budget);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => return fail_usage(e),
    };
    let outcome = if options.progress {
        session.run_many_with(&specs, &mut progress_observer)
    } else {
        session.run_many(&specs)
    };
    match outcome {
        Ok(report) => {
            if let Err(e) = emit(options, &report) {
                return fail(e);
            }
            match export_telemetry(options, &session) {
                Ok(()) if report.has_failures() => ExitCode::from(3),
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        Err(e) => fail(e),
    }
}

/// Writes `--metrics`/`--trace` exports and, under `--progress`, the run
/// summary line. The [`SessionMetrics`] snapshot exists after every
/// successful run; the flags only decide what gets written where.
fn export_telemetry(options: &Options, session: &Session) -> Result<(), String> {
    let Some(metrics) = session.metrics() else {
        return Ok(());
    };
    if options.progress {
        let busy: f64 = metrics.workers.iter().map(|w| w.busy_secs).sum();
        eprintln!(
            "ctnsim: {} cell(s) on {} worker(s) in {:.3}s wall ({:.3}s simulating); \
             calibration cache: {} hit(s), {} miss(es) ({:.0}% hit rate)",
            metrics.cells.len(),
            metrics.workers.len(),
            metrics.wall_secs,
            busy,
            metrics.cache.hits,
            metrics.cache.misses,
            metrics.cache.hit_rate() * 100.0
        );
    }
    if let Some(path) = &options.metrics {
        std::fs::write(path, metrics.render_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote run metrics to {path}");
    }
    if let Some(path) = &options.trace {
        std::fs::write(path, metrics.render_chrome_trace())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote trace timeline to {path} (open in Perfetto or chrome://tracing)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => return fail_usage(e),
    };
    match command.as_str() {
        "list" => cmd_list(),
        "show" => {
            let Some(name) = options.positional.first() else {
                return fail_usage("show needs a scenario name");
            };
            match registry::by_name(name) {
                Some(spec) => {
                    print!("{}", spec.to_toml_string());
                    ExitCode::SUCCESS
                }
                None => fail(format!("unknown built-in {name:?}")),
            }
        }
        "run" => {
            if options.positional.is_empty() {
                return fail_usage("run needs at least one scenario name or .toml file");
            }
            let mut specs = Vec::new();
            for name in &options.positional {
                match load_spec(name) {
                    Ok(s) => specs.push(s),
                    Err(e) => return fail(e),
                }
            }
            run_specs(specs, &options)
        }
        "sweep" => {
            let Some(name) = options.positional.first() else {
                return fail_usage("sweep needs a scenario name or .toml file");
            };
            if options.positional.len() > 1 {
                return fail_usage("sweep takes exactly one scenario");
            }
            if options.nodes.is_none() && options.sizes.is_none() {
                return fail_usage("sweep needs --nodes and/or --sizes overrides");
            }
            match load_spec(name) {
                Ok(spec) => run_specs(vec![spec], &options),
                Err(e) => fail(e),
            }
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail_usage(format!("unknown command {other:?}; see `ctnsim help`")),
    }
}
