//! The declarative scenario description: what fabric, what transport, what
//! workload, over what sweep grid.
//!
//! A [`ScenarioSpec`] is the unit the batch executor runs and the `ctnsim`
//! CLI loads from TOML. Specs are plain data — building worlds and
//! programs from them lives in [`crate::topology`] and
//! [`crate::workload`].

use crate::toml::{self, TomlError, Value};
use serde::{Deserialize, Serialize};
use simnet::generate::Placement;
use simnet::prelude::*;
use std::collections::BTreeMap;

/// A link description (bandwidth + latency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way latency in nanoseconds.
    pub latency_ns: u64,
}

impl LinkSpec {
    /// Conversion to the simulator type.
    pub fn to_config(self) -> LinkConfig {
        LinkConfig {
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec,
            latency_ns: self.latency_ns,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        let l = LinkConfig::gigabit_ethernet();
        Self {
            bandwidth_bytes_per_sec: l.bandwidth_bytes_per_sec,
            latency_ns: l.latency_ns,
        }
    }
}

/// Switch buffering description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Shared buffer pool in bytes.
    pub shared_buffer_bytes: u64,
    /// Per-port cap within the pool, bytes.
    pub per_port_cap_bytes: u64,
}

impl SwitchSpec {
    /// Conversion to the simulator type.
    pub fn to_config(self) -> SwitchConfig {
        SwitchConfig {
            shared_buffer_bytes: self.shared_buffer_bytes,
            per_port_cap_bytes: self.per_port_cap_bytes,
        }
    }
}

impl Default for SwitchSpec {
    fn default() -> Self {
        let s = SwitchConfig::commodity_ethernet();
        Self {
            shared_buffer_bytes: s.shared_buffer_bytes,
            per_port_cap_bytes: s.per_port_cap_bytes,
        }
    }
}

/// Which fabric family a scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// One of the paper's calibrated clusters, by preset name
    /// (`fast-ethernet`, `gigabit-ethernet`, `myrinet`).
    Preset {
        /// Preset name.
        preset: String,
    },
    /// `hosts` hosts on one switch.
    SingleSwitch {
        /// Host count (capacity).
        hosts: usize,
        /// Host link.
        link: LinkSpec,
        /// The switch.
        switch: SwitchSpec,
    },
    /// Leaf switches around a core with explicit uplink parameters.
    StarOfSwitches {
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Host ↔ leaf link.
        edge_link: LinkSpec,
        /// Leaf ↔ core link.
        uplink: LinkSpec,
        /// Parallel uplinks per leaf.
        uplinks_per_leaf: usize,
        /// Leaf switch buffering.
        edge_switch: SwitchSpec,
        /// Core switch buffering.
        core_switch: SwitchSpec,
    },
    /// Two-level tree whose uplink bandwidth derives from an
    /// oversubscription ratio.
    Tree {
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Host ↔ leaf link.
        edge_link: LinkSpec,
        /// Total host bandwidth per leaf ÷ total uplink bandwidth.
        oversubscription: f64,
        /// Parallel uplinks per leaf.
        uplinks_per_leaf: usize,
        /// Uplink one-way latency, nanoseconds.
        uplink_latency_ns: u64,
        /// Leaf switch buffering.
        edge_switch: SwitchSpec,
        /// Core switch buffering.
        core_switch: SwitchSpec,
    },
    /// k-ary fat-tree.
    FatTree {
        /// Pod arity (even).
        k: usize,
        /// Hosts per edge switch.
        hosts_per_edge: usize,
        /// Uniform link.
        link: LinkSpec,
        /// Uniform switch buffering.
        switch: SwitchSpec,
    },
    /// 2-D torus of switches, dimension-ordered routing.
    Torus2d {
        /// Ring length along x.
        x: usize,
        /// Ring length along y.
        y: usize,
        /// Hosts per switch.
        hosts_per_switch: usize,
        /// Uniform link.
        link: LinkSpec,
        /// Uniform switch buffering.
        switch: SwitchSpec,
    },
    /// 3-D torus of switches, dimension-ordered routing.
    Torus3d {
        /// Ring length along x.
        x: usize,
        /// Ring length along y.
        y: usize,
        /// Ring length along z.
        z: usize,
        /// Hosts per switch.
        hosts_per_switch: usize,
        /// Uniform link.
        link: LinkSpec,
        /// Uniform switch buffering.
        switch: SwitchSpec,
    },
    /// Dragonfly: fully-meshed router groups joined by single global
    /// links, minimal-path routed.
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers per group (local full mesh).
        routers_per_group: usize,
        /// Hosts per router.
        hosts_per_router: usize,
        /// Host ↔ router link.
        host_link: LinkSpec,
        /// Intra-group link.
        local_link: LinkSpec,
        /// Inter-group (global) link.
        global_link: LinkSpec,
        /// Uniform router buffering.
        switch: SwitchSpec,
    },
}

impl TopologySpec {
    /// Short family name used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Preset { .. } => "preset",
            TopologySpec::SingleSwitch { .. } => "single-switch",
            TopologySpec::StarOfSwitches { .. } => "star-of-switches",
            TopologySpec::Tree { .. } => "tree",
            TopologySpec::FatTree { .. } => "fat-tree",
            TopologySpec::Torus2d { .. } => "torus-2d",
            TopologySpec::Torus3d { .. } => "torus-3d",
            TopologySpec::Dragonfly { .. } => "dragonfly",
        }
    }
}

/// Transport every connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportSpec {
    /// TCP-like lossy transport with the given window.
    Tcp {
        /// Send window in bytes.
        window_bytes: u64,
    },
    /// GM-like lossless transport with the given window.
    Gm {
        /// Send window in bytes.
        window_bytes: u64,
    },
}

impl TransportSpec {
    /// Conversion to the simulator type.
    pub fn to_kind(self) -> TransportKind {
        match self {
            TransportSpec::Tcp { window_bytes } => TransportKind::Tcp(TcpConfig {
                window_bytes,
                ..TcpConfig::default()
            }),
            TransportSpec::Gm { window_bytes } => TransportKind::Gm(GmConfig {
                window_bytes,
                ..GmConfig::default()
            }),
        }
    }
}

impl Default for TransportSpec {
    fn default() -> Self {
        TransportSpec::Tcp {
            window_bytes: TcpConfig::default().window_bytes,
        }
    }
}

/// Optional overrides of the MPI protocol stack; unset fields keep the
/// topology's defaults (the preset's values on preset topologies,
/// [`simmpi::MpiConfig::default`] otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MpiSpec {
    /// Eager/rendezvous threshold in bytes.
    pub eager_threshold: Option<u64>,
    /// Per-message sender CPU overhead, nanoseconds.
    pub send_overhead_ns: Option<u64>,
    /// Per-message receiver CPU overhead, nanoseconds.
    pub recv_overhead_ns: Option<u64>,
    /// OS scheduling hiccup probability.
    pub hiccup_probability: Option<f64>,
}

impl MpiSpec {
    /// Applies the overrides onto `base`.
    pub fn apply(&self, mut base: simmpi::MpiConfig) -> simmpi::MpiConfig {
        if let Some(v) = self.eager_threshold {
            base.eager_threshold = v;
        }
        if let Some(v) = self.send_overhead_ns {
            base.send_overhead_ns = v;
        }
        if let Some(v) = self.recv_overhead_ns {
            base.recv_overhead_ns = v;
        }
        if let Some(v) = self.hiccup_probability {
            base.hiccup_probability = v;
        }
        base
    }

    fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// Traffic pattern of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's uniform All-to-All under a named algorithm
    /// (`direct`, `direct-nb`, `bruck`, `pairwise`, `ring`).
    Uniform {
        /// Algorithm name (see [`simmpi::AllToAllAlgorithm::name`]).
        algorithm: String,
    },
    /// Irregular exchange where `hot_ranks` senders transmit
    /// `factor ×` larger blocks than everyone else.
    Skewed {
        /// Number of heavy senders.
        hot_ranks: usize,
        /// Size multiplier for heavy senders.
        factor: f64,
        /// Post-all nonblocking schedule instead of rotated rounds.
        nonblocking: bool,
    },
    /// Irregular exchange keeping each off-diagonal pair with probability
    /// `density` (seeded per cell).
    Sparse {
        /// Pair survival probability in `(0, 1]`.
        density: f64,
        /// Post-all nonblocking schedule instead of rotated rounds.
        nonblocking: bool,
    },
    /// Each rank sends its full payload to exactly one partner under a
    /// seeded random permutation (derangement).
    Permutation,
    /// Everyone sends to `receivers` sink ranks (round-robin) — the
    /// buffer-exhausting incast of the paper's §3 stress test.
    Incast {
        /// Number of sinks.
        receivers: usize,
    },
    /// `senders` source ranks broadcast-style send to everyone else.
    Outcast {
        /// Number of sources.
        senders: usize,
    },
    /// Multiple phases separated by barriers.
    Phases {
        /// The phases, in order.
        phases: Vec<WorkloadSpec>,
    },
}

impl WorkloadSpec {
    /// Short name used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Skewed { .. } => "skewed",
            WorkloadSpec::Sparse { .. } => "sparse",
            WorkloadSpec::Permutation => "permutation",
            WorkloadSpec::Incast { .. } => "incast",
            WorkloadSpec::Outcast { .. } => "outcast",
            WorkloadSpec::Phases { .. } => "phases",
        }
    }
}

/// The sweep grid and repetition policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Node counts to run.
    pub nodes: Vec<usize>,
    /// Per-pair message sizes in bytes.
    pub message_bytes: Vec<u64>,
    /// Discarded warm-up repetitions per cell.
    pub warmup: usize,
    /// Measured repetitions per cell.
    pub reps: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            nodes: vec![4, 8],
            message_bytes: vec![64 * 1024, 256 * 1024],
            warmup: 0,
            reps: 1,
        }
    }
}

/// Which simulation tier executes a scenario's cells.
///
/// The packet engine replays every MTU-sized frame through the switch
/// queues — it is the calibrated reference and the default, but tops out
/// around a million events per second. The fluid tier models each
/// transfer as a flow with a max-min fair share of every link on its
/// route and advances time only at flow start/finish boundaries, trading
/// per-packet effects (buffer occupancy, drops, retransmits) for
/// orders-of-magnitude more hosts. See the README "Backends" section for
/// the measured per-scenario error bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// Per-packet discrete-event engine (the calibrated reference).
    #[default]
    Packet,
    /// Flow-level max-min fair-sharing engine for 1k–4k-host fabrics.
    Fluid,
}

impl Backend {
    /// All backends, in documentation order.
    pub fn all() -> [Backend; 2] {
        [Backend::Packet, Backend::Fluid]
    }

    /// The TOML / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Packet => "packet",
            Backend::Fluid => "fluid",
        }
    }

    /// Inverse of [`Backend::name`].
    pub fn parse(name: &str) -> Option<Backend> {
        Backend::all().into_iter().find(|b| b.name() == name)
    }
}

/// A complete, runnable scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Unique name (registry key, report column).
    pub name: String,
    /// One-line description shown by `ctnsim list`.
    pub description: String,
    /// The fabric.
    pub topology: TopologySpec,
    /// How ranks map onto the fabric's hosts (TOML: a top-level
    /// `placement = "scatter" | "pack" | "random"`; scatter when absent).
    pub placement: Placement,
    /// The transport.
    pub transport: TransportSpec,
    /// MPI-stack overrides.
    pub mpi: MpiSpec,
    /// The traffic.
    pub workload: WorkloadSpec,
    /// The grid.
    pub sweep: SweepSpec,
    /// Which simulation tier runs the cells (TOML: a top-level
    /// `backend = "packet" | "fluid"`; packet when absent).
    pub backend: Backend,
}

/// Spec validation / decoding failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// TOML-level failure.
    Toml(TomlError),
    /// Structural failure (missing/ill-typed/inconsistent field).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "{e}"),
            SpecError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError::Toml(e)
    }
}

fn invalid(msg: impl Into<String>) -> SpecError {
    SpecError::Invalid(msg.into())
}

/// Buffer sizes at or above this are treated as lossless-grade (no
/// backpressure deadlock risk) by the fluid-backend GM validation.
pub(crate) const LOSSLESS_BUFFER_FLOOR: u64 = 1 << 60;

/// FNV-1a over `bytes` — the crate's one hashing primitive (fingerprints,
/// name-derived seeds).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn validate_link(l: &LinkSpec, what: &str) -> Result<(), SpecError> {
    if !(l.bandwidth_bytes_per_sec.is_finite() && l.bandwidth_bytes_per_sec > 0.0) {
        return Err(invalid(format!(
            "{what}.bandwidth_bytes_per_sec must be positive and finite, got {}",
            l.bandwidth_bytes_per_sec
        )));
    }
    Ok(())
}

fn validate_switch(s: &SwitchSpec, what: &str) -> Result<(), SpecError> {
    if s.shared_buffer_bytes == 0 || s.per_port_cap_bytes == 0 {
        return Err(invalid(format!("{what} buffer sizes must be positive")));
    }
    Ok(())
}

impl ScenarioSpec {
    /// Validates internal consistency (positive grids, ratios, known
    /// algorithm names, capacity respected).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(invalid("name must not be empty"));
        }
        if self.sweep.nodes.is_empty() || self.sweep.message_bytes.is_empty() {
            return Err(invalid("sweep grid must not be empty"));
        }
        if self.sweep.reps == 0 {
            return Err(invalid("sweep.reps must be at least 1"));
        }
        if self.sweep.message_bytes.contains(&0) {
            return Err(invalid("message sizes must be positive"));
        }
        if self.sweep.nodes.iter().any(|&n| n < 2) {
            return Err(invalid("every node count must be at least 2"));
        }
        let capacity = crate::topology::capacity(&self.topology)?;
        if let Some(&too_big) = self.sweep.nodes.iter().find(|&&n| n > capacity) {
            return Err(invalid(format!(
                "node count {too_big} exceeds the topology's {capacity}-host capacity"
            )));
        }
        self.validate_workload(&self.workload)?;
        if self.placement != Placement::Scatter
            && matches!(self.topology, TopologySpec::Preset { .. })
        {
            return Err(invalid(format!(
                "placement {:?} is not available on preset topologies (presets scatter)",
                self.placement.name()
            )));
        }
        match &self.topology {
            TopologySpec::Preset { .. } => {}
            TopologySpec::SingleSwitch { link, switch, .. } => {
                validate_link(link, "topology.link")?;
                validate_switch(switch, "topology.switch")?;
            }
            TopologySpec::StarOfSwitches {
                edge_link,
                uplink,
                edge_switch,
                core_switch,
                ..
            } => {
                validate_link(edge_link, "topology.edge_link")?;
                validate_link(uplink, "topology.uplink")?;
                validate_switch(edge_switch, "topology.edge_switch")?;
                validate_switch(core_switch, "topology.core_switch")?;
            }
            TopologySpec::Tree {
                edge_link,
                oversubscription,
                edge_switch,
                core_switch,
                ..
            } => {
                validate_link(edge_link, "topology.edge_link")?;
                validate_switch(edge_switch, "topology.edge_switch")?;
                validate_switch(core_switch, "topology.core_switch")?;
                if !(oversubscription.is_finite() && *oversubscription > 0.0) {
                    return Err(invalid("tree oversubscription must be positive"));
                }
            }
            TopologySpec::FatTree {
                k, link, switch, ..
            } => {
                validate_link(link, "topology.link")?;
                validate_switch(switch, "topology.switch")?;
                if *k < 2 || *k % 2 != 0 {
                    return Err(invalid(format!("fat-tree arity {k} must be even and >= 2")));
                }
            }
            TopologySpec::Torus2d {
                x,
                y,
                hosts_per_switch,
                link,
                switch,
            } => {
                validate_link(link, "topology.link")?;
                validate_switch(switch, "topology.switch")?;
                if *x == 0 || *y == 0 || *x * *y < 2 || *hosts_per_switch == 0 {
                    return Err(invalid("torus needs ≥ 2 switches and ≥ 1 host each"));
                }
            }
            TopologySpec::Torus3d {
                x,
                y,
                z,
                hosts_per_switch,
                link,
                switch,
            } => {
                validate_link(link, "topology.link")?;
                validate_switch(switch, "topology.switch")?;
                if *x == 0 || *y == 0 || *z == 0 || *x * *y * *z < 2 || *hosts_per_switch == 0 {
                    return Err(invalid("torus needs ≥ 2 switches and ≥ 1 host each"));
                }
            }
            TopologySpec::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
                host_link,
                local_link,
                global_link,
                switch,
            } => {
                validate_link(host_link, "topology.host_link")?;
                validate_link(local_link, "topology.local_link")?;
                validate_link(global_link, "topology.global_link")?;
                validate_switch(switch, "topology.switch")?;
                if *groups == 0
                    || *routers_per_group == 0
                    || *hosts_per_router == 0
                    || *groups * *routers_per_group < 2
                {
                    return Err(invalid("dragonfly needs ≥ 2 routers and ≥ 1 host each"));
                }
            }
        }
        if let Some(p) = self.mpi.hiccup_probability {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(invalid(format!(
                    "mpi.hiccup_probability {p} must be in [0, 1]"
                )));
            }
        }
        if self.backend == Backend::Fluid
            && matches!(self.transport, TransportSpec::Gm { .. })
            && self.finite_buffer_switch().is_some()
        {
            let what = self.finite_buffer_switch().expect("checked");
            return Err(invalid(format!(
                "backend = \"fluid\" cannot combine a GM transport with the \
                 finite-buffer switch {what}: the fluid tier's packet-engine \
                 calibration run can deadlock when lossless backpressure \
                 exhausts a finite shared buffer (GM never retransmits). Use \
                 lossless-grade buffers (>= 2^60 bytes) or a TCP transport"
            )));
        }
        Ok(())
    }

    /// The first topology switch whose buffering is not lossless-grade
    /// (either field below [`LOSSLESS_BUFFER_FLOOR`]), with its TOML path.
    fn finite_buffer_switch(&self) -> Option<&'static str> {
        let finite = |s: &SwitchSpec| {
            s.shared_buffer_bytes < LOSSLESS_BUFFER_FLOOR
                || s.per_port_cap_bytes < LOSSLESS_BUFFER_FLOOR
        };
        match &self.topology {
            // Presets carry the paper's calibrated fabrics, which are known
            // to drain under the packet engine's GM flow control.
            TopologySpec::Preset { .. } => None,
            TopologySpec::SingleSwitch { switch, .. }
            | TopologySpec::FatTree { switch, .. }
            | TopologySpec::Torus2d { switch, .. }
            | TopologySpec::Torus3d { switch, .. }
            | TopologySpec::Dragonfly { switch, .. } => finite(switch).then_some("topology.switch"),
            TopologySpec::StarOfSwitches {
                edge_switch,
                core_switch,
                ..
            }
            | TopologySpec::Tree {
                edge_switch,
                core_switch,
                ..
            } => {
                if finite(edge_switch) {
                    Some("topology.edge_switch")
                } else {
                    finite(core_switch).then_some("topology.core_switch")
                }
            }
        }
    }

    fn validate_workload(&self, w: &WorkloadSpec) -> Result<(), SpecError> {
        let min_n = *self.sweep.nodes.iter().min().expect("non-empty");
        match w {
            WorkloadSpec::Uniform { algorithm } => {
                crate::workload::algorithm_by_name(algorithm)
                    .ok_or_else(|| invalid(format!("unknown algorithm {algorithm:?}")))?;
                if algorithm == "pairwise" && self.sweep.nodes.iter().any(|n| !n.is_power_of_two())
                {
                    return Err(invalid("pairwise requires power-of-two node counts"));
                }
                Ok(())
            }
            WorkloadSpec::Skewed {
                hot_ranks, factor, ..
            } => {
                if *hot_ranks == 0 || *hot_ranks >= min_n {
                    return Err(invalid(format!(
                        "skewed hot_ranks {hot_ranks} must be in 1..{min_n}"
                    )));
                }
                if !(factor.is_finite() && *factor >= 1.0) {
                    return Err(invalid("skewed factor must be >= 1"));
                }
                Ok(())
            }
            WorkloadSpec::Sparse { density, .. } => {
                if !(*density > 0.0 && *density <= 1.0) {
                    return Err(invalid("sparse density must be in (0, 1]"));
                }
                Ok(())
            }
            WorkloadSpec::Permutation => Ok(()),
            WorkloadSpec::Incast { receivers } => {
                if *receivers == 0 || *receivers >= min_n {
                    return Err(invalid(format!(
                        "incast receivers {receivers} must be in 1..{min_n}"
                    )));
                }
                Ok(())
            }
            WorkloadSpec::Outcast { senders } => {
                if *senders == 0 || *senders >= min_n {
                    return Err(invalid(format!(
                        "outcast senders {senders} must be in 1..{min_n}"
                    )));
                }
                Ok(())
            }
            WorkloadSpec::Phases { phases } => {
                if phases.is_empty() {
                    return Err(invalid("phases must not be empty"));
                }
                for p in phases {
                    if matches!(p, WorkloadSpec::Phases { .. }) {
                        return Err(invalid("phases cannot nest"));
                    }
                    self.validate_workload(p)?;
                }
                Ok(())
            }
        }
    }

    /// Parses and validates a TOML document.
    ///
    /// TOML is one front-end to the
    /// [`ScenarioBuilder`](crate::builder::ScenarioBuilder): the decoded
    /// sections feed the same builder (and the same validation) a
    /// programmatic caller would use, so the two routes cannot drift.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        let value = toml::parse(input)?;
        Self::from_value(&value)
    }

    /// Serializes to a TOML document that [`ScenarioSpec::from_toml_str`]
    /// parses back to an equal spec.
    pub fn to_toml_string(&self) -> String {
        toml::serialize(&self.to_value())
    }

    fn from_value(v: &Value) -> Result<Self, SpecError> {
        let mut b = crate::builder::ScenarioBuilder::new(req_str(v, "name")?);
        if let Some(description) = opt_str(v, "description")? {
            b = b.description(description);
        }
        b = b.topology(decode_topology(
            v.get("topology")
                .ok_or_else(|| invalid("missing [topology]"))?,
        )?);
        if let Some(name) = opt_str(v, "placement")? {
            b = b.placement(
                Placement::parse(&name)
                    .ok_or_else(|| invalid(format!("unknown placement {name:?}")))?,
            );
        }
        if let Some(name) = opt_str(v, "backend")? {
            b = b.backend(
                Backend::parse(&name)
                    .ok_or_else(|| invalid(format!("unknown backend {name:?}")))?,
            );
        }
        if let Some(t) = v.get("transport") {
            b = b.transport(decode_transport(t)?);
        }
        if let Some(m) = v.get("mpi") {
            b = b.mpi(decode_mpi(m)?);
        }
        b = b.workload(decode_workload(
            v.get("workload")
                .ok_or_else(|| invalid("missing [workload]"))?,
        )?);
        if let Some(s) = v.get("sweep") {
            b = b.sweep(decode_sweep(s)?);
        }
        b.build()
    }

    /// A stable fingerprint of the calibration-relevant spec parts: the
    /// fabric (topology), transport and MPI overrides — everything a
    /// calibration's outcome can depend on besides its seed. Specs that
    /// differ only in name, workload or sweep grid share it. The
    /// executor's calibration caches key on (fingerprint, seed); since
    /// seeds are name-derived (byte-identity), the fingerprint's job in
    /// that key is to keep *same-named* specs with different fabrics
    /// (edited TOML files, sweep overrides) from wrongly sharing a fit.
    pub fn fabric_fingerprint(&self) -> u64 {
        let mut fabric = BTreeMap::new();
        fabric.insert("topology".to_string(), encode_topology(&self.topology));
        // Placement changes which hosts a calibration's ranks land on, so
        // it is part of the fabric for caching purposes.
        fabric.insert(
            "placement".to_string(),
            Value::Str(self.placement.name().to_string()),
        );
        fabric.insert("transport".to_string(), encode_transport(&self.transport));
        fabric.insert("mpi".to_string(), encode_mpi(&self.mpi));
        // Omitted for the packet default so every pre-fluid fingerprint
        // (and the calibration caches keyed on them) stays stable.
        if self.backend != Backend::default() {
            fabric.insert(
                "backend".to_string(),
                Value::Str(self.backend.name().to_string()),
            );
        }
        let encoded = toml::serialize(&Value::Table(fabric));
        fnv1a(encoded.as_bytes())
    }

    fn to_value(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("name".into(), Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            root.insert("description".into(), Value::Str(self.description.clone()));
        }
        root.insert("topology".into(), encode_topology(&self.topology));
        if self.placement != Placement::default() {
            root.insert(
                "placement".into(),
                Value::Str(self.placement.name().to_string()),
            );
        }
        if self.backend != Backend::default() {
            root.insert(
                "backend".into(),
                Value::Str(self.backend.name().to_string()),
            );
        }
        root.insert("transport".into(), encode_transport(&self.transport));
        if !self.mpi.is_empty() {
            root.insert("mpi".into(), encode_mpi(&self.mpi));
        }
        root.insert("workload".into(), encode_workload(&self.workload));
        root.insert("sweep".into(), encode_sweep(&self.sweep));
        Value::Table(root)
    }
}

// ---- decoding helpers -------------------------------------------------

fn req_str(v: &Value, key: &str) -> Result<String, SpecError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("missing string field {key:?}")))
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("{key} must be a string"))),
    }
}

fn req_usize(v: &Value, key: &str) -> Result<usize, SpecError> {
    let i = v
        .get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| invalid(format!("missing integer field {key:?}")))?;
    usize::try_from(i).map_err(|_| invalid(format!("{key} must be non-negative")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, SpecError> {
    let i = v
        .get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| invalid(format!("missing integer field {key:?}")))?;
    u64::try_from(i).map_err(|_| invalid(format!("{key} must be non-negative")))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => req_u64(v, key).map(Some),
    }
}

fn req_f64(v: &Value, key: &str) -> Result<f64, SpecError> {
    v.get(key)
        .and_then(Value::as_float)
        .ok_or_else(|| invalid(format!("missing number field {key:?}")))
}

fn opt_bool(v: &Value, key: &str, default: bool) -> Result<bool, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| invalid(format!("{key} must be a boolean"))),
    }
}

fn decode_link(v: &Value) -> Result<LinkSpec, SpecError> {
    Ok(LinkSpec {
        bandwidth_bytes_per_sec: req_f64(v, "bandwidth_bytes_per_sec")?,
        latency_ns: req_u64(v, "latency_ns")?,
    })
}

fn decode_switch(v: &Value) -> Result<SwitchSpec, SpecError> {
    Ok(SwitchSpec {
        shared_buffer_bytes: req_u64(v, "shared_buffer_bytes")?,
        per_port_cap_bytes: req_u64(v, "per_port_cap_bytes")?,
    })
}

fn sub<'v>(v: &'v Value, key: &str) -> Result<&'v Value, SpecError> {
    v.get(key)
        .ok_or_else(|| invalid(format!("missing [{key}] table")))
}

fn decode_topology(v: &Value) -> Result<TopologySpec, SpecError> {
    let kind = req_str(v, "kind")?;
    match kind.as_str() {
        "preset" => Ok(TopologySpec::Preset {
            preset: req_str(v, "preset")?,
        }),
        "single-switch" => Ok(TopologySpec::SingleSwitch {
            hosts: req_usize(v, "hosts")?,
            link: decode_link(sub(v, "link")?)?,
            switch: decode_switch(sub(v, "switch")?)?,
        }),
        "star-of-switches" => Ok(TopologySpec::StarOfSwitches {
            leaves: req_usize(v, "leaves")?,
            hosts_per_leaf: req_usize(v, "hosts_per_leaf")?,
            edge_link: decode_link(sub(v, "edge_link")?)?,
            uplink: decode_link(sub(v, "uplink")?)?,
            uplinks_per_leaf: req_usize(v, "uplinks_per_leaf")?,
            edge_switch: decode_switch(sub(v, "edge_switch")?)?,
            core_switch: decode_switch(sub(v, "core_switch")?)?,
        }),
        "tree" => Ok(TopologySpec::Tree {
            leaves: req_usize(v, "leaves")?,
            hosts_per_leaf: req_usize(v, "hosts_per_leaf")?,
            edge_link: decode_link(sub(v, "edge_link")?)?,
            oversubscription: req_f64(v, "oversubscription")?,
            uplinks_per_leaf: req_usize(v, "uplinks_per_leaf")?,
            uplink_latency_ns: req_u64(v, "uplink_latency_ns")?,
            edge_switch: decode_switch(sub(v, "edge_switch")?)?,
            core_switch: decode_switch(sub(v, "core_switch")?)?,
        }),
        "fat-tree" => Ok(TopologySpec::FatTree {
            k: req_usize(v, "k")?,
            hosts_per_edge: req_usize(v, "hosts_per_edge")?,
            link: decode_link(sub(v, "link")?)?,
            switch: decode_switch(sub(v, "switch")?)?,
        }),
        "torus-2d" => Ok(TopologySpec::Torus2d {
            x: req_usize(v, "x")?,
            y: req_usize(v, "y")?,
            hosts_per_switch: req_usize(v, "hosts_per_switch")?,
            link: decode_link(sub(v, "link")?)?,
            switch: decode_switch(sub(v, "switch")?)?,
        }),
        "torus-3d" => Ok(TopologySpec::Torus3d {
            x: req_usize(v, "x")?,
            y: req_usize(v, "y")?,
            z: req_usize(v, "z")?,
            hosts_per_switch: req_usize(v, "hosts_per_switch")?,
            link: decode_link(sub(v, "link")?)?,
            switch: decode_switch(sub(v, "switch")?)?,
        }),
        "dragonfly" => Ok(TopologySpec::Dragonfly {
            groups: req_usize(v, "groups")?,
            routers_per_group: req_usize(v, "routers_per_group")?,
            hosts_per_router: req_usize(v, "hosts_per_router")?,
            host_link: decode_link(sub(v, "host_link")?)?,
            local_link: decode_link(sub(v, "local_link")?)?,
            global_link: decode_link(sub(v, "global_link")?)?,
            switch: decode_switch(sub(v, "switch")?)?,
        }),
        other => Err(invalid(format!("unknown topology kind {other:?}"))),
    }
}

fn decode_transport(v: &Value) -> Result<TransportSpec, SpecError> {
    let kind = req_str(v, "kind")?;
    let window_bytes = opt_u64(v, "window_bytes")?;
    match kind.as_str() {
        "tcp" => Ok(TransportSpec::Tcp {
            window_bytes: window_bytes.unwrap_or(TcpConfig::default().window_bytes),
        }),
        "gm" => Ok(TransportSpec::Gm {
            window_bytes: window_bytes.unwrap_or_else(|| GmConfig::default().window_bytes),
        }),
        other => Err(invalid(format!("unknown transport kind {other:?}"))),
    }
}

fn decode_mpi(v: &Value) -> Result<MpiSpec, SpecError> {
    Ok(MpiSpec {
        eager_threshold: opt_u64(v, "eager_threshold")?,
        send_overhead_ns: opt_u64(v, "send_overhead_ns")?,
        recv_overhead_ns: opt_u64(v, "recv_overhead_ns")?,
        hiccup_probability: match v.get("hiccup_probability") {
            None => None,
            Some(p) => Some(
                p.as_float()
                    .ok_or_else(|| invalid("hiccup_probability must be a number"))?,
            ),
        },
    })
}

fn decode_workload(v: &Value) -> Result<WorkloadSpec, SpecError> {
    let kind = req_str(v, "kind")?;
    match kind.as_str() {
        "uniform" => Ok(WorkloadSpec::Uniform {
            algorithm: opt_str(v, "algorithm")?.unwrap_or_else(|| "direct".into()),
        }),
        "skewed" => Ok(WorkloadSpec::Skewed {
            hot_ranks: req_usize(v, "hot_ranks")?,
            factor: req_f64(v, "factor")?,
            nonblocking: opt_bool(v, "nonblocking", true)?,
        }),
        "sparse" => Ok(WorkloadSpec::Sparse {
            density: req_f64(v, "density")?,
            nonblocking: opt_bool(v, "nonblocking", true)?,
        }),
        "permutation" => Ok(WorkloadSpec::Permutation),
        "incast" => Ok(WorkloadSpec::Incast {
            receivers: req_usize(v, "receivers")?,
        }),
        "outcast" => Ok(WorkloadSpec::Outcast {
            senders: req_usize(v, "senders")?,
        }),
        "phases" => {
            let phases = v
                .get("phases")
                .and_then(Value::as_array)
                .ok_or_else(|| invalid("phases workload needs a phases array"))?;
            Ok(WorkloadSpec::Phases {
                phases: phases
                    .iter()
                    .map(decode_workload)
                    .collect::<Result<_, _>>()?,
            })
        }
        other => Err(invalid(format!("unknown workload kind {other:?}"))),
    }
}

fn decode_sweep(v: &Value) -> Result<SweepSpec, SpecError> {
    let ints = |key: &str| -> Result<Vec<i64>, SpecError> {
        v.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| invalid(format!("sweep.{key} must be an array")))?
            .iter()
            .map(|x| {
                x.as_int()
                    .ok_or_else(|| invalid(format!("sweep.{key} entries must be integers")))
            })
            .collect()
    };
    Ok(SweepSpec {
        nodes: ints("nodes")?
            .into_iter()
            .map(|i| usize::try_from(i).map_err(|_| invalid("negative node count")))
            .collect::<Result<_, _>>()?,
        message_bytes: ints("message_bytes")?
            .into_iter()
            .map(|i| u64::try_from(i).map_err(|_| invalid("negative message size")))
            .collect::<Result<_, _>>()?,
        warmup: match v.get("warmup") {
            None => 0,
            Some(_) => req_usize(v, "warmup")?,
        },
        reps: match v.get("reps") {
            None => 1,
            Some(_) => req_usize(v, "reps")?,
        },
    })
}

// ---- encoding helpers -------------------------------------------------

fn table(entries: Vec<(&str, Value)>) -> Value {
    Value::Table(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn encode_link(l: &LinkSpec) -> Value {
    table(vec![
        (
            "bandwidth_bytes_per_sec",
            Value::Float(l.bandwidth_bytes_per_sec),
        ),
        ("latency_ns", Value::Int(l.latency_ns as i64)),
    ])
}

fn encode_switch(s: &SwitchSpec) -> Value {
    table(vec![
        (
            "shared_buffer_bytes",
            Value::Int(s.shared_buffer_bytes as i64),
        ),
        (
            "per_port_cap_bytes",
            Value::Int(s.per_port_cap_bytes as i64),
        ),
    ])
}

fn encode_topology(t: &TopologySpec) -> Value {
    match t {
        TopologySpec::Preset { preset } => table(vec![
            ("kind", Value::Str("preset".into())),
            ("preset", Value::Str(preset.clone())),
        ]),
        TopologySpec::SingleSwitch {
            hosts,
            link,
            switch,
        } => table(vec![
            ("kind", Value::Str("single-switch".into())),
            ("hosts", Value::Int(*hosts as i64)),
            ("link", encode_link(link)),
            ("switch", encode_switch(switch)),
        ]),
        TopologySpec::StarOfSwitches {
            leaves,
            hosts_per_leaf,
            edge_link,
            uplink,
            uplinks_per_leaf,
            edge_switch,
            core_switch,
        } => table(vec![
            ("kind", Value::Str("star-of-switches".into())),
            ("leaves", Value::Int(*leaves as i64)),
            ("hosts_per_leaf", Value::Int(*hosts_per_leaf as i64)),
            ("edge_link", encode_link(edge_link)),
            ("uplink", encode_link(uplink)),
            ("uplinks_per_leaf", Value::Int(*uplinks_per_leaf as i64)),
            ("edge_switch", encode_switch(edge_switch)),
            ("core_switch", encode_switch(core_switch)),
        ]),
        TopologySpec::Tree {
            leaves,
            hosts_per_leaf,
            edge_link,
            oversubscription,
            uplinks_per_leaf,
            uplink_latency_ns,
            edge_switch,
            core_switch,
        } => table(vec![
            ("kind", Value::Str("tree".into())),
            ("leaves", Value::Int(*leaves as i64)),
            ("hosts_per_leaf", Value::Int(*hosts_per_leaf as i64)),
            ("edge_link", encode_link(edge_link)),
            ("oversubscription", Value::Float(*oversubscription)),
            ("uplinks_per_leaf", Value::Int(*uplinks_per_leaf as i64)),
            ("uplink_latency_ns", Value::Int(*uplink_latency_ns as i64)),
            ("edge_switch", encode_switch(edge_switch)),
            ("core_switch", encode_switch(core_switch)),
        ]),
        TopologySpec::FatTree {
            k,
            hosts_per_edge,
            link,
            switch,
        } => table(vec![
            ("kind", Value::Str("fat-tree".into())),
            ("k", Value::Int(*k as i64)),
            ("hosts_per_edge", Value::Int(*hosts_per_edge as i64)),
            ("link", encode_link(link)),
            ("switch", encode_switch(switch)),
        ]),
        TopologySpec::Torus2d {
            x,
            y,
            hosts_per_switch,
            link,
            switch,
        } => table(vec![
            ("kind", Value::Str("torus-2d".into())),
            ("x", Value::Int(*x as i64)),
            ("y", Value::Int(*y as i64)),
            ("hosts_per_switch", Value::Int(*hosts_per_switch as i64)),
            ("link", encode_link(link)),
            ("switch", encode_switch(switch)),
        ]),
        TopologySpec::Torus3d {
            x,
            y,
            z,
            hosts_per_switch,
            link,
            switch,
        } => table(vec![
            ("kind", Value::Str("torus-3d".into())),
            ("x", Value::Int(*x as i64)),
            ("y", Value::Int(*y as i64)),
            ("z", Value::Int(*z as i64)),
            ("hosts_per_switch", Value::Int(*hosts_per_switch as i64)),
            ("link", encode_link(link)),
            ("switch", encode_switch(switch)),
        ]),
        TopologySpec::Dragonfly {
            groups,
            routers_per_group,
            hosts_per_router,
            host_link,
            local_link,
            global_link,
            switch,
        } => table(vec![
            ("kind", Value::Str("dragonfly".into())),
            ("groups", Value::Int(*groups as i64)),
            ("routers_per_group", Value::Int(*routers_per_group as i64)),
            ("hosts_per_router", Value::Int(*hosts_per_router as i64)),
            ("host_link", encode_link(host_link)),
            ("local_link", encode_link(local_link)),
            ("global_link", encode_link(global_link)),
            ("switch", encode_switch(switch)),
        ]),
    }
}

fn encode_transport(t: &TransportSpec) -> Value {
    match t {
        TransportSpec::Tcp { window_bytes } => table(vec![
            ("kind", Value::Str("tcp".into())),
            ("window_bytes", Value::Int(*window_bytes as i64)),
        ]),
        TransportSpec::Gm { window_bytes } => table(vec![
            ("kind", Value::Str("gm".into())),
            ("window_bytes", Value::Int(*window_bytes as i64)),
        ]),
    }
}

fn encode_mpi(m: &MpiSpec) -> Value {
    let mut entries = Vec::new();
    if let Some(v) = m.eager_threshold {
        entries.push(("eager_threshold", Value::Int(v as i64)));
    }
    if let Some(v) = m.send_overhead_ns {
        entries.push(("send_overhead_ns", Value::Int(v as i64)));
    }
    if let Some(v) = m.recv_overhead_ns {
        entries.push(("recv_overhead_ns", Value::Int(v as i64)));
    }
    if let Some(v) = m.hiccup_probability {
        entries.push(("hiccup_probability", Value::Float(v)));
    }
    table(entries)
}

fn encode_workload(w: &WorkloadSpec) -> Value {
    match w {
        WorkloadSpec::Uniform { algorithm } => table(vec![
            ("kind", Value::Str("uniform".into())),
            ("algorithm", Value::Str(algorithm.clone())),
        ]),
        WorkloadSpec::Skewed {
            hot_ranks,
            factor,
            nonblocking,
        } => table(vec![
            ("kind", Value::Str("skewed".into())),
            ("hot_ranks", Value::Int(*hot_ranks as i64)),
            ("factor", Value::Float(*factor)),
            ("nonblocking", Value::Bool(*nonblocking)),
        ]),
        WorkloadSpec::Sparse {
            density,
            nonblocking,
        } => table(vec![
            ("kind", Value::Str("sparse".into())),
            ("density", Value::Float(*density)),
            ("nonblocking", Value::Bool(*nonblocking)),
        ]),
        WorkloadSpec::Permutation => table(vec![("kind", Value::Str("permutation".into()))]),
        WorkloadSpec::Incast { receivers } => table(vec![
            ("kind", Value::Str("incast".into())),
            ("receivers", Value::Int(*receivers as i64)),
        ]),
        WorkloadSpec::Outcast { senders } => table(vec![
            ("kind", Value::Str("outcast".into())),
            ("senders", Value::Int(*senders as i64)),
        ]),
        WorkloadSpec::Phases { phases } => table(vec![
            ("kind", Value::Str("phases".into())),
            (
                "phases",
                Value::Array(phases.iter().map(encode_workload).collect()),
            ),
        ]),
    }
}

fn encode_sweep(s: &SweepSpec) -> Value {
    table(vec![
        (
            "nodes",
            Value::Array(s.nodes.iter().map(|&n| Value::Int(n as i64)).collect()),
        ),
        (
            "message_bytes",
            Value::Array(
                s.message_bytes
                    .iter()
                    .map(|&m| Value::Int(m as i64))
                    .collect(),
            ),
        ),
        ("warmup", Value::Int(s.warmup as i64)),
        ("reps", Value::Int(s.reps as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_inconsistencies() {
        let mut spec = crate::registry::builtin()
            .into_iter()
            .find(|s| s.name == "fat-tree-uniform")
            .expect("registered");
        spec.validate().unwrap();
        spec.sweep.nodes = vec![10_000];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn every_builtin_round_trips_through_toml() {
        for spec in crate::registry::builtin() {
            let text = spec.to_toml_string();
            let parsed = ScenarioSpec::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(spec, parsed, "round-trip of {}", spec.name);
        }
    }

    #[test]
    fn physically_impossible_parameters_are_rejected() {
        let mut spec = crate::registry::by_name("incast-burst").expect("registered");
        spec.validate().unwrap();
        if let TopologySpec::SingleSwitch { ref mut link, .. } = spec.topology {
            link.bandwidth_bytes_per_sec = 0.0;
        }
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        if let TopologySpec::SingleSwitch { ref mut link, .. } = spec.topology {
            link.bandwidth_bytes_per_sec = f64::INFINITY;
        }
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        if let TopologySpec::SingleSwitch {
            ref mut link,
            ref mut switch,
            ..
        } = spec.topology
        {
            link.bandwidth_bytes_per_sec = 125e6;
            switch.shared_buffer_bytes = 0;
        }
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mut spec = crate::registry::by_name("incast-burst").expect("registered");
        spec.mpi.hiccup_probability = Some(1.5);
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.mpi.hiccup_probability = Some(1.0);
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let doc = r#"
name = "x"
[topology]
kind = "moebius"
[workload]
kind = "uniform"
"#;
        assert!(matches!(
            ScenarioSpec::from_toml_str(doc),
            Err(SpecError::Invalid(_))
        ));
    }
}
