//! Turns a [`WorkloadSpec`] into per-rank programs and into the MED the
//! model bound is computed from.
//!
//! Every irregular pattern is expressed as an [`ExchangeMatrix`] (the
//! paper's weighted total-exchange digraph), so the Claims 1–3 lower bound
//! applies uniformly: the executor's `model_secs` column is the MED time
//! bound under the scenario's measured Hockney parameters, and
//! `error_percent` is the paper's `(measured/estimated − 1)·100 %`.

use crate::spec::WorkloadSpec;
use contention_model::hockney::HockneyParams;
use contention_model::med::Med;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simmpi::prelude::*;
use simmpi::Op;

/// Looks up an All-to-All algorithm by its stable name.
pub fn algorithm_by_name(name: &str) -> Option<AllToAllAlgorithm> {
    AllToAllAlgorithm::all()
        .into_iter()
        .find(|a| a.name() == name)
}

/// The exchange matrix of one phase, if the phase is matrix-shaped
/// (everything except `Uniform`, which runs a named algorithm directly,
/// and `Phases`, which recurses).
fn phase_matrix(w: &WorkloadSpec, n: usize, m: u64, seed: u64) -> Option<ExchangeMatrix> {
    match w {
        WorkloadSpec::Uniform { .. } | WorkloadSpec::Phases { .. } => None,
        WorkloadSpec::Skewed {
            hot_ranks, factor, ..
        } => {
            let hot = (*factor * m as f64).round().max(1.0) as u64;
            let sizes = (0..n)
                .map(|i| {
                    let row_m = if i < *hot_ranks { hot } else { m };
                    (0..n).map(|j| if i == j { 0 } else { row_m }).collect()
                })
                .collect();
            Some(ExchangeMatrix::new(sizes))
        }
        WorkloadSpec::Sparse { density, .. } => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
            let mut sizes: Vec<Vec<u64>> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            if i != j && rng.gen_bool(*density) {
                                m
                            } else {
                                0
                            }
                        })
                        .collect()
                })
                .collect();
            // Keep every rank participating so no program is empty: give
            // rank i a guaranteed message to its right neighbour.
            for (i, row) in sizes.iter_mut().enumerate() {
                let j = (i + 1) % n;
                if row[j] == 0 {
                    row[j] = m;
                }
            }
            Some(ExchangeMatrix::new(sizes))
        }
        WorkloadSpec::Permutation => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0EE7_ABCD);
            let perm = derangement(n, &mut rng);
            let sizes = (0..n)
                .map(|i| (0..n).map(|j| if perm[i] == j { m } else { 0 }).collect())
                .collect();
            Some(ExchangeMatrix::new(sizes))
        }
        WorkloadSpec::Incast { receivers } => {
            let sizes = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            // Senders are the non-sink ranks; each sends to
                            // one sink, round-robin.
                            if i >= *receivers && j == (i - receivers) % *receivers {
                                m
                            } else {
                                0
                            }
                        })
                        .collect()
                })
                .collect();
            Some(ExchangeMatrix::new(sizes))
        }
        WorkloadSpec::Outcast { senders } => {
            let sizes = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| if i < *senders && j != i { m } else { 0 })
                        .collect()
                })
                .collect();
            Some(ExchangeMatrix::new(sizes))
        }
    }
}

/// A random permutation with no fixed point (so every rank both sends and
/// receives exactly once).
fn derangement(n: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(n >= 2);
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        perm.shuffle(rng);
        if (0..n).all(|i| perm[i] != i) {
            return perm;
        }
    }
}

fn phase_programs(w: &WorkloadSpec, n: usize, m: u64, seed: u64) -> Vec<Vec<Op>> {
    match w {
        WorkloadSpec::Uniform { algorithm } => algorithm_by_name(algorithm)
            .expect("validated algorithm name")
            .programs(n, m),
        WorkloadSpec::Phases { .. } => unreachable!("phases cannot nest"),
        matrixy => {
            let matrix = phase_matrix(matrixy, n, m, seed).expect("matrix-shaped phase");
            let nonblocking = match matrixy {
                WorkloadSpec::Skewed { nonblocking, .. }
                | WorkloadSpec::Sparse { nonblocking, .. } => *nonblocking,
                // One message per rank (permutation) or pure fan-in/out:
                // posting order is irrelevant, use the post-all schedule.
                _ => true,
            };
            if nonblocking {
                matrix.nonblocking_programs()
            } else {
                matrix.direct_exchange_programs()
            }
        }
    }
}

/// Builds the per-rank programs for one cell: `n` ranks, `m` bytes per
/// pair (interpretation is per-pattern), derived RNG streams from `seed`.
/// Multi-phase workloads are separated by barriers so phases do not
/// overlap.
pub fn programs(w: &WorkloadSpec, n: usize, m: u64, seed: u64) -> Vec<Vec<Op>> {
    match w {
        WorkloadSpec::Phases { phases } => {
            let mut combined = vec![Vec::new(); n];
            for (idx, phase) in phases.iter().enumerate() {
                let phase_seed = seed.wrapping_add(0x9E37 * idx as u64);
                for (rank, mut prog) in phase_programs(phase, n, m, phase_seed)
                    .into_iter()
                    .enumerate()
                {
                    combined[rank].append(&mut prog);
                }
                if idx + 1 < phases.len() {
                    for prog in &mut combined {
                        prog.push(Op::Barrier);
                    }
                }
            }
            combined
        }
        single => phase_programs(single, n, m, seed),
    }
}

/// The MED lower bound (Claims 1–3) for this cell under `params`. For
/// multi-phase workloads the per-phase bounds add (phases are separated by
/// barriers).
pub fn model_bound(w: &WorkloadSpec, n: usize, m: u64, seed: u64, params: &HockneyParams) -> f64 {
    match w {
        WorkloadSpec::Uniform { .. } => Med::uniform_alltoall(n, m).time_lower_bound(params),
        WorkloadSpec::Phases { phases } => phases
            .iter()
            .enumerate()
            .map(|(idx, phase)| {
                let phase_seed = seed.wrapping_add(0x9E37 * idx as u64);
                model_bound(phase, n, m, phase_seed, params)
            })
            .sum(),
        matrixy => {
            let matrix = phase_matrix(matrixy, n, m, seed).expect("matrix-shaped phase");
            let mut med = Med::new(n);
            for i in 0..n {
                for j in 0..n {
                    let b = matrix.bytes(i, j);
                    if b > 0 {
                        med.add_message(i, j, b);
                    }
                }
            }
            med.time_lower_bound(params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_balanced(progs: &[Vec<Op>]) {
        // Every send has a matching posted receive.
        let n = progs.len();
        let mut sent = vec![vec![0u64; n]; n];
        let mut recvd = vec![vec![0u64; n]; n];
        for (i, prog) in progs.iter().enumerate() {
            for op in prog {
                if let Op::Transfer { sends, recvs } = op {
                    for &(to, _) in sends {
                        sent[i][to] += 1;
                    }
                    for &from in recvs {
                        recvd[from][i] += 1;
                    }
                }
            }
        }
        assert_eq!(sent, recvd);
    }

    #[test]
    fn every_pattern_produces_matched_programs() {
        let specs = [
            WorkloadSpec::Uniform {
                algorithm: "direct".into(),
            },
            WorkloadSpec::Skewed {
                hot_ranks: 2,
                factor: 4.0,
                nonblocking: true,
            },
            WorkloadSpec::Sparse {
                density: 0.4,
                nonblocking: false,
            },
            WorkloadSpec::Permutation,
            WorkloadSpec::Incast { receivers: 2 },
            WorkloadSpec::Outcast { senders: 1 },
        ];
        for w in &specs {
            let progs = programs(w, 6, 10_000, 42);
            assert_eq!(progs.len(), 6, "{}", w.kind());
            check_balanced(&progs);
        }
    }

    #[test]
    fn permutation_is_a_derangement_and_seed_dependent() {
        let m1 = phase_matrix(&WorkloadSpec::Permutation, 8, 100, 1).unwrap();
        let m2 = phase_matrix(&WorkloadSpec::Permutation, 8, 100, 1).unwrap();
        assert_eq!(m1, m2, "same seed, same pattern");
        for i in 0..8 {
            assert_eq!(m1.send_volume(i), 100);
            assert_eq!(m1.recv_volume(i), 100);
            assert_eq!(m1.bytes(i, i), 0);
        }
        let m3 = phase_matrix(&WorkloadSpec::Permutation, 8, 100, 2).unwrap();
        assert_ne!(m1, m3, "different seed, different permutation");
    }

    #[test]
    fn skewed_hot_ranks_send_more() {
        let w = WorkloadSpec::Skewed {
            hot_ranks: 1,
            factor: 3.0,
            nonblocking: true,
        };
        let m = phase_matrix(&w, 4, 1000, 0).unwrap();
        assert_eq!(m.send_volume(0), 9000);
        assert_eq!(m.send_volume(1), 3000);
    }

    #[test]
    fn phases_join_with_barriers() {
        let w = WorkloadSpec::Phases {
            phases: vec![
                WorkloadSpec::Permutation,
                WorkloadSpec::Uniform {
                    algorithm: "direct".into(),
                },
            ],
        };
        let progs = programs(&w, 4, 1000, 9);
        for prog in &progs {
            assert_eq!(
                prog.iter().filter(|op| matches!(op, Op::Barrier)).count(),
                1
            );
        }
    }

    #[test]
    fn model_bound_positive_and_monotone_in_size() {
        let params = HockneyParams::new(50e-6, 8e-9);
        for w in [
            WorkloadSpec::Uniform {
                algorithm: "direct".into(),
            },
            WorkloadSpec::Incast { receivers: 1 },
            WorkloadSpec::Permutation,
        ] {
            let small = model_bound(&w, 6, 10_000, 3, &params);
            let large = model_bound(&w, 6, 1_000_000, 3, &params);
            assert!(small > 0.0, "{}", w.kind());
            assert!(large > small, "{}", w.kind());
        }
    }
}
