//! The parallel batch executor: expands scenario × grid products into
//! cells, shards them across worker threads, and attaches model-error
//! columns.
//!
//! Determinism contract: a cell's result depends only on `(scenario name,
//! base seed, n, message bytes)` — never on the worker count or schedule —
//! so `--workers 1` and `--workers 8` produce byte-identical reports. The
//! work queue is the generalization of `contention_lab::runner::
//! parallel_map`, which it reuses: one flat queue across *all* scenarios
//! of a batch, so a wide scenario cannot serialize a narrow one behind it.

use crate::spec::{ScenarioSpec, SpecError};
use crate::{topology, workload};
use contention_lab::runner::parallel_map;
use contention_model::hockney::HockneyParams;
use contention_model::metrics::estimation_error_percent;
use simmpi::harness::ping_pong;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads sharing the cell queue.
    pub workers: usize,
    /// Base seed; every cell derives its own stream.
    pub base_seed: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workers: contention_lab::runner::default_workers(),
            base_seed: 42,
        }
    }
}

/// One grid cell's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: String,
    /// Workload family (`uniform`, `incast`, …).
    pub workload: String,
    /// Topology family (`fat-tree`, `preset`, …).
    pub topology: String,
    /// Rank count.
    pub n: usize,
    /// Per-pair message size in bytes.
    pub message_bytes: u64,
    /// The cell's derived seed (reproduce with `ctnsim sweep … --seed`).
    pub cell_seed: u64,
    /// Mean simulated completion over the measured repetitions, seconds.
    pub mean_secs: f64,
    /// Fastest repetition, seconds.
    pub min_secs: f64,
    /// Slowest repetition, seconds.
    pub max_secs: f64,
    /// The MED lower bound under the scenario's Hockney fit, seconds.
    pub model_secs: f64,
    /// The paper's estimation error `(measured/estimated − 1)·100`.
    pub error_percent: f64,
}

/// A whole scenario's results plus its calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Scenario name.
    pub scenario: String,
    /// Fitted Hockney α in seconds (per-message startup).
    pub alpha_secs: f64,
    /// Fitted Hockney β in seconds/byte.
    pub beta_secs_per_byte: f64,
    /// One row per grid cell, in grid order (nodes-major).
    pub cells: Vec<CellResult>,
}

/// SplitMix64-style mixing for per-cell seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic seed of one cell: a pure function of scenario name,
/// base seed and the cell's coordinates (not its position in the grid, so
/// adding grid points does not reseed existing ones).
pub fn cell_seed(scenario: &str, base_seed: u64, n: usize, message_bytes: u64) -> u64 {
    mix(base_seed
        .wrapping_add(name_hash(scenario))
        .wrapping_add(mix(n as u64).rotate_left(17))
        .wrapping_add(mix(message_bytes).rotate_left(31)))
}

struct Cell {
    spec_idx: usize,
    n: usize,
    message_bytes: u64,
    seed: u64,
}

/// Measures the scenario's Hockney parameters: a 2-rank ping-pong on the
/// scenario's own fabric across the standard fit sizes. Cheap (seconds of
/// simulated time on two hosts) and faithful to the paper's procedure.
pub fn calibrate_hockney(spec: &ScenarioSpec, base_seed: u64) -> Result<HockneyParams, SpecError> {
    let sizes = [1024u64, 16 * 1024, 131_072, 524_288, 1_048_576];
    let mut world = topology::build_world(spec, 2, mix(base_seed ^ name_hash(&spec.name)))?;
    let points: Vec<(u64, f64)> = ping_pong(&mut world, 0, 1, &sizes, 3)
        .into_iter()
        .map(|p| (p.size, p.half_rtt_secs))
        .collect();
    HockneyParams::fit(&points)
        .map_err(|e| SpecError::Invalid(format!("{}: Hockney fit failed: {e}", spec.name)))
}

fn run_cell(
    spec: &ScenarioSpec,
    cell: &Cell,
    hockney: &HockneyParams,
) -> Result<CellResult, SpecError> {
    let mut world = topology::build_world(spec, cell.n, cell.seed)?;
    let programs = workload::programs(&spec.workload, cell.n, cell.message_bytes, cell.seed);
    for _ in 0..spec.sweep.warmup {
        let _ = world.run(programs.clone());
    }
    let times: Vec<f64> = (0..spec.sweep.reps)
        .map(|_| world.run(programs.clone()).duration_secs())
        .collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let model = workload::model_bound(
        &spec.workload,
        cell.n,
        cell.message_bytes,
        cell.seed,
        hockney,
    );
    Ok(CellResult {
        scenario: spec.name.clone(),
        workload: spec.workload.kind().to_string(),
        topology: spec.topology.kind().to_string(),
        n: cell.n,
        message_bytes: cell.message_bytes,
        cell_seed: cell.seed,
        mean_secs: mean,
        min_secs: min,
        max_secs: max,
        model_secs: model,
        error_percent: estimation_error_percent(mean, model),
    })
}

/// Runs one scenario's full grid. See [`run_batches`] for several at once.
pub fn run_batch(spec: &ScenarioSpec, cfg: &BatchConfig) -> Result<BatchResult, SpecError> {
    run_batches(std::slice::from_ref(spec), cfg).map(|mut v| v.remove(0))
}

/// Runs several scenarios as **one** flat cell queue over `cfg.workers`
/// threads. Results come back grouped per scenario, each grid in
/// deterministic nodes-major order regardless of worker count.
pub fn run_batches(
    specs: &[ScenarioSpec],
    cfg: &BatchConfig,
) -> Result<Vec<BatchResult>, SpecError> {
    assert!(cfg.workers > 0, "need at least one worker");
    for spec in specs {
        spec.validate()?;
    }
    // Calibrations are tiny 2-rank sims; fold them into the same parallel
    // queue as real cells would be overkill — run them first, in order.
    let hockneys: Vec<HockneyParams> = specs
        .iter()
        .map(|s| calibrate_hockney(s, cfg.base_seed))
        .collect::<Result<_, _>>()?;

    let mut cells = Vec::new();
    for (spec_idx, spec) in specs.iter().enumerate() {
        for &n in &spec.sweep.nodes {
            for &m in &spec.sweep.message_bytes {
                cells.push(Cell {
                    spec_idx,
                    n,
                    message_bytes: m,
                    seed: cell_seed(&spec.name, cfg.base_seed, n, m),
                });
            }
        }
    }

    let outcomes: Vec<Result<CellResult, SpecError>> = parallel_map(cells, cfg.workers, |cell| {
        run_cell(&specs[cell.spec_idx], &cell, &hockneys[cell.spec_idx])
    });

    let mut results: Vec<BatchResult> = specs
        .iter()
        .zip(&hockneys)
        .map(|(spec, h)| BatchResult {
            scenario: spec.name.clone(),
            alpha_secs: h.alpha_secs,
            beta_secs_per_byte: h.beta_secs_per_byte,
            cells: Vec::new(),
        })
        .collect();
    // parallel_map preserves input order, so cells regroup deterministically.
    let mut idx = 0usize;
    for (spec_idx, spec) in specs.iter().enumerate() {
        let cell_count = spec.sweep.nodes.len() * spec.sweep.message_bytes.len();
        for _ in 0..cell_count {
            results[spec_idx].cells.push(outcomes[idx].clone()?);
            idx += 1;
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::by_name;

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = by_name("incast-burst").unwrap();
        let cfg1 = BatchConfig {
            workers: 1,
            base_seed: 7,
        };
        let cfg4 = BatchConfig {
            workers: 4,
            base_seed: 7,
        };
        let r1 = run_batch(&spec, &cfg1).unwrap();
        let r4 = run_batch(&spec, &cfg4).unwrap();
        assert_eq!(r1, r4);
        let csv1 = crate::report::to_csv(std::slice::from_ref(&r1));
        let csv4 = crate::report::to_csv(std::slice::from_ref(&r4));
        assert_eq!(csv1, csv4, "CSV must be byte-identical across workers");
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed("x", 1, 4, 1024);
        assert_eq!(a, cell_seed("x", 1, 4, 1024));
        assert_ne!(a, cell_seed("x", 1, 8, 1024));
        assert_ne!(a, cell_seed("x", 1, 4, 2048));
        assert_ne!(a, cell_seed("y", 1, 4, 1024));
        assert_ne!(a, cell_seed("x", 2, 4, 1024));
    }

    #[test]
    fn batch_grid_is_complete_and_ordered() {
        let spec = by_name("incast-burst").unwrap();
        let r = run_batch(
            &spec,
            &BatchConfig {
                workers: 2,
                base_seed: 3,
            },
        )
        .unwrap();
        assert_eq!(
            r.cells.len(),
            spec.sweep.nodes.len() * spec.sweep.message_bytes.len()
        );
        let mut expected = Vec::new();
        for &n in &spec.sweep.nodes {
            for &m in &spec.sweep.message_bytes {
                expected.push((n, m));
            }
        }
        let got: Vec<(usize, u64)> = r.cells.iter().map(|c| (c.n, c.message_bytes)).collect();
        assert_eq!(got, expected);
        for c in &r.cells {
            assert!(c.mean_secs > 0.0 && c.model_secs > 0.0);
            assert!(c.min_secs <= c.mean_secs && c.mean_secs <= c.max_secs);
            assert!(
                c.mean_secs >= c.model_secs * 0.99,
                "simulation beat the lower bound: {c:?}"
            );
        }
    }
}
