//! The parallel batch executor: expands scenario × grid products into
//! cells, shards them across worker threads, and attaches model-error
//! columns.
//!
//! Determinism contract: a cell's result depends only on `(scenario name,
//! base seed, n, message bytes)` — never on the worker count, the
//! schedule, the calibration cache's state, or whether anyone observes
//! the run — so `--workers 1` and `--workers 8` produce byte-identical
//! reports. The work queue is one flat LIFO across *all* scenarios of a
//! batch, so a wide scenario cannot serialize a narrow one behind it.
//!
//! Two schedule-level optimizations ride on top of that contract (neither
//! can change a single output byte):
//!
//! * **cost-aware ordering** — cells vary ~100× in simulation cost, so the
//!   queue is sorted by a predicted cost key (`rounds · n² ·
//!   ceil(m/mtu) · reps`) and the workers start the most expensive cells
//!   first. The classic LPT heuristic: the makespan is no longer hostage
//!   to a megabyte-grid cell popping last. Results are regrouped into
//!   grid order afterwards.
//! * **calibration caching** — every fit is a pure function of the fabric
//!   (topology + transport + MPI overrides) and its derived seed, so a
//!   [`CalibrationCache`] keyed by (fabric fingerprint, seed) means
//!   repeated runs over the same specs fit each fabric once. The cache is
//!   *session-owned* (see [`crate::session`]); the process-global memo of
//!   earlier releases survives only behind the deprecated free functions.
//!
//! This module keeps the cell-level machinery and the legacy free-function
//! entry points; the public face of execution is
//! [`Session`](crate::session::Session).

use crate::error::CtnError;
use crate::metrics::{CellMetrics, SessionMetrics, WorkerMetrics};
use crate::session::{CalibrationCache, CancelToken, RunEvent};
use crate::spec::{Backend, ScenarioSpec, SpecError};
use crate::{topology, workload};
use contention_lab::runner::parallel_map;
use contention_model::hockney::HockneyParams;
use contention_model::metrics::estimation_error_percent;
use contention_model::saturation::SaturationModel;
use contention_model::signature::ContentionSignature;
use simmpi::harness::ping_pong;
use simmpi::world::{RunInterrupt, World};
use simnet::guard::{GuardStop, RunGuard};
use simnet::obs::{EngineRecorder, EngineTelemetry, NoopRecorder, Recorder, TelemetryConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which completion-time predictor fills the `model_secs` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelKind {
    /// The MED lower bound (Claims 1–3) under the fitted Hockney
    /// parameters — the paper's distance-from-bound baseline.
    #[default]
    Med,
    /// The contention signature (§7): `γ · MED + (n−1)·δ` above the fitted
    /// cutoff, calibrated on the scenario's own fabric.
    Signature,
    /// The saturation-ramp model: `MED · γ(n)` with γ ramping from 1 to
    /// γ∞ as the node count saturates the fabric.
    Saturation,
}

impl ModelKind {
    /// Parses the CLI's `--model` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "med" => Some(ModelKind::Med),
            "signature" => Some(ModelKind::Signature),
            "saturation" => Some(ModelKind::Saturation),
            _ => None,
        }
    }

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Med => "med",
            ModelKind::Signature => "signature",
            ModelKind::Saturation => "saturation",
        }
    }
}

/// Per-cell supervision limits. The default is **unlimited**: no limit
/// is checked, every run behaves (and renders) exactly as an
/// unsupervised one — which is what keeps the goldens byte-identical.
///
/// Each limit covers one whole cell — warmup plus every measured
/// repetition — and a tripped limit stops that cell only; the rest of
/// the batch completes and the report carries the stopped cell as a
/// status row (see [`CellStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardLimits {
    /// Wall-clock ceiling per cell.
    pub deadline: Option<Duration>,
    /// Engine-event budget per cell (rate recomputations in the fluid
    /// tier).
    pub event_budget: Option<u64>,
    /// Simulated-time ceiling per cell.
    pub sim_horizon: Option<Duration>,
}

impl GuardLimits {
    /// True when no limit is set (the default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.event_budget.is_none() && self.sim_horizon.is_none()
    }

    /// The engine guard for one cell. The deadline is anchored at the
    /// call (`now + deadline`), so build the guard when the cell starts.
    /// The session's cancellation flag is always wired in — that is what
    /// makes cancellation preempt a cell *mid-run* at the engine's check
    /// points instead of only between cells.
    fn guard(&self, cancel: &CancelToken) -> RunGuard {
        let mut guard = RunGuard::unlimited().with_cancel_flag(cancel.flag());
        if let Some(deadline) = self.deadline {
            guard = guard.with_deadline(Instant::now() + deadline);
        }
        if let Some(budget) = self.event_budget {
            guard = guard.with_event_budget(budget);
        }
        if let Some(horizon) = self.sim_horizon {
            guard = guard.with_horizon_ns(horizon.as_nanos().min(u64::MAX as u128) as u64);
        }
        guard
    }

    /// Provenance string for a tripped wall-clock deadline.
    fn deadline_limit(&self) -> String {
        match self.deadline {
            Some(d) => format!("wall-clock deadline {d:?}"),
            None => "wall-clock deadline".to_string(),
        }
    }

    /// Maps an engine interruption to the cell status it reports,
    /// attaching the limit that stopped the cell as provenance.
    fn status_of(&self, interrupt: RunInterrupt) -> CellStatus {
        match interrupt {
            RunInterrupt::Guard(GuardStop::Deadline) => CellStatus::TimedOut {
                limit: self.deadline_limit(),
            },
            RunInterrupt::Guard(GuardStop::Horizon { horizon_ns }) => CellStatus::TimedOut {
                limit: format!("simulated-time horizon {horizon_ns} ns"),
            },
            RunInterrupt::Guard(GuardStop::Budget { budget }) => {
                CellStatus::BudgetExceeded { budget }
            }
            RunInterrupt::Guard(GuardStop::Cancelled) => CellStatus::Cancelled,
            RunInterrupt::Deadlocked { detail, .. } => CellStatus::Deadlocked { detail },
        }
    }
}

/// Terminal status of one grid cell under supervision.
///
/// `Ok` rows carry measurements. Every other status marks a cell the
/// supervision layer stopped: its measurement columns are `NaN` (CSV
/// renders them as `NaN`, JSON as `null`, text as `-`) and the variant
/// carries the limit or diagnostic that stopped it. A report containing
/// any non-`Ok` row renders under schema v2, which adds the `status` /
/// `status_detail` columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CellStatus {
    /// The cell ran to completion.
    #[default]
    Ok,
    /// A wall-clock deadline or simulated-time horizon stopped the cell.
    TimedOut {
        /// The limit that tripped, with its configured value.
        limit: String,
    },
    /// The event budget (packet tier) or rate-recompute budget (fluid
    /// tier) ran out.
    BudgetExceeded {
        /// The exhausted budget.
        budget: u64,
    },
    /// The engine stalled: unfinished ranks, but no pending event, timer
    /// or flow that could ever unblock them (e.g. the GM transport's
    /// tail-dropped data on a finite-buffer switch — GM never
    /// retransmits).
    Deadlocked {
        /// The stall detector's blocked-rank/connection diagnostic.
        detail: String,
    },
    /// The cell's worker panicked; the panic was isolated to this cell
    /// and the rest of the batch completed.
    Panicked {
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// The run was cancelled before or while this cell executed.
    Cancelled,
}

impl CellStatus {
    /// True for a cell that ran to completion.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok)
    }

    /// The stable kebab-case name rendered in reports and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::TimedOut { .. } => "timed-out",
            CellStatus::BudgetExceeded { .. } => "budget-exceeded",
            CellStatus::Deadlocked { .. } => "deadlocked",
            CellStatus::Panicked { .. } => "panicked",
            CellStatus::Cancelled => "cancelled",
        }
    }

    /// The status's provenance or diagnostic (empty for `Ok` and
    /// `Cancelled`, which need none).
    pub fn detail(&self) -> String {
        match self {
            CellStatus::Ok | CellStatus::Cancelled => String::new(),
            CellStatus::TimedOut { limit } => limit.clone(),
            CellStatus::BudgetExceeded { budget } => format!("event budget {budget}"),
            CellStatus::Deadlocked { detail } | CellStatus::Panicked { detail } => detail.clone(),
        }
    }
}

/// What a [`FaultPlan`] injects into one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Panic inside the per-cell isolation boundary.
    Panic,
    /// Park the worker until the cell's deadline or the session's
    /// cancellation fires (a stall under no limit stalls for real —
    /// that is what a stall means; supervised tests always set one).
    Stall,
    /// Sleep before running the cell normally: wall-clock noise only,
    /// the simulated results stay byte-identical.
    Slow(Duration),
}

/// Deterministic, test-only fault injection for the supervision layer.
///
/// A plan maps `(scenario, n, message_bytes)` cells to faults; the
/// executor's worker consults it just before simulating each cell.
/// Untouched cells run exactly as without a plan — injection happens
/// outside the engine, so it can never perturb a cell it does not name.
/// Install a plan with
/// [`SessionBuilder::inject_faults`](crate::session::SessionBuilder::inject_faults).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<(String, usize, u64), Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Panics the named cell's worker (surfaces as status `panicked`).
    pub fn panic_cell(mut self, scenario: &str, n: usize, message_bytes: u64) -> Self {
        self.faults
            .insert((scenario.to_string(), n, message_bytes), Fault::Panic);
        self
    }

    /// Stalls the named cell until its deadline or a cancellation fires
    /// (surfaces as status `timed-out` or `cancelled`).
    pub fn stall_cell(mut self, scenario: &str, n: usize, message_bytes: u64) -> Self {
        self.faults
            .insert((scenario.to_string(), n, message_bytes), Fault::Stall);
        self
    }

    /// Delays the named cell by `delay` before running it normally (the
    /// cell still reports `ok` with byte-identical measurements).
    pub fn slow_cell(
        mut self,
        scenario: &str,
        n: usize,
        message_bytes: u64,
        delay: Duration,
    ) -> Self {
        self.faults
            .insert((scenario.to_string(), n, message_bytes), Fault::Slow(delay));
        self
    }

    fn fault_for(&self, scenario: &str, n: usize, message_bytes: u64) -> Option<Fault> {
        self.faults
            .get(&(scenario.to_string(), n, message_bytes))
            .copied()
    }
}

/// Executor configuration: the policy a
/// [`Session`](crate::session::Session) is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads sharing the cell queue.
    pub workers: usize,
    /// Base seed; every cell derives its own stream.
    pub base_seed: u64,
    /// Predictor behind the `model_secs` / `error_percent` columns.
    pub model: ModelKind,
    /// Per-cell supervision limits (default unlimited).
    pub limits: GuardLimits,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workers: contention_lab::runner::default_workers(),
            base_seed: 42,
            model: ModelKind::Med,
            limits: GuardLimits::default(),
        }
    }
}

/// One grid cell's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: String,
    /// Workload family (`uniform`, `incast`, …).
    pub workload: String,
    /// Topology family (`fat-tree`, `preset`, …).
    pub topology: String,
    /// Rank count.
    pub n: usize,
    /// Per-pair message size in bytes.
    pub message_bytes: u64,
    /// The cell's derived seed (reproduce with `ctnsim sweep … --seed`).
    pub cell_seed: u64,
    /// Mean simulated completion over the measured repetitions, seconds.
    pub mean_secs: f64,
    /// Fastest repetition, seconds.
    pub min_secs: f64,
    /// Slowest repetition, seconds.
    pub max_secs: f64,
    /// The selected model's prediction (the MED lower bound under the
    /// scenario's Hockney fit by default), seconds.
    pub model_secs: f64,
    /// The paper's estimation error `(measured/estimated − 1)·100`.
    pub error_percent: f64,
    /// Terminal status under supervision; non-`Ok` rows carry `NaN`
    /// measurements and the limit or diagnostic that stopped them.
    pub status: CellStatus,
}

/// A whole scenario's results plus its calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Scenario name.
    pub scenario: String,
    /// Fitted Hockney α in seconds (per-message startup).
    pub alpha_secs: f64,
    /// Fitted Hockney β in seconds/byte.
    pub beta_secs_per_byte: f64,
    /// One row per grid cell, in grid order (nodes-major).
    pub cells: Vec<CellResult>,
}

/// SplitMix64-style mixing for per-cell seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    crate::spec::fnv1a(name.as_bytes())
}

/// The deterministic seed of one cell: a pure function of scenario name,
/// base seed and the cell's coordinates (not its position in the grid, so
/// adding grid points does not reseed existing ones).
pub fn cell_seed(scenario: &str, base_seed: u64, n: usize, message_bytes: u64) -> u64 {
    mix(base_seed
        .wrapping_add(name_hash(scenario))
        .wrapping_add(mix(n as u64).rotate_left(17))
        .wrapping_add(mix(message_bytes).rotate_left(31)))
}

struct Cell {
    spec_idx: usize,
    /// Position in the deterministic nodes-major output order, across the
    /// whole batch.
    flat_idx: usize,
    /// Position in the cost-aware execution schedule (0 pops first);
    /// assigned after the LPT sort. Telemetry only — never affects output.
    schedule_index: usize,
    n: usize,
    message_bytes: u64,
    seed: u64,
}

/// Predicted relative cost of a cell: `rounds · n² · packets-per-pair ·
/// measured repetitions`. Only the *ordering* matters (longest cells are
/// started first), so crude is fine; `u128` keeps megabyte × high-n grids
/// from overflowing.
fn cell_cost(spec: &ScenarioSpec, cell: &Cell) -> u128 {
    let mtu = spec.transport.to_kind().mtu().max(1) as u64;
    let packets = cell.message_bytes.div_ceil(mtu).max(1);
    let rounds = match &spec.workload {
        crate::spec::WorkloadSpec::Phases { phases } => phases.len().max(1),
        _ => 1,
    } as u128;
    let reps = (spec.sweep.warmup + spec.sweep.reps).max(1) as u128;
    rounds * (cell.n as u128) * (cell.n as u128) * packets as u128 * reps
}

/// The message carried by every legacy [`SpecError`], without the
/// `invalid scenario:` display prefix — keeps error text stable when the
/// typed hierarchy round-trips back through the deprecated shims.
fn spec_error_detail(e: SpecError) -> String {
    match e {
        SpecError::Invalid(m) => m,
        other => other.to_string(),
    }
}

/// Measures the scenario's Hockney parameters: a 2-rank ping-pong on the
/// scenario's own fabric across the standard fit sizes. Cheap (seconds of
/// simulated time on two hosts) and faithful to the paper's procedure.
/// Fits are memoized per (fabric fingerprint, seed) in `cache`.
pub(crate) fn hockney_fit(
    cache: &CalibrationCache,
    spec: &ScenarioSpec,
    base_seed: u64,
) -> Result<HockneyParams, CtnError> {
    let seed = mix(base_seed ^ name_hash(&spec.name));
    let key = (spec.fabric_fingerprint(), seed);
    if let Some(hit) = cache.hockney.lock().expect("cache lock").get(&key) {
        cache.note_hit();
        return Ok(*hit);
    }
    cache.note_miss();
    let sizes = [1024u64, 16 * 1024, 131_072, 524_288, 1_048_576];
    let mut world = topology::build_world(spec, 2, seed)
        .map_err(|e| CtnError::calibration(&spec.name, spec_error_detail(e)))?;
    let points: Vec<(u64, f64)> = ping_pong(&mut world, 0, 1, &sizes, 3)
        .into_iter()
        .map(|p| (p.size, p.half_rtt_secs))
        .collect();
    let fit = HockneyParams::fit(&points)
        .map_err(|e| CtnError::calibration(&spec.name, format!("Hockney fit failed: {e}")))?;
    cache.hockney.lock().expect("cache lock").insert(key, fit);
    cache.note_insert();
    Ok(fit)
}

/// A per-scenario prediction context: the Hockney fit plus whatever extra
/// calibration the selected model needs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ModelCtx {
    Med,
    Signature(ContentionSignature),
    Saturation(SaturationModel),
}

/// Uniform direct All-to-All completion times on the scenario's fabric —
/// the sample measurements the signature and saturation fits regress on
/// (the paper's §8 procedure: the signature belongs to the *network*, so
/// it is always fitted on the uniform exchange).
fn sample_alltoall(
    spec: &ScenarioSpec,
    n: usize,
    sizes: &[u64],
    seed: u64,
) -> Result<Vec<(u64, f64)>, CtnError> {
    let algo = workload::algorithm_by_name("direct").expect("built-in algorithm");
    let mut world = topology::build_world(spec, n, seed)
        .map_err(|e| CtnError::calibration(&spec.name, spec_error_detail(e)))?;
    Ok(sizes
        .iter()
        .map(|&m| (m, world.run(algo.programs(n, m)).duration_secs()))
        .collect())
}

/// Fits (or recalls) the extra calibration the selected model needs. The
/// signature and saturation fits run whole sample All-to-Alls (~100× a
/// ping-pong), so the memo in `cache` matters even more than for the
/// Hockney fit. Sound because the fit depends only on the fabric (its
/// capacity-derived sample sizes included) and the derived seed — never
/// on the sweep grid.
pub(crate) fn model_ctx(
    cache: &CalibrationCache,
    spec: &ScenarioSpec,
    hockney: HockneyParams,
    base_seed: u64,
    model: ModelKind,
) -> Result<ModelCtx, CtnError> {
    if matches!(model, ModelKind::Med) {
        return Ok(ModelCtx::Med);
    }
    let seed = mix(base_seed ^ name_hash(&spec.name) ^ 0x5160_2A7E);
    let key = (spec.fabric_fingerprint(), seed, model.name());
    if let Some(hit) = cache.model.lock().expect("cache lock").get(&key) {
        cache.note_hit();
        return Ok(*hit);
    }
    cache.note_miss();
    let fit_err = |e: contention_model::error::ModelError| {
        CtnError::calibration(&spec.name, format!("{} fit failed: {e}", model.name()))
    };
    let capacity = topology::capacity(&spec.topology).map_err(CtnError::Spec)?;
    let ctx = match model {
        ModelKind::Med => unreachable!("handled above"),
        ModelKind::Signature => {
            // One sample node count (the paper's n′), ≥4 message sizes.
            // Derived from the fabric's capacity — never from the sweep
            // grid — so the same (scenario, seed, n, m) cell keeps the
            // same prediction no matter what else the grid contains.
            let sample_n = capacity.clamp(2, 8);
            let sizes = [64 * 1024u64, 128 * 1024, 256 * 1024, 512 * 1024, 1_048_576];
            let samples = sample_alltoall(spec, sample_n, &sizes, seed)?;
            ContentionSignature::fit(hockney, sample_n, &samples)
                .map(ModelCtx::Signature)
                .map_err(fit_err)?
        }
        ModelKind::Saturation => {
            // Several node counts so the γ(n) ramp is identifiable. On
            // tiny fabrics the standard rungs collapse to [2]; fall back
            // to the capacity itself so any ≥3-host topology still fits.
            let mut ladder: Vec<usize> = [2usize, 4, 8]
                .into_iter()
                .filter(|&n| n <= capacity)
                .collect();
            if ladder.len() < 2 && capacity >= 3 && !ladder.contains(&capacity) {
                ladder.push(capacity);
            }
            if ladder.len() < 2 {
                return Err(CtnError::calibration(
                    &spec.name,
                    format!("topology capacity {capacity} too small for a saturation fit"),
                ));
            }
            let sizes = [128 * 1024u64, 512 * 1024, 1_048_576];
            let mut samples = Vec::with_capacity(ladder.len() * sizes.len());
            for &n in &ladder {
                for (m, t) in sample_alltoall(spec, n, &sizes, mix(seed ^ n as u64))? {
                    samples.push((n, m, t));
                }
            }
            SaturationModel::fit(hockney, &samples)
                .map(ModelCtx::Saturation)
                .map_err(fit_err)?
        }
    };
    cache.model.lock().expect("cache lock").insert(key, ctx);
    cache.note_insert();
    Ok(ctx)
}

impl ModelCtx {
    /// The selected model's completion-time prediction for one cell. Every
    /// predictor scales the workload's MED bound, so irregular exchanges
    /// are handled uniformly; for the uniform All-to-All the signature
    /// form reduces exactly to the paper's eq. 5.
    fn predict(&self, med_bound: f64, n: usize, m: u64) -> f64 {
        match self {
            ModelCtx::Med => med_bound,
            ModelCtx::Signature(sig) => {
                let delta = if sig.delta_active(m) {
                    (n.saturating_sub(1)) as f64 * sig.delta_secs
                } else {
                    0.0
                };
                med_bound * sig.gamma + delta
            }
            ModelCtx::Saturation(sat) => med_bound * sat.gamma_at(n),
        }
    }
}

/// The report row of a cell the supervision layer stopped: coordinates
/// and status only, `NaN` measurements.
fn stopped_cell(spec: &ScenarioSpec, cell: &Cell, status: CellStatus) -> CellResult {
    CellResult {
        scenario: spec.name.clone(),
        workload: spec.workload.kind().to_string(),
        topology: spec.topology.kind().to_string(),
        n: cell.n,
        message_bytes: cell.message_bytes,
        cell_seed: cell.seed,
        mean_secs: f64::NAN,
        min_secs: f64::NAN,
        max_secs: f64::NAN,
        model_secs: f64::NAN,
        error_percent: f64::NAN,
        status,
    }
}

/// Simulates one cell, dispatching on the spec's backend and on whether
/// telemetry is wanted. The packet/`None` arm runs the no-op recorder —
/// the exact engine the goldens pin — and both telemetry arms produce
/// byte-identical [`CellResult`]s. A cell an engine guard stops (or the
/// stall detector flags) comes back as `Ok` with a non-`Ok`
/// [`CellStatus`]; `Err` is reserved for hard failures (invalid builds),
/// which still fail the whole run.
fn run_cell(
    spec: &ScenarioSpec,
    cell: &Cell,
    hockney: &HockneyParams,
    ctx: &ModelCtx,
    telemetry: Option<&TelemetryConfig>,
    limits: &GuardLimits,
    cancel: &CancelToken,
) -> Result<(CellResult, Option<EngineTelemetry>), CtnError> {
    if spec.backend == Backend::Fluid {
        return run_cell_fluid(spec, cell, hockney, ctx, telemetry, limits, cancel);
    }
    match telemetry {
        None => {
            let (result, _world) =
                run_cell_in(spec, cell, hockney, ctx, NoopRecorder, limits, cancel)?;
            Ok((result, None))
        }
        Some(cfg) => {
            let recorder = EngineRecorder::new(cfg.clone());
            let (result, mut world) =
                run_cell_in(spec, cell, hockney, ctx, recorder, limits, cancel)?;
            let engine = world.sim_mut().recorder_mut().take_telemetry();
            Ok((result, Some(engine)))
        }
    }
}

/// The fluid-tier cell path: builds the bare fabric once and interprets
/// the cell's programs flow-by-flow. The fluid interpreter is fully
/// deterministic and stateless across repetitions (no queues or
/// transport windows survive a run), so warmup and repeated measurements
/// would reproduce the same number — one run fills mean = min = max.
/// Model columns are computed exactly as on the packet path, so the
/// error column reads as distance-from-bound in both tiers.
fn run_cell_fluid(
    spec: &ScenarioSpec,
    cell: &Cell,
    hockney: &HockneyParams,
    ctx: &ModelCtx,
    telemetry: Option<&TelemetryConfig>,
    limits: &GuardLimits,
    cancel: &CancelToken,
) -> Result<(CellResult, Option<EngineTelemetry>), CtnError> {
    let (topo, hosts, mpi) = topology::build_fluid_fabric(spec, cell.n, cell.seed)
        .map_err(|e| CtnError::execution(&spec.name, spec_error_detail(e)))?;
    let world = simmpi::FluidWorld::new(&topo, hosts, mpi);
    let programs = workload::programs(&spec.workload, cell.n, cell.message_bytes, cell.seed);
    let guard = limits.guard(cancel);
    let (outcome, engine) = match telemetry {
        None => (world.try_run(programs, guard), None),
        Some(cfg) => {
            let (outcome, mut recorder) =
                world.try_run_with(programs, EngineRecorder::new(cfg.clone()), guard);
            (outcome, Some(recorder.take_telemetry()))
        }
    };
    let result = match outcome {
        Ok(r) => r,
        Err(interrupt) => {
            return Ok((
                stopped_cell(spec, cell, limits.status_of(interrupt)),
                engine,
            ));
        }
    };
    let secs = result.duration_secs();
    let med_bound = workload::model_bound(
        &spec.workload,
        cell.n,
        cell.message_bytes,
        cell.seed,
        hockney,
    );
    let model = ctx.predict(med_bound, cell.n, cell.message_bytes);
    let result = CellResult {
        scenario: spec.name.clone(),
        workload: spec.workload.kind().to_string(),
        topology: spec.topology.kind().to_string(),
        n: cell.n,
        message_bytes: cell.message_bytes,
        cell_seed: cell.seed,
        mean_secs: secs,
        min_secs: secs,
        max_secs: secs,
        model_secs: model,
        error_percent: estimation_error_percent(secs, model),
        status: CellStatus::Ok,
    };
    Ok((result, engine))
}

fn run_cell_in<R: Recorder>(
    spec: &ScenarioSpec,
    cell: &Cell,
    hockney: &HockneyParams,
    ctx: &ModelCtx,
    recorder: R,
    limits: &GuardLimits,
    cancel: &CancelToken,
) -> Result<(CellResult, World<R>), CtnError> {
    let mut world = topology::build_world_with(spec, cell.n, cell.seed, recorder)
        .map_err(|e| CtnError::execution(&spec.name, spec_error_detail(e)))?;
    // One guard installation spans the whole cell: budgets and the
    // horizon accumulate across warmup and every repetition.
    world.sim_mut().set_guard(limits.guard(cancel));
    let programs = workload::programs(&spec.workload, cell.n, cell.message_bytes, cell.seed);
    let mut interrupted = None;
    for _ in 0..spec.sweep.warmup {
        if let Err(i) = world.try_run(programs.clone()) {
            interrupted = Some(i);
            break;
        }
    }
    let mut times: Vec<f64> = Vec::with_capacity(spec.sweep.reps);
    if interrupted.is_none() {
        for _ in 0..spec.sweep.reps {
            match world.try_run(programs.clone()) {
                Ok(r) => times.push(r.duration_secs()),
                Err(i) => {
                    interrupted = Some(i);
                    break;
                }
            }
        }
    }
    if let Some(interrupt) = interrupted {
        return Ok((stopped_cell(spec, cell, limits.status_of(interrupt)), world));
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let med_bound = workload::model_bound(
        &spec.workload,
        cell.n,
        cell.message_bytes,
        cell.seed,
        hockney,
    );
    let model = ctx.predict(med_bound, cell.n, cell.message_bytes);
    let result = CellResult {
        scenario: spec.name.clone(),
        workload: spec.workload.kind().to_string(),
        topology: spec.topology.kind().to_string(),
        n: cell.n,
        message_bytes: cell.message_bytes,
        cell_seed: cell.seed,
        mean_secs: mean,
        min_secs: min,
        max_secs: max,
        model_secs: model,
        error_percent: estimation_error_percent(mean, model),
        status: CellStatus::Ok,
    };
    Ok((result, world))
}

/// The injected-stall cell body: parks the worker until the cell's
/// deadline or the session's cancellation fires, then reports the
/// corresponding status — the analogue of host-side code hanging
/// *outside* the engine, where no event-loop preemption point can reach.
fn stalled_cell(
    spec: &ScenarioSpec,
    cell: &Cell,
    limits: &GuardLimits,
    cancel: &CancelToken,
) -> CellResult {
    let deadline = limits.deadline.map(|d| Instant::now() + d);
    loop {
        if cancel.is_cancelled() {
            return stopped_cell(spec, cell, CellStatus::Cancelled);
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return stopped_cell(
                    spec,
                    cell,
                    CellStatus::TimedOut {
                        limit: limits.deadline_limit(),
                    },
                );
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's report of one simulated cell: the measurement plus the
/// telemetry meta the collector folds into [`SessionMetrics`].
struct CellReport {
    spec_idx: usize,
    flat_idx: usize,
    worker: usize,
    schedule_index: usize,
    start_secs: f64,
    wall_secs: f64,
    outcome: Result<(CellResult, Option<EngineTelemetry>), CtnError>,
}

/// The streaming executor core behind every [`Session`] run: calibrates,
/// queues the flat LPT-ordered cell list, shards it over `cfg.workers`
/// scoped threads, forwards [`RunEvent`]s to `observer` (on the calling
/// thread, in completion order) as results land, and reassembles batches
/// in deterministic nodes-major order.
///
/// Supervision: each cell runs under `cfg.limits` (engine guard) inside
/// a `catch_unwind` isolation boundary, so a cell that times out,
/// exhausts its budget, deadlocks, panics or is cancelled becomes a
/// status row in its batch while its siblings complete normally. Hard
/// failures (invalid builds, calibration errors) still fail the whole
/// run with a [`CtnError`]; a run cancelled before anything started
/// still returns [`CtnError::Cancelled`].
///
/// Alongside the batches it returns the run's [`SessionMetrics`] — wall
/// clock, worker occupancy, cache-counter deltas and per-cell spans are
/// always collected; per-cell engine telemetry is attached only when
/// `telemetry` is set (the `None` path runs the no-op recorder the
/// goldens pin).
///
/// [`Session`]: crate::session::Session
pub(crate) fn execute(
    specs: &[ScenarioSpec],
    cfg: &BatchConfig,
    cache: &CalibrationCache,
    telemetry: Option<&TelemetryConfig>,
    faults: Option<&FaultPlan>,
    observer: &mut dyn FnMut(RunEvent<'_>),
    cancel: &CancelToken,
) -> Result<(Vec<BatchResult>, SessionMetrics), CtnError> {
    assert!(cfg.workers > 0, "need at least one worker");
    let run_start = Instant::now();
    let cache_before = cache.stats();
    for spec in specs {
        spec.validate().map_err(CtnError::Spec)?;
    }
    // Cancellation covers the calibration phase too — uncached model fits
    // run whole sample All-to-Alls, so "prompt" must not mean "after tens
    // of seconds of fitting a run nobody wants anymore".
    let check_cancel = || {
        if cancel.is_cancelled() {
            Err(CtnError::Cancelled)
        } else {
            Ok(())
        }
    };
    check_cancel()?;
    // Hockney calibrations are tiny 2-rank sims (and memoized); folding
    // them into the parallel queue would be overkill — run them first, in
    // order.
    let hockneys: Vec<HockneyParams> = specs
        .iter()
        .map(|s| {
            check_cancel()?;
            hockney_fit(cache, s, cfg.base_seed)
        })
        .collect::<Result<_, _>>()?;
    // Model calibrations run whole sample All-to-Alls (unlike the cheap
    // ping-pongs above), so uncached fits shard across the workers; the
    // memo cache covers repeated runs over the same specs.
    let ctxs: Vec<ModelCtx> = parallel_map(
        specs.iter().zip(&hockneys).collect::<Vec<_>>(),
        cfg.workers,
        |(s, &h)| {
            check_cancel()?;
            model_ctx(cache, s, h, cfg.base_seed, cfg.model)
        },
    )
    .into_iter()
    .collect::<Result<_, _>>()?;

    let grid_sizes: Vec<usize> = specs
        .iter()
        .map(|s| s.sweep.nodes.len() * s.sweep.message_bytes.len())
        .collect();
    let mut offsets = Vec::with_capacity(specs.len());
    let mut flat_idx = 0usize;
    let mut cells = Vec::new();
    for (spec_idx, spec) in specs.iter().enumerate() {
        offsets.push(flat_idx);
        for &n in &spec.sweep.nodes {
            for &m in &spec.sweep.message_bytes {
                cells.push(Cell {
                    spec_idx,
                    flat_idx,
                    schedule_index: 0,
                    n,
                    message_bytes: m,
                    seed: cell_seed(&spec.name, cfg.base_seed, n, m),
                });
                flat_idx += 1;
            }
        }
    }
    let total = cells.len();
    for (spec, &cells_of) in specs.iter().zip(&grid_sizes) {
        observer(RunEvent::BatchStarted {
            scenario: &spec.name,
            cells: cells_of,
        });
    }

    // Cost-aware schedule: the shared queue pops from the *end* of the
    // vector, so sorting by ascending cost hands workers the most
    // expensive cells first (longest-processing-time order). Ties keep
    // descending flat order so equal-cost cells still pop in grid order.
    // Purely a schedule change: results are re-scattered into grid order
    // below, so output bytes cannot depend on it.
    cells.sort_by(|a, b| {
        cell_cost(&specs[a.spec_idx], a)
            .cmp(&cell_cost(&specs[b.spec_idx], b))
            .then(b.flat_idx.cmp(&a.flat_idx))
    });
    // Workers pop from the end, so the last element is schedule slot 0.
    for (i, cell) in cells.iter_mut().rev().enumerate() {
        cell.schedule_index = i;
    }

    let mut slots: Vec<Vec<Option<Result<CellResult, CtnError>>>> = grid_sizes
        .iter()
        .map(|&c| (0..c).map(|_| None).collect())
        .collect();
    let mut batches: Vec<Option<BatchResult>> = (0..specs.len()).map(|_| None).collect();
    let mut received = 0usize;
    let mut completed: Vec<usize> = vec![0; specs.len()];
    let spawned = cfg.workers.min(total);
    let mut worker_metrics: Vec<WorkerMetrics> = (0..spawned)
        .map(|worker| WorkerMetrics {
            worker,
            ..WorkerMetrics::default()
        })
        .collect();
    let mut cell_metrics: Vec<CellMetrics> = Vec::with_capacity(total);

    let queue = Mutex::new(cells);
    let (sender, receiver) = mpsc::channel::<CellReport>();
    std::thread::scope(|scope| {
        for worker in 0..spawned {
            let sender = sender.clone();
            let queue = &queue;
            let hockneys = &hockneys;
            let ctxs = &ctxs;
            scope.spawn(move || loop {
                if cancel.is_cancelled() {
                    break;
                }
                let cell = queue.lock().expect("queue lock").pop();
                let Some(cell) = cell else { break };
                let spec = &specs[cell.spec_idx];
                let start_secs = run_start.elapsed().as_secs_f64();
                let fault =
                    faults.and_then(|f| f.fault_for(&spec.name, cell.n, cell.message_bytes));
                // Panic isolation: a panicking cell (injected or real)
                // becomes a `panicked` status row; its siblings keep
                // running on the surviving workers.
                let caught = catch_unwind(AssertUnwindSafe(|| match fault {
                    Some(Fault::Panic) => panic!(
                        "injected fault: forced panic in cell {} n={} m={}",
                        spec.name, cell.n, cell.message_bytes
                    ),
                    Some(Fault::Stall) => {
                        Ok((stalled_cell(spec, &cell, &cfg.limits, cancel), None))
                    }
                    Some(Fault::Slow(delay)) => {
                        std::thread::sleep(delay);
                        run_cell(
                            spec,
                            &cell,
                            &hockneys[cell.spec_idx],
                            &ctxs[cell.spec_idx],
                            telemetry,
                            &cfg.limits,
                            cancel,
                        )
                    }
                    None => run_cell(
                        spec,
                        &cell,
                        &hockneys[cell.spec_idx],
                        &ctxs[cell.spec_idx],
                        telemetry,
                        &cfg.limits,
                        cancel,
                    ),
                }));
                let outcome = match caught {
                    Ok(outcome) => outcome,
                    Err(payload) => Ok((
                        stopped_cell(
                            spec,
                            &cell,
                            CellStatus::Panicked {
                                detail: panic_detail(payload.as_ref()),
                            },
                        ),
                        None,
                    )),
                };
                let report = CellReport {
                    spec_idx: cell.spec_idx,
                    flat_idx: cell.flat_idx,
                    worker,
                    schedule_index: cell.schedule_index,
                    start_secs,
                    wall_secs: run_start.elapsed().as_secs_f64() - start_secs,
                    outcome,
                };
                if sender.send(report).is_err() {
                    break;
                }
            });
        }
        drop(sender);
        // The calling thread is the collector: events stream to the
        // observer while workers are still simulating.
        for report in receiver {
            let spec_idx = report.spec_idx;
            let spec = &specs[spec_idx];
            received += 1;
            let slot = &mut slots[spec_idx][report.flat_idx - offsets[spec_idx]];
            match report.outcome {
                Err(e) => *slot = Some(Err(e)),
                Ok((cell, engine)) => {
                    completed[spec_idx] += 1;
                    let metrics = CellMetrics {
                        scenario: spec.name.clone(),
                        n: cell.n,
                        message_bytes: cell.message_bytes,
                        worker: report.worker,
                        schedule_index: report.schedule_index,
                        start_secs: report.start_secs,
                        wall_secs: report.wall_secs,
                        status: cell.status.name().to_string(),
                        engine,
                    };
                    observer(RunEvent::CellFinished {
                        scenario: &spec.name,
                        cell: &cell,
                        metrics: &metrics,
                        completed: completed[spec_idx],
                        total: grid_sizes[spec_idx],
                    });
                    let w = &mut worker_metrics[report.worker];
                    w.cells += 1;
                    w.busy_secs += report.wall_secs;
                    cell_metrics.push(metrics);
                    *slot = Some(Ok(cell));
                }
            }
            if completed[spec_idx] == grid_sizes[spec_idx] {
                // Every cell of this scenario produced a row (measured
                // or status): assemble the batch in grid order and
                // announce it.
                let cells: Vec<CellResult> = slots[spec_idx]
                    .iter_mut()
                    .map(|s| {
                        s.take()
                            .expect("completed batch has every slot filled")
                            .expect("completed batch has no failed cells")
                    })
                    .collect();
                batches[spec_idx] = Some(BatchResult {
                    scenario: spec.name.clone(),
                    alpha_secs: hockneys[spec_idx].alpha_secs,
                    beta_secs_per_byte: hockneys[spec_idx].beta_secs_per_byte,
                    cells,
                });
                observer(RunEvent::BatchFinished {
                    scenario: &spec.name,
                    batch: batches[spec_idx].as_ref().expect("just assembled"),
                });
            }
        }
    });

    // Hard failures (invalid builds, calibration errors surfacing at
    // cell level) still fail the whole run, in deterministic grid order.
    // By this point assembled batches have already taken their slots, so
    // only incomplete batches' slots remain.
    for spec_slots in &mut slots {
        for slot in spec_slots.iter_mut() {
            if matches!(slot, Some(Err(_))) {
                match slot.take() {
                    Some(Err(e)) => return Err(e),
                    _ => unreachable!("just matched an Err slot"),
                }
            }
        }
    }
    if received < total {
        // Only a mid-run cancellation leaves cells unpopped (a run
        // cancelled before anything started returned CtnError::Cancelled
        // above). The unstarted cells become `cancelled` status rows so
        // the partial-failure report still covers the full grid.
        debug_assert!(cancel.is_cancelled(), "only cancellation drops cells");
        for (spec_idx, spec) in specs.iter().enumerate() {
            if batches[spec_idx].is_some() {
                continue;
            }
            let sizes = spec.sweep.message_bytes.len();
            let cells: Vec<CellResult> = slots[spec_idx]
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| match slot.take() {
                    Some(Ok(cell)) => cell,
                    Some(Err(_)) => unreachable!("hard failures returned above"),
                    None => {
                        let n = spec.sweep.nodes[i / sizes];
                        let m = spec.sweep.message_bytes[i % sizes];
                        let cell = Cell {
                            spec_idx,
                            flat_idx: offsets[spec_idx] + i,
                            schedule_index: 0,
                            n,
                            message_bytes: m,
                            seed: cell_seed(&spec.name, cfg.base_seed, n, m),
                        };
                        stopped_cell(spec, &cell, CellStatus::Cancelled)
                    }
                })
                .collect();
            batches[spec_idx] = Some(BatchResult {
                scenario: spec.name.clone(),
                alpha_secs: hockneys[spec_idx].alpha_secs,
                beta_secs_per_byte: hockneys[spec_idx].beta_secs_per_byte,
                cells,
            });
        }
    }
    let batches = batches
        .into_iter()
        .map(|b| b.expect("complete run assembles every batch"))
        .collect();
    // Cells arrived in completion order; report them in schedule order so
    // the LPT decisions read straight off the snapshot.
    cell_metrics.sort_by_key(|c| c.schedule_index);
    let metrics = SessionMetrics {
        wall_secs: run_start.elapsed().as_secs_f64(),
        workers: worker_metrics,
        cache: cache.stats().since(&cache_before),
        cells: cell_metrics,
    };
    Ok((batches, metrics))
}

/// The process-wide cache behind the legacy free functions; sessions own
/// their caches instead.
fn legacy_cache() -> &'static CalibrationCache {
    static CACHE: OnceLock<CalibrationCache> = OnceLock::new();
    CACHE.get_or_init(CalibrationCache::default)
}

/// Measures the scenario's Hockney parameters through the legacy
/// process-wide cache.
#[deprecated(
    since = "0.2.0",
    note = "use Session::calibrate_hockney, which owns its calibration cache"
)]
pub fn calibrate_hockney(spec: &ScenarioSpec, base_seed: u64) -> Result<HockneyParams, SpecError> {
    hockney_fit(legacy_cache(), spec, base_seed).map_err(CtnError::into_spec_error)
}

/// Runs one scenario's full grid. Legacy shim over the session executor.
#[deprecated(
    since = "0.2.0",
    note = "use Session::run, which returns a versioned Report"
)]
pub fn run_batch(spec: &ScenarioSpec, cfg: &BatchConfig) -> Result<BatchResult, SpecError> {
    run_batches(std::slice::from_ref(spec), cfg).map(|mut v| v.remove(0))
}

/// Runs several scenarios as **one** flat cell queue over `cfg.workers`
/// threads. Results come back grouped per scenario, each grid in
/// deterministic nodes-major order regardless of worker count or the
/// cost-aware execution schedule.
///
/// Legacy wrapper over the session executor, kept callable (and
/// un-deprecated for one release) because the byte-identity determinism
/// goldens pin it; new code should use
/// [`Session::run_many`](crate::session::Session::run_many).
pub fn run_batches(
    specs: &[ScenarioSpec],
    cfg: &BatchConfig,
) -> Result<Vec<BatchResult>, SpecError> {
    let mut ignore = |_event: RunEvent<'_>| {};
    execute(
        specs,
        cfg,
        legacy_cache(),
        None,
        None,
        &mut ignore,
        &CancelToken::new(),
    )
    .map(|(batches, _metrics)| batches)
    .map_err(CtnError::into_spec_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::by_name;
    use crate::session::Session;

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = by_name("incast-burst").unwrap();
        let s1 = Session::builder().workers(1).base_seed(7).build().unwrap();
        let s4 = Session::builder().workers(4).base_seed(7).build().unwrap();
        let r1 = s1.run(&spec).unwrap();
        let r4 = s4.run(&spec).unwrap();
        assert_eq!(r1.batches, r4.batches);
        let csv1 = crate::report::to_csv(&r1.batches);
        let csv4 = crate::report::to_csv(&r4.batches);
        assert_eq!(csv1, csv4, "CSV must be byte-identical across workers");
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed("x", 1, 4, 1024);
        assert_eq!(a, cell_seed("x", 1, 4, 1024));
        assert_ne!(a, cell_seed("x", 1, 8, 1024));
        assert_ne!(a, cell_seed("x", 1, 4, 2048));
        assert_ne!(a, cell_seed("y", 1, 4, 1024));
        assert_ne!(a, cell_seed("x", 2, 4, 1024));
    }

    #[test]
    fn batch_grid_is_complete_and_ordered() {
        let spec = by_name("incast-burst").unwrap();
        let session = Session::builder().workers(2).base_seed(3).build().unwrap();
        let r = &session.run(&spec).unwrap().batches[0];
        assert_eq!(
            r.cells.len(),
            spec.sweep.nodes.len() * spec.sweep.message_bytes.len()
        );
        let mut expected = Vec::new();
        for &n in &spec.sweep.nodes {
            for &m in &spec.sweep.message_bytes {
                expected.push((n, m));
            }
        }
        let got: Vec<(usize, u64)> = r.cells.iter().map(|c| (c.n, c.message_bytes)).collect();
        assert_eq!(got, expected);
        for c in &r.cells {
            assert!(c.mean_secs > 0.0 && c.model_secs > 0.0);
            assert!(c.min_secs <= c.mean_secs && c.mean_secs <= c.max_secs);
            assert!(
                c.mean_secs >= c.model_secs * 0.99,
                "simulation beat the lower bound: {c:?}"
            );
        }
    }

    #[test]
    fn legacy_entry_points_match_the_session_byte_for_byte() {
        // Exercises the un-deprecated legacy surface only (run_batches and
        // the shared fit procedure); the #[deprecated] run_batch /
        // calibrate_hockney shims no longer have internal callers, so
        // their warnings can graduate to hard errors next release.
        let spec = by_name("incast-burst").unwrap();
        let session = Session::builder()
            .workers(2)
            .base_seed(123)
            .build()
            .unwrap();
        let report = session.run(&spec).unwrap();
        let shim = run_batches(
            std::slice::from_ref(&spec),
            &BatchConfig {
                workers: 2,
                base_seed: 123,
                model: ModelKind::Med,
                limits: GuardLimits::default(),
            },
        )
        .unwrap()
        .remove(0);
        assert_eq!(report.batches[0], shim);
        let a = hockney_fit(legacy_cache(), &spec, 123).unwrap();
        let b = session.calibrate_hockney(&spec).unwrap();
        assert_eq!(a, b, "legacy cache and session share the fit procedure");
    }

    #[test]
    fn calibration_cache_is_transparent() {
        let spec = by_name("incast-burst").unwrap();
        let cache = CalibrationCache::new();
        let a = hockney_fit(&cache, &spec, 123).unwrap();
        let b = hockney_fit(&cache, &spec, 123).unwrap();
        assert_eq!(a, b, "memoized fit must equal the fresh fit");
        let c = hockney_fit(&cache, &spec, 124).unwrap();
        assert_ne!(a, c, "different seed must not hit the same cache entry");
        assert_eq!(cache.hockney_entries(), 2);
    }

    #[test]
    fn cost_key_orders_big_cells_first() {
        let spec = by_name("incast-burst").unwrap();
        let small = Cell {
            spec_idx: 0,
            flat_idx: 0,
            schedule_index: 0,
            n: 4,
            message_bytes: 128 * 1024,
            seed: 0,
        };
        let big = Cell {
            spec_idx: 0,
            flat_idx: 1,
            schedule_index: 0,
            n: 16,
            message_bytes: 512 * 1024,
            seed: 0,
        };
        assert!(cell_cost(&spec, &big) > cell_cost(&spec, &small));
    }

    #[test]
    fn signature_prediction_is_independent_of_the_sweep_grid() {
        // The signature is a property of the network: the same (scenario,
        // seed, n, m) cell must get the same prediction no matter what
        // other grid points ride along.
        let base = by_name("incast-burst").unwrap();
        let session = Session::builder()
            .workers(1)
            .base_seed(11)
            .model(ModelKind::Signature)
            .build()
            .unwrap();
        let mut narrow = base.clone();
        narrow.sweep.nodes = vec![4];
        narrow.sweep.message_bytes = vec![64 * 1024];
        narrow.sweep.reps = 1;
        narrow.sweep.warmup = 0;
        let mut wide = base.clone();
        wide.sweep.nodes = vec![4, 16];
        wide.sweep.message_bytes = vec![64 * 1024];
        wide.sweep.reps = 1;
        wide.sweep.warmup = 0;
        let narrow_r = session.run(&narrow).unwrap();
        let wide_r = session.run(&wide).unwrap();
        assert_eq!(
            narrow_r.batches[0].cells[0], wide_r.batches[0].cells[0],
            "widening the grid must not move an existing cell's prediction"
        );
    }

    #[test]
    fn signature_and_saturation_models_produce_finite_errors() {
        let mut spec = by_name("incast-burst").unwrap();
        // One cheap cell is enough to exercise the predictors.
        spec.sweep.nodes = vec![4];
        spec.sweep.message_bytes = vec![64 * 1024];
        spec.sweep.reps = 1;
        spec.sweep.warmup = 0;
        let med_session = Session::builder().workers(1).base_seed(5).build().unwrap();
        let med = med_session.run(&spec).unwrap();
        for model in [ModelKind::Signature, ModelKind::Saturation] {
            let session = Session::builder()
                .workers(1)
                .base_seed(5)
                .model(model)
                .build()
                .unwrap();
            let r = session.run(&spec).unwrap();
            let cell = &r.batches[0].cells[0];
            assert!(
                cell.model_secs.is_finite() && cell.model_secs > 0.0,
                "{}: {cell:?}",
                model.name()
            );
            assert!(cell.error_percent.is_finite());
            // The measured columns must not depend on the model choice.
            assert_eq!(
                cell.mean_secs,
                med.batches[0].cells[0].mean_secs,
                "{}",
                model.name()
            );
            // Contention-aware predictors never undercut the lower bound.
            assert!(
                cell.model_secs >= med.batches[0].cells[0].model_secs * 0.999,
                "{}: {} < MED {}",
                model.name(),
                cell.model_secs,
                med.batches[0].cells[0].model_secs
            );
        }
    }
}
