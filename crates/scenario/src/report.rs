//! Deterministic CSV and JSON emitters for batch results.
//!
//! Floats are formatted with Rust's shortest-round-trip `Display`, so the
//! same numbers always produce the same bytes — the executor's
//! worker-count-independence guarantee extends to the report files.

use crate::executor::BatchResult;
use std::fmt::Write as _;

/// RFC-4180 quoting: fields containing commas, quotes or newlines are
/// wrapped in double quotes with inner quotes doubled (scenario names are
/// user-controlled via TOML specs).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV with one row per cell and a fixed header.
pub fn to_csv(results: &[BatchResult]) -> String {
    let mut out = String::from(
        "scenario,topology,workload,n,message_bytes,cell_seed,mean_secs,min_secs,max_secs,model_secs,error_percent\n",
    );
    for batch in results {
        for c in &batch.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(&c.scenario),
                csv_field(&c.topology),
                csv_field(&c.workload),
                c.n,
                c.message_bytes,
                c.cell_seed,
                c.mean_secs,
                c.min_secs,
                c.max_secs,
                c.model_secs,
                c.error_percent
            );
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // JSON numbers must not be bare "inf"/"NaN"; finite values are fine
        // as Rust prints them.
        s
    } else {
        "null".to_string()
    }
}

/// JSON: an array of scenario objects with calibration and cell rows.
pub fn to_json(results: &[BatchResult]) -> String {
    let mut out = String::from("[\n");
    for (bi, batch) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"scenario\": {}, \"alpha_secs\": {}, \"beta_secs_per_byte\": {}, \"cells\": [",
            json_str(&batch.scenario),
            json_f64(batch.alpha_secs),
            json_f64(batch.beta_secs_per_byte)
        );
        for (ci, c) in batch.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"topology\": {}, \"workload\": {}, \"n\": {}, \"message_bytes\": {}, \
                 \"cell_seed\": {}, \"mean_secs\": {}, \"min_secs\": {}, \"max_secs\": {}, \
                 \"model_secs\": {}, \"error_percent\": {}}}{}",
                json_str(&c.topology),
                json_str(&c.workload),
                c.n,
                c.message_bytes,
                c.cell_seed,
                json_f64(c.mean_secs),
                json_f64(c.min_secs),
                json_f64(c.max_secs),
                json_f64(c.model_secs),
                json_f64(c.error_percent),
                if ci + 1 < batch.cells.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  ]}}{}",
            if bi + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CellResult;

    fn sample() -> Vec<BatchResult> {
        vec![BatchResult {
            scenario: "s".into(),
            alpha_secs: 5e-5,
            beta_secs_per_byte: 8e-9,
            cells: vec![CellResult {
                scenario: "s".into(),
                workload: "uniform".into(),
                topology: "single-switch".into(),
                n: 4,
                message_bytes: 65536,
                cell_seed: 99,
                mean_secs: 0.0125,
                min_secs: 0.012,
                max_secs: 0.013,
                model_secs: 0.01,
                error_percent: 25.0,
            }],
        }]
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,topology,workload,n,"));
        assert!(lines[1].starts_with("s,single-switch,uniform,4,65536,99,0.0125,"));
    }

    #[test]
    fn csv_quotes_hostile_scenario_names() {
        let mut results = sample();
        results[0].cells[0].scenario = "a,b \"c\"".into();
        let csv = to_csv(&results);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("\"a,b \"\"c\"\"\",single-switch,"));
        // Field count is preserved: count commas outside quotes.
        let mut in_quotes = false;
        let fields = row
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == ',' && !in_quotes
            })
            .count()
            + 1;
        assert_eq!(fields, 11);
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = to_json(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"cells\"").count(), 1);
        assert_eq!(json.matches("\"mean_secs\"").count(), 1);
        // Balanced braces/brackets.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
