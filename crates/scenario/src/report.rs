//! The versioned [`Report`] type and its deterministic renderers.
//!
//! A report is what a [`Session`](crate::session::Session) run returns:
//! the batch results plus a `schema_version` stamp, rendered to text, CSV
//! or JSON through **one** path ([`Report::render`]) so the CLI, files on
//! disk, and embedders all emit the same bytes. Floats are formatted with
//! Rust's shortest-round-trip `Display`, so the same numbers always
//! produce the same bytes — the executor's worker-count-independence
//! guarantee extends to the report files.
//!
//! Version history:
//!
//! * **1** — initial versioned schema: CSV columns `scenario, topology,
//!   workload, n, message_bytes, cell_seed, mean_secs, min_secs, max_secs,
//!   model_secs, error_percent` (unchanged from the pre-session emitters,
//!   which carried no version stamp); JSON gained the top-level
//!   `schema_version` / `scenarios` envelope.
//! * **2** — the supervised schema: CSV appends `status, status_detail`
//!   columns, JSON cells gain `status` / `status_detail` fields, text
//!   gains a status column. A report renders under v2 only when
//!   supervision is in play — the session configured limits, or some
//!   cell carries a non-`Ok` [`CellStatus`](crate::executor::CellStatus)
//!   — so unsupervised output stays byte-identical to v1. Stopped cells'
//!   measurement columns are `NaN` in CSV, `null` in JSON and `-` in
//!   text.

use crate::executor::BatchResult;
use std::fmt::Write as _;

/// The schema version stamped on every unsupervised [`Report`] this
/// build produces.
pub const SCHEMA_VERSION: u32 = 1;

/// The schema version stamped on supervised reports (limits configured
/// or some cell stopped): the v1 columns plus `status` /
/// `status_detail`.
pub const SUPERVISED_SCHEMA_VERSION: u32 = 2;

/// How a [`Report`] is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Machine-friendly CSV, one row per cell (the default).
    #[default]
    Csv,
    /// JSON with the versioned envelope.
    Json,
    /// A human-readable table per scenario.
    Text,
}

impl ReportFormat {
    /// Parses the CLI's `--format` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "csv" => Some(ReportFormat::Csv),
            "json" => Some(ReportFormat::Json),
            "text" => Some(ReportFormat::Text),
            _ => None,
        }
    }

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ReportFormat::Csv => "csv",
            ReportFormat::Json => "json",
            ReportFormat::Text => "text",
        }
    }
}

/// A versioned batch-result report: what [`Session::run`] returns and
/// every output format renders from.
///
/// [`Session::run`]: crate::session::Session::run
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version of the rendered forms (see the module docs for the
    /// version history).
    pub schema_version: u32,
    /// One entry per scenario, in submission order.
    pub batches: Vec<BatchResult>,
}

impl Report {
    /// Wraps batch results, stamping [`SCHEMA_VERSION`] when every cell
    /// is `Ok` and [`SUPERVISED_SCHEMA_VERSION`] when any cell carries a
    /// non-`Ok` status (its row needs the status columns to be
    /// readable).
    pub fn new(batches: Vec<BatchResult>) -> Self {
        let schema_version = if batches
            .iter()
            .any(|b| b.cells.iter().any(|c| !c.status.is_ok()))
        {
            SUPERVISED_SCHEMA_VERSION
        } else {
            SCHEMA_VERSION
        };
        Self {
            schema_version,
            batches,
        }
    }

    /// Wraps batch results under [`SUPERVISED_SCHEMA_VERSION`]
    /// unconditionally — for sessions with supervision limits, where the
    /// status columns belong in the output even when every cell passed.
    pub fn supervised(batches: Vec<BatchResult>) -> Self {
        Self {
            schema_version: SUPERVISED_SCHEMA_VERSION,
            batches,
        }
    }

    /// Total cell count across all batches.
    pub fn cell_count(&self) -> usize {
        self.batches.iter().map(|b| b.cells.len()).sum()
    }

    /// True when any cell was stopped by the supervision layer (status
    /// other than `Ok`) — the CLI's partial-failure exit code keys off
    /// this.
    pub fn has_failures(&self) -> bool {
        self.batches
            .iter()
            .any(|b| b.cells.iter().any(|c| !c.status.is_ok()))
    }

    /// Renders the report; the single emission path every consumer
    /// (CLI, files, embedders) shares. Reports stamped with the
    /// supervised schema render the extra status columns.
    pub fn render(&self, format: ReportFormat) -> String {
        let supervised = self.schema_version >= SUPERVISED_SCHEMA_VERSION;
        match format {
            ReportFormat::Csv => csv_of(&self.batches, supervised),
            ReportFormat::Json => json_of(self.schema_version, &self.batches, supervised),
            ReportFormat::Text => text_of(self.schema_version, &self.batches, supervised),
        }
    }
}

/// RFC-4180 quoting: fields containing commas, quotes or newlines are
/// wrapped in double quotes with inner quotes doubled (scenario names are
/// user-controlled via TOML specs).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_of(results: &[BatchResult], supervised: bool) -> String {
    let mut out = String::from(
        "scenario,topology,workload,n,message_bytes,cell_seed,mean_secs,min_secs,max_secs,model_secs,error_percent",
    );
    out.push_str(if supervised {
        ",status,status_detail\n"
    } else {
        "\n"
    });
    for batch in results {
        for c in &batch.cells {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(&c.scenario),
                csv_field(&c.topology),
                csv_field(&c.workload),
                c.n,
                c.message_bytes,
                c.cell_seed,
                c.mean_secs,
                c.min_secs,
                c.max_secs,
                c.model_secs,
                c.error_percent
            );
            if supervised {
                let _ = write!(
                    out,
                    ",{},{}",
                    c.status.name(),
                    csv_field(&c.status.detail())
                );
            }
            out.push('\n');
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON numbers cannot be bare `inf`/`NaN`; non-finite values render as
/// `null` (finite values are fine as Rust prints them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_of(schema_version: u32, results: &[BatchResult], supervised: bool) -> String {
    let mut out = format!("{{\n\"schema_version\": {schema_version},\n\"scenarios\": [\n");
    for (bi, batch) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"scenario\": {}, \"alpha_secs\": {}, \"beta_secs_per_byte\": {}, \"cells\": [",
            json_str(&batch.scenario),
            json_f64(batch.alpha_secs),
            json_f64(batch.beta_secs_per_byte)
        );
        for (ci, c) in batch.cells.iter().enumerate() {
            let status = if supervised {
                format!(
                    ", \"status\": {}, \"status_detail\": {}",
                    json_str(c.status.name()),
                    json_str(&c.status.detail())
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "    {{\"topology\": {}, \"workload\": {}, \"n\": {}, \"message_bytes\": {}, \
                 \"cell_seed\": {}, \"mean_secs\": {}, \"min_secs\": {}, \"max_secs\": {}, \
                 \"model_secs\": {}, \"error_percent\": {}{}}}{}",
                json_str(&c.topology),
                json_str(&c.workload),
                c.n,
                c.message_bytes,
                c.cell_seed,
                json_f64(c.mean_secs),
                json_f64(c.min_secs),
                json_f64(c.max_secs),
                json_f64(c.model_secs),
                json_f64(c.error_percent),
                status,
                if ci + 1 < batch.cells.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  ]}}{}",
            if bi + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Seconds with enough digits for human comparison (the text format is
/// for eyes; CSV/JSON carry the full-precision values).
fn text_secs(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "-".to_string()
    }
}

fn text_of(schema_version: u32, results: &[BatchResult], supervised: bool) -> String {
    let mut out = format!("report v{schema_version}\n");
    for batch in results {
        let _ = writeln!(
            out,
            "\n== {} (alpha = {} s, beta = {} s/B) ==",
            batch.scenario, batch.alpha_secs, batch.beta_secs_per_byte
        );
        let _ = write!(
            out,
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
            "n", "bytes", "mean_s", "model_s", "min..max_s", "err%"
        );
        if supervised {
            let _ = write!(out, " {:<15}", "status");
        }
        out.push('\n');
        for c in &batch.cells {
            let range = if c.min_secs.is_finite() && c.max_secs.is_finite() {
                format!("{:.4}..{:.4}", c.min_secs, c.max_secs)
            } else {
                "-".to_string()
            };
            let _ = write!(
                out,
                "{:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
                c.n,
                c.message_bytes,
                text_secs(c.mean_secs),
                text_secs(c.model_secs),
                range,
                if c.error_percent.is_finite() {
                    format!("{:+.1}", c.error_percent)
                } else {
                    "-".to_string()
                }
            );
            if supervised {
                let _ = write!(out, " {:<15}", c.status.name());
            }
            out.push('\n');
        }
    }
    out
}

/// CSV with one row per cell and a fixed header.
///
/// Legacy wrapper over the [`Report`] render path, kept callable (and
/// un-deprecated for one release) because the byte-identity determinism
/// goldens pin it; new code should render a [`Report`].
pub fn to_csv(results: &[BatchResult]) -> String {
    csv_of(results, false)
}

/// JSON under the v1 schema (the legacy emitters predate supervision, so
/// they always render the unsupervised column set).
///
/// Legacy wrapper over the [`Report`] render path; new code should render
/// a [`Report`].
pub fn to_json(results: &[BatchResult]) -> String {
    json_of(SCHEMA_VERSION, results, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{CellResult, CellStatus};

    fn sample() -> Vec<BatchResult> {
        vec![BatchResult {
            scenario: "s".into(),
            alpha_secs: 5e-5,
            beta_secs_per_byte: 8e-9,
            cells: vec![CellResult {
                scenario: "s".into(),
                workload: "uniform".into(),
                topology: "single-switch".into(),
                n: 4,
                message_bytes: 65536,
                cell_seed: 99,
                mean_secs: 0.0125,
                min_secs: 0.012,
                max_secs: 0.013,
                model_secs: 0.01,
                error_percent: 25.0,
                status: CellStatus::Ok,
            }],
        }]
    }

    /// A sample with one stopped cell (deadlocked, NaN measurements).
    fn supervised_sample() -> Vec<BatchResult> {
        let mut results = sample();
        results[0].cells.push(CellResult {
            scenario: "s".into(),
            workload: "uniform".into(),
            topology: "single-switch".into(),
            n: 8,
            message_bytes: 65536,
            cell_seed: 100,
            mean_secs: f64::NAN,
            min_secs: f64::NAN,
            max_secs: f64::NAN,
            model_secs: f64::NAN,
            error_percent: f64::NAN,
            status: CellStatus::Deadlocked {
                detail: "ranks [1] blocked, \"quoted\"".into(),
            },
        });
        results
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = Report::new(sample()).render(ReportFormat::Csv);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,topology,workload,n,"));
        assert!(lines[1].starts_with("s,single-switch,uniform,4,65536,99,0.0125,"));
        assert_eq!(csv, to_csv(&sample()), "wrapper shares the render path");
    }

    #[test]
    fn csv_quotes_hostile_scenario_names() {
        let mut results = sample();
        results[0].cells[0].scenario = "a,b \"c\"".into();
        let csv = to_csv(&results);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("\"a,b \"\"c\"\"\",single-switch,"));
        // Field count is preserved: count commas outside quotes.
        let mut in_quotes = false;
        let fields = row
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == ',' && !in_quotes
            })
            .count()
            + 1;
        assert_eq!(fields, 11);
    }

    #[test]
    fn json_carries_the_schema_version() {
        let report = Report::new(sample());
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        let json = report.render(ReportFormat::Json);
        assert!(json.starts_with("{\n\"schema_version\": 1,\n\"scenarios\": [\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"cells\"").count(), 1);
        assert_eq!(json.matches("\"mean_secs\"").count(), 1);
        // Balanced braces/brackets.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        assert_eq!(json, to_json(&sample()), "wrapper shares the render path");
    }

    #[test]
    fn text_format_is_deterministic_and_human_shaped() {
        let report = Report::new(sample());
        let a = report.render(ReportFormat::Text);
        let b = report.render(ReportFormat::Text);
        assert_eq!(a, b);
        assert!(a.starts_with("report v1\n"));
        assert!(a.contains("== s (alpha = 0.00005 s"));
        assert!(a.contains("err%"));
        assert!(a.contains("+25.0"));
    }

    #[test]
    fn format_names_round_trip() {
        for f in [ReportFormat::Csv, ReportFormat::Json, ReportFormat::Text] {
            assert_eq!(ReportFormat::parse(f.name()), Some(f));
        }
        assert_eq!(ReportFormat::parse("yaml"), None);
    }

    #[test]
    fn any_stopped_cell_upgrades_the_report_to_the_supervised_schema() {
        let report = Report::new(supervised_sample());
        assert_eq!(report.schema_version, SUPERVISED_SCHEMA_VERSION);
        assert!(report.has_failures());
        let all_ok = Report::new(sample());
        assert_eq!(all_ok.schema_version, SCHEMA_VERSION);
        assert!(!all_ok.has_failures());
        // A supervised session forces v2 even when every cell passed.
        let forced = Report::supervised(sample());
        assert_eq!(forced.schema_version, SUPERVISED_SCHEMA_VERSION);
        assert!(!forced.has_failures());
    }

    #[test]
    fn supervised_csv_appends_status_columns() {
        let csv = Report::new(supervised_sample()).render(ReportFormat::Csv);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("error_percent,status,status_detail"));
        assert!(lines[1].ends_with(",ok,"), "ok row: {}", lines[1]);
        assert!(
            lines[2].contains(",NaN,") && lines[2].contains(",deadlocked,"),
            "stopped row: {}",
            lines[2]
        );
        // The hostile detail is RFC-4180 quoted, so field counts match.
        assert!(lines[2].ends_with("\"ranks [1] blocked, \"\"quoted\"\"\""));
    }

    #[test]
    fn supervised_json_carries_status_and_null_measurements() {
        let report = Report::new(supervised_sample());
        let json = report.render(ReportFormat::Json);
        assert!(json.starts_with("{\n\"schema_version\": 2,\n"));
        assert!(json.contains(r#""status": "ok", "status_detail": """#));
        assert!(json.contains(r#""status": "deadlocked""#));
        assert!(json.contains(r#""mean_secs": null"#));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn supervised_text_shows_the_status_column() {
        let text = Report::new(supervised_sample()).render(ReportFormat::Text);
        assert!(text.starts_with("report v2\n"));
        assert!(text.contains("status"));
        assert!(text.contains("deadlocked"));
        // Stopped measurements render as placeholders, not NaN.
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn legacy_wrappers_always_render_v1() {
        // Even over batches with stopped cells, the legacy emitters keep
        // the v1 column set (their consumers predate supervision).
        let csv = to_csv(&supervised_sample());
        assert!(csv.lines().next().unwrap().ends_with("error_percent"));
        let json = to_json(&supervised_sample());
        assert!(json.starts_with("{\n\"schema_version\": 1,\n"));
        assert!(!json.contains("\"status\""));
    }
}
