//! # contention-scenario — the declarative scenario engine
//!
//! The paper measures All-to-All contention on three fixed clusters; this
//! crate turns that hard-coded world into data, and wraps it in an
//! embeddable, concurrency-safe library facade:
//!
//! * [`session`] — the **[`Session`](session::Session)** facade: owned
//!   execution policy, an instance-owned calibration cache, streaming
//!   [`RunEvent`](session::RunEvent)s and a cancellation token;
//! * [`builder`] — the fluent
//!   [`ScenarioBuilder`](builder::ScenarioBuilder); TOML parsing is one
//!   front-end to it;
//! * [`spec`] — [`ScenarioSpec`](spec::ScenarioSpec): topology, transport,
//!   MPI overrides, workload and sweep grid as one declarative value, with
//!   a TOML round-trip (see [`toml`], a dependency-free subset parser);
//! * [`topology`] — spec → [`simmpi::World`], via the parameterized
//!   generators in [`simnet::generate`];
//! * [`workload`] — spec → per-rank programs, each with its MED lower
//!   bound for the model-error column;
//! * [`executor`] — the parallel batch executor: one flat cell queue
//!   across all scenarios, deterministic per-cell seeding (results are
//!   byte-identical for any worker count);
//! * [`report`] — the versioned [`Report`](report::Report) with one
//!   render path for text/CSV/JSON;
//! * [`metrics`] — per-run telemetry
//!   ([`SessionMetrics`](metrics::SessionMetrics)): cell wall-clock
//!   spans, worker occupancy, calibration-cache counters, and optional
//!   engine telemetry, exportable as metrics JSON or a Chrome
//!   trace-event timeline;
//! * [`error`] — the typed [`CtnError`](error::CtnError) hierarchy;
//! * [`registry`] — built-in scenarios (all constructed through the
//!   builder), including the three paper clusters re-expressed as specs.
//!
//! The `ctnsim` binary exposes all of it: `ctnsim list`, `ctnsim run
//! <name|file.toml> [--format text|csv|json]`, `ctnsim sweep <name>
//! --nodes … --sizes …`.
//!
//! ## Example
//!
//! ```
//! use contention_scenario::prelude::*;
//!
//! let spec = ScenarioBuilder::new("quick")
//!     .single_switch(8, LinkSpec::default(), SwitchSpec::default())
//!     .incast(1)
//!     .nodes([4])
//!     .message_bytes([32 * 1024])
//!     .build()
//!     .expect("valid spec");
//! let session = Session::builder().workers(2).base_seed(1).build().unwrap();
//! let report = session.run(&spec).expect("runs");
//! assert_eq!(report.batches[0].cells.len(), 1);
//! println!("{}", report.render(ReportFormat::Text));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod executor;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod session;
pub mod spec;
pub mod toml;
pub mod topology;
pub mod workload;

/// Commonly used items.
pub mod prelude {
    pub use crate::builder::ScenarioBuilder;
    pub use crate::error::CtnError;
    pub use crate::executor::{
        BatchConfig, BatchResult, CellResult, CellStatus, FaultPlan, GuardLimits, ModelKind,
    };
    pub use crate::metrics::{CacheStats, CellMetrics, SessionMetrics, WorkerMetrics};
    pub use crate::registry;
    pub use crate::report::{Report, ReportFormat, SCHEMA_VERSION, SUPERVISED_SCHEMA_VERSION};
    pub use crate::session::{
        CalibrationCache, CancelToken, RunEvent, RunObserver, Session, SessionBuilder,
    };
    pub use crate::spec::{
        Backend, LinkSpec, MpiSpec, ScenarioSpec, SpecError, SweepSpec, SwitchSpec, TopologySpec,
        TransportSpec, WorkloadSpec,
    };
    pub use simnet::generate::Placement;
}
