//! # contention-scenario — the declarative scenario engine
//!
//! The paper measures All-to-All contention on three fixed clusters; this
//! crate turns that hard-coded world into data:
//!
//! * [`spec`] — [`ScenarioSpec`](spec::ScenarioSpec): topology, transport,
//!   MPI overrides, workload and sweep grid as one declarative value, with
//!   a TOML round-trip (see [`toml`], a dependency-free subset parser);
//! * [`topology`] — spec → [`simmpi::World`], via the parameterized
//!   generators in [`simnet::generate`] (single switch, star-of-switches,
//!   oversubscribed two-level tree, k-ary fat-tree) or the paper's
//!   calibrated presets;
//! * [`workload`] — spec → per-rank programs: uniform All-to-All under any
//!   registered algorithm, irregular [`ExchangeMatrix`] patterns (skewed,
//!   sparse, permutation), incast/outcast, and barrier-separated
//!   multi-phase mixes — each with its MED lower bound for the model-error
//!   column;
//! * [`executor`] — the parallel batch executor: one flat cell queue
//!   across all scenarios, deterministic per-cell seeding (results are
//!   byte-identical for any worker count);
//! * [`report`] — deterministic CSV/JSON emitters;
//! * [`registry`] — built-in scenarios, including the three paper
//!   clusters re-expressed as specs.
//!
//! The `ctnsim` binary exposes all of it: `ctnsim list`, `ctnsim run
//! <name|file.toml>`, `ctnsim sweep <name> --nodes … --sizes …`.
//!
//! ## Example
//!
//! ```
//! use contention_scenario::executor::{run_batch, BatchConfig};
//! use contention_scenario::registry;
//!
//! let spec = registry::by_name("incast-burst").expect("built-in");
//! let cfg = BatchConfig { workers: 2, base_seed: 1, ..Default::default() };
//! let result = run_batch(&spec, &cfg).expect("runs");
//! assert_eq!(result.cells.len(),
//!            spec.sweep.nodes.len() * spec.sweep.message_bytes.len());
//! ```
//!
//! [`ExchangeMatrix`]: simmpi::ExchangeMatrix

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod registry;
pub mod report;
pub mod spec;
pub mod toml;
pub mod topology;
pub mod workload;

/// Commonly used items.
pub mod prelude {
    pub use crate::executor::{
        run_batch, run_batches, BatchConfig, BatchResult, CellResult, ModelKind,
    };
    pub use crate::registry;
    pub use crate::report::{to_csv, to_json};
    pub use crate::spec::{
        LinkSpec, MpiSpec, ScenarioSpec, SpecError, SweepSpec, SwitchSpec, TopologySpec,
        TransportSpec, WorkloadSpec,
    };
}
