//! The Message Exchange Digraph (MED) and the paper's lower bounds.
//!
//! §5 formalizes the total exchange problem on a weighted digraph
//! `dG(V, E)`: vertices are processes, an arc `(p_i, p_j)` with weight
//! `w(e)` is a message of that size. Claims 1–3 bound any schedule without
//! message forwarding on the 1-port full-duplex model:
//!
//! * **Claim 1** — at least `max(Δs, Δr)` start-ups, where `Δs`/`Δr` are the
//!   maximum out-/in-degrees;
//! * **Claim 2** — at least `max(ts, tr)` transmission time, where
//!   `ts = max_i Σ_j w_ij·β` and `tr = max_j Σ_i w_ij·β`;
//! * **Claim 3** — at least `max(Δs, Δr)·α + max(ts, tr)` when both maxima
//!   are due to the same process or the model is synchronous.
//!
//! Proposition 1 specializes this to the uniform All-to-All.

use crate::hockney::HockneyParams;
use serde::{Deserialize, Serialize};

/// A message exchange digraph: `n` processes and weighted arcs.
///
/// Arc weights accumulate: adding `(i, j, w)` twice yields one logical
/// message stream of `2w` bytes for the bandwidth bounds, but counts as two
/// start-ups for the degree bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Med {
    n: usize,
    /// Arc list: (source, destination, bytes).
    arcs: Vec<(usize, usize, u64)>,
    out_bytes: Vec<u64>,
    in_bytes: Vec<u64>,
    out_degree: Vec<usize>,
    in_degree: Vec<usize>,
}

impl Med {
    /// An empty MED over `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
            out_bytes: vec![0; n],
            in_bytes: vec![0; n],
            out_degree: vec![0; n],
            in_degree: vec![0; n],
        }
    }

    /// The uniform All-to-All MED: every ordered pair `(i, j)`, `i ≠ j`,
    /// carries one `m`-byte message.
    pub fn uniform_alltoall(n: usize, m: u64) -> Self {
        let mut med = Self::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    med.add_message(i, j, m);
                }
            }
        }
        med
    }

    /// Adds one message of `bytes` from `src` to `dst`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or a self-loop (a process's message
    /// to itself never uses the network).
    pub fn add_message(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.n && dst < self.n, "endpoint out of range");
        assert_ne!(src, dst, "self-messages are local copies");
        self.arcs.push((src, dst, bytes));
        self.out_bytes[src] += bytes;
        self.in_bytes[dst] += bytes;
        self.out_degree[src] += 1;
        self.in_degree[dst] += 1;
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of messages (arcs).
    pub fn message_count(&self) -> usize {
        self.arcs.len()
    }

    /// Out-degree Δs(p_i): messages process `i` must send.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out_degree[i]
    }

    /// In-degree Δr(p_i): messages process `i` must receive.
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_degree[i]
    }

    /// Maximum out-degree Δs.
    pub fn delta_s(&self) -> usize {
        self.out_degree.iter().copied().max().unwrap_or(0)
    }

    /// Maximum in-degree Δr.
    pub fn delta_r(&self) -> usize {
        self.in_degree.iter().copied().max().unwrap_or(0)
    }

    /// Claim 1: minimum number of start-ups, `max(Δs, Δr)`.
    pub fn min_startups(&self) -> usize {
        self.delta_s().max(self.delta_r())
    }

    /// `ts`: the send-side bandwidth bottleneck in seconds.
    pub fn send_time_bound(&self, beta_secs_per_byte: f64) -> f64 {
        self.out_bytes
            .iter()
            .map(|&b| b as f64 * beta_secs_per_byte)
            .fold(0.0, f64::max)
    }

    /// `tr`: the receive-side bandwidth bottleneck in seconds.
    pub fn recv_time_bound(&self, beta_secs_per_byte: f64) -> f64 {
        self.in_bytes
            .iter()
            .map(|&b| b as f64 * beta_secs_per_byte)
            .fold(0.0, f64::max)
    }

    /// Claim 2: bandwidth lower bound `max(ts, tr)`.
    pub fn bandwidth_bound(&self, beta_secs_per_byte: f64) -> f64 {
        self.send_time_bound(beta_secs_per_byte)
            .max(self.recv_time_bound(beta_secs_per_byte))
    }

    /// Claim 3: combined bound `max(Δs, Δr)·α + max(ts, tr)`.
    pub fn time_lower_bound(&self, params: &HockneyParams) -> f64 {
        self.min_startups() as f64 * params.alpha_secs
            + self.bandwidth_bound(params.beta_secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_alltoall_degrees_are_n_minus_1() {
        let med = Med::uniform_alltoall(8, 100);
        assert_eq!(med.message_count(), 8 * 7);
        for i in 0..8 {
            assert_eq!(med.out_degree(i), 7);
            assert_eq!(med.in_degree(i), 7);
        }
        assert_eq!(med.min_startups(), 7);
    }

    #[test]
    fn claim3_on_uniform_alltoall_equals_proposition_1() {
        let params = HockneyParams::new(60e-6, 8e-8);
        let (n, m) = (24usize, 65_536u64);
        let med = Med::uniform_alltoall(n, m);
        let claim3 = med.time_lower_bound(&params);
        let prop1 = params.alltoall_lower_bound(n, m);
        assert!((claim3 - prop1).abs() < 1e-12, "{claim3} vs {prop1}");
    }

    #[test]
    fn asymmetric_med_bounds() {
        // A gather: everyone sends 100 B to process 0.
        let mut med = Med::new(4);
        for i in 1..4 {
            med.add_message(i, 0, 100);
        }
        assert_eq!(med.delta_s(), 1);
        assert_eq!(med.delta_r(), 3);
        assert_eq!(med.min_startups(), 3);
        let beta = 1e-8;
        // Receive side dominates: 300 bytes into p0.
        assert!((med.bandwidth_bound(beta) - 300.0 * beta).abs() < 1e-18);
    }

    #[test]
    fn scatter_is_send_dominated() {
        let mut med = Med::new(4);
        for j in 1..4 {
            med.add_message(0, j, 1000);
        }
        assert_eq!(med.delta_s(), 3);
        assert_eq!(med.delta_r(), 1);
        let beta = 1e-9;
        assert!((med.send_time_bound(beta) - 3000.0 * beta).abs() < 1e-18);
        assert!((med.recv_time_bound(beta) - 1000.0 * beta).abs() < 1e-18);
    }

    #[test]
    fn weights_accumulate_degrees_count() {
        let mut med = Med::new(2);
        med.add_message(0, 1, 10);
        med.add_message(0, 1, 20);
        assert_eq!(med.out_degree(0), 2);
        assert!((med.send_time_bound(1.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-messages")]
    fn self_loop_rejected() {
        let mut med = Med::new(3);
        med.add_message(1, 1, 5);
    }

    #[test]
    fn empty_med_has_zero_bounds() {
        let med = Med::new(5);
        assert_eq!(med.min_startups(), 0);
        assert_eq!(med.bandwidth_bound(1e-9), 0.0);
        let params = HockneyParams::new(1e-6, 1e-9);
        assert_eq!(med.time_lower_bound(&params), 0.0);
    }
}
