//! An intermediate model for half-saturated networks — the paper's other
//! future-work item ("to propose an intermediate performance model for
//! half-saturate networks").
//!
//! The plain signature assumes the network is saturated: γ is constant in
//! `n`. Below saturation the real ratio ramps from ≈1 (a couple of nodes
//! cannot congest a fabric) up to the saturated γ∞ — which is exactly why
//! the paper's Figs. 11 and 14 show large negative errors at small `n`.
//! This model makes the ramp explicit:
//!
//! ```text
//! γ(n) = 1 + (γ∞ − 1)·(1 − exp(−(n−1)/n_half))
//! T(n, m) = (n−1)·(α + m·β)·γ(n)   [+ (n−1)·δ above the cutoff]
//! ```
//!
//! `n_half` is the node scale at which contention has reached ~63 % of its
//! saturated value. Fitted from measurements at several node counts by a
//! grid search over `n_half` with a closed-form inner fit for γ∞.

use crate::error::ModelError;
use crate::hockney::HockneyParams;
use crate::models::CompletionModel;
use serde::{Deserialize, Serialize};

/// A saturation-aware contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationModel {
    /// Contention-free point-to-point parameters.
    pub hockney: HockneyParams,
    /// Saturated contention ratio γ∞.
    pub gamma_saturated: f64,
    /// Node scale of the saturation ramp.
    pub n_half: f64,
    /// Residual sum of squares of the fit.
    pub rss: f64,
}

impl SaturationModel {
    /// The effective contention ratio at `n` processes.
    pub fn gamma_at(&self, n: usize) -> f64 {
        if n < 2 {
            return 1.0;
        }
        let ramp = 1.0 - (-((n - 1) as f64) / self.n_half).exp();
        1.0 + (self.gamma_saturated - 1.0) * ramp
    }

    /// Fits `(γ∞, n_half)` from measurements spanning several node counts:
    /// `(n, message bytes, seconds)` triples. Needs at least two distinct
    /// node counts and four points (same requirement as the signature).
    pub fn fit(hockney: HockneyParams, samples: &[(usize, u64, f64)]) -> Result<Self, ModelError> {
        if samples.len() < 4 {
            return Err(ModelError::InsufficientSamples {
                needed: 4,
                got: samples.len(),
            });
        }
        let mut node_counts: Vec<usize> = samples.iter().map(|&(n, _, _)| n).collect();
        node_counts.sort_unstable();
        node_counts.dedup();
        if node_counts.len() < 2 {
            return Err(ModelError::InvalidInput(
                "saturation fit needs at least two distinct node counts",
            ));
        }
        // Observed ratios y_i = T_i / bound_i = 1 + (γ∞−1)·ramp(n_i).
        let mut ratios = Vec::with_capacity(samples.len());
        for &(n, m, t) in samples {
            let bound = hockney.alltoall_lower_bound(n, m);
            if !bound.is_finite() || bound <= 0.0 || !t.is_finite() || t <= 0.0 {
                return Err(ModelError::InvalidInput("non-positive time or bound"));
            }
            ratios.push((n, t / bound));
        }
        // Grid over n_half (log-spaced 1..10·max n); inner closed-form
        // least squares for (γ∞ − 1): minimize Σ (y−1 − g·r(n))².
        let max_n = *node_counts.last().expect("non-empty") as f64;
        let mut best: Option<(f64, f64, f64)> = None; // (rss, n_half, gamma)
        let mut n_half = 1.0f64;
        while n_half <= max_n * 10.0 {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(n, y) in &ratios {
                let r = 1.0 - (-((n - 1) as f64) / n_half).exp();
                num += (y - 1.0) * r;
                den += r * r;
            }
            if den > 0.0 {
                let g = (num / den).max(0.0);
                let rss: f64 = ratios
                    .iter()
                    .map(|&(n, y)| {
                        let r = 1.0 - (-((n - 1) as f64) / n_half).exp();
                        let e = y - 1.0 - g * r;
                        e * e
                    })
                    .sum();
                if best.is_none_or(|(b, _, _)| rss < b) {
                    best = Some((rss, n_half, g));
                }
            }
            n_half *= 1.1;
        }
        let (rss, n_half, g) = best.expect("grid is non-empty");
        Ok(Self {
            hockney,
            gamma_saturated: 1.0 + g,
            n_half,
            rss,
        })
    }
}

impl CompletionModel for SaturationModel {
    fn name(&self) -> &'static str {
        "saturation-ramp"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        self.hockney.alltoall_lower_bound(n, m) * self.gamma_at(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HockneyParams {
        HockneyParams::new(50e-6, 8.5e-9)
    }

    fn synth(gamma_sat: f64, n_half: f64) -> Vec<(usize, u64, f64)> {
        let h = params();
        let mut samples = Vec::new();
        for n in [4usize, 8, 16, 24, 32, 40, 48] {
            for m in [131_072u64, 524_288, 1_048_576] {
                let ramp = 1.0 - (-((n - 1) as f64) / n_half).exp();
                let gamma = 1.0 + (gamma_sat - 1.0) * ramp;
                samples.push((n, m, h.alltoall_lower_bound(n, m) * gamma));
            }
        }
        samples
    }

    #[test]
    fn recovers_planted_ramp() {
        let model = SaturationModel::fit(params(), &synth(4.4, 12.0)).unwrap();
        assert!(
            (model.gamma_saturated - 4.4).abs() < 0.05,
            "gamma_sat = {}",
            model.gamma_saturated
        );
        assert!(
            (model.n_half - 12.0).abs() < 1.5,
            "n_half = {}",
            model.n_half
        );
    }

    #[test]
    fn gamma_ramps_from_one_to_saturated() {
        let model = SaturationModel {
            hockney: params(),
            gamma_saturated: 4.0,
            n_half: 10.0,
            rss: 0.0,
        };
        assert_eq!(model.gamma_at(1), 1.0);
        assert!(model.gamma_at(2) < model.gamma_at(8));
        assert!(model.gamma_at(8) < model.gamma_at(64));
        assert!(model.gamma_at(1000) < 4.0 + 1e-6);
        assert!(model.gamma_at(1000) > 3.99);
    }

    #[test]
    fn beats_flat_signature_below_saturation() {
        // Data with a ramp; the flat-γ model fitted at n'=40 overshoots
        // small n, while the saturation model tracks it.
        let data = synth(4.4, 12.0);
        let h = params();
        let model = SaturationModel::fit(h, &data).unwrap();
        let flat_gamma = 4.24; // what a saturated fit would give
        let (n, m) = (6usize, 524_288u64);
        let truth = data
            .iter()
            .find(|&&(dn, dm, _)| dn == 8 && dm == m)
            .map(|&(_, _, t)| t)
            .unwrap();
        let _ = truth;
        let ramp_pred = model.predict(n, m);
        let flat_pred = h.alltoall_lower_bound(n, m) * flat_gamma;
        let ramp = 1.0 - (-((n - 1) as f64) / 12.0).exp();
        let true_t = h.alltoall_lower_bound(n, m) * (1.0 + 3.4 * ramp);
        assert!(
            (ramp_pred - true_t).abs() < (flat_pred - true_t).abs(),
            "ramp {ramp_pred} vs flat {flat_pred} vs truth {true_t}"
        );
    }

    #[test]
    fn needs_two_distinct_node_counts() {
        let h = params();
        let samples = vec![
            (8usize, 1024u64, 0.01),
            (8, 2048, 0.02),
            (8, 4096, 0.04),
            (8, 8192, 0.08),
        ];
        assert!(matches!(
            SaturationModel::fit(h, &samples),
            Err(ModelError::InvalidInput(_))
        ));
    }

    #[test]
    fn rejects_insufficient_points() {
        assert!(matches!(
            SaturationModel::fit(params(), &[(4, 1024, 0.1), (8, 1024, 0.2)]),
            Err(ModelError::InsufficientSamples { .. })
        ));
    }
}
