//! Contention signatures for collectives beyond the All-to-All — the
//! paper's stated future work ("we expect to extend our models to other
//! collective communication operations").
//!
//! The methodology transfers unchanged: each collective has a
//! contention-free lower bound built from Hockney parameters; the ratio of
//! measured time to that bound, fitted once, predicts the collective at
//! other scales. What changes per collective is only the bound.

use crate::error::ModelError;
use crate::hockney::HockneyParams;
use contention_stats::regression::simple_proportional;
use serde::{Deserialize, Serialize};

/// The collective shapes we can bound and fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveShape {
    /// One-to-all, same payload (tree forwarding allowed).
    Broadcast,
    /// One-to-all, personalized blocks.
    Scatter,
    /// All-to-one, personalized blocks.
    Gather,
    /// All-to-all replication of per-rank blocks.
    AllGather,
    /// The total exchange itself (Proposition 1).
    AllToAll,
}

impl CollectiveShape {
    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveShape::Broadcast => "broadcast",
            CollectiveShape::Scatter => "scatter",
            CollectiveShape::Gather => "gather",
            CollectiveShape::AllGather => "allgather",
            CollectiveShape::AllToAll => "alltoall",
        }
    }

    /// Contention-free lower bound for `n` ranks and block size `m`.
    ///
    /// * broadcast: `⌈log₂ n⌉` forwarding steps of `α + mβ` (binomial tree);
    /// * scatter/gather: the root must move `(n−1)·m` bytes through its one
    ///   port plus at least `⌈log₂ n⌉` start-ups;
    /// * all-gather: every rank must receive `(n−1)·m` bytes plus
    ///   `⌈log₂ n⌉` start-ups;
    /// * all-to-all: Proposition 1.
    pub fn lower_bound(&self, params: &HockneyParams, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let log_n = (usize::BITS - (n - 1).leading_zeros()) as f64;
        let alpha = params.alpha_secs;
        let beta = params.beta_secs_per_byte;
        let volume = (n - 1) as f64 * m as f64 * beta;
        match self {
            CollectiveShape::Broadcast => log_n * (alpha + m as f64 * beta),
            CollectiveShape::Scatter | CollectiveShape::Gather => log_n * alpha + volume,
            CollectiveShape::AllGather => log_n * alpha + volume,
            CollectiveShape::AllToAll => params.alltoall_lower_bound(n, m),
        }
    }
}

/// A fitted contention ratio for one collective on one network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveSignature {
    /// Which collective.
    pub shape: CollectiveShape,
    /// Hockney parameters the bound uses.
    pub hockney: HockneyParams,
    /// Measured-over-bound ratio.
    pub gamma: f64,
    /// Sample rank count the ratio was fitted at.
    pub sample_n: usize,
    /// Goodness of fit at the sample points.
    pub fit_r_squared: f64,
}

impl CollectiveSignature {
    /// Fits γ by least squares through the origin: `T ≈ γ·bound(m)` over
    /// `(block size, measured seconds)` samples at one rank count.
    pub fn fit(
        shape: CollectiveShape,
        hockney: HockneyParams,
        sample_n: usize,
        samples: &[(u64, f64)],
    ) -> Result<Self, ModelError> {
        if samples.len() < 2 {
            return Err(ModelError::InsufficientSamples {
                needed: 2,
                got: samples.len(),
            });
        }
        let bounds: Vec<f64> = samples
            .iter()
            .map(|&(m, _)| shape.lower_bound(&hockney, sample_n, m))
            .collect();
        let times: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let (gamma, fit) = simple_proportional(&bounds, &times)?;
        if gamma <= 0.0 {
            return Err(ModelError::NonPhysical {
                parameter: "gamma",
                value: gamma,
            });
        }
        Ok(Self {
            shape,
            hockney,
            gamma,
            sample_n,
            fit_r_squared: fit.r_squared,
        })
    }

    /// Predicted completion for `n` ranks and block size `m`.
    pub fn predict(&self, n: usize, m: u64) -> f64 {
        self.shape.lower_bound(&self.hockney, n, m) * self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HockneyParams {
        HockneyParams::new(50e-6, 8e-9)
    }

    #[test]
    fn bounds_scale_sensibly() {
        let h = params();
        let m = 1_000_000;
        // Broadcast is logarithmic in n; scatter is linear in volume.
        let b8 = CollectiveShape::Broadcast.lower_bound(&h, 8, m);
        let b64 = CollectiveShape::Broadcast.lower_bound(&h, 64, m);
        assert!((b64 / b8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
        let s8 = CollectiveShape::Scatter.lower_bound(&h, 8, m);
        let s64 = CollectiveShape::Scatter.lower_bound(&h, 64, m);
        assert!(s64 / s8 > 8.0, "scatter volume is (n−1)m");
    }

    #[test]
    fn alltoall_shape_defers_to_proposition_1() {
        let h = params();
        assert_eq!(
            CollectiveShape::AllToAll.lower_bound(&h, 24, 65_536),
            h.alltoall_lower_bound(24, 65_536)
        );
    }

    #[test]
    fn degenerate_n_is_zero() {
        let h = params();
        for shape in [
            CollectiveShape::Broadcast,
            CollectiveShape::Scatter,
            CollectiveShape::Gather,
            CollectiveShape::AllGather,
            CollectiveShape::AllToAll,
        ] {
            assert_eq!(shape.lower_bound(&h, 1, 100), 0.0, "{}", shape.name());
        }
    }

    #[test]
    fn fit_recovers_planted_ratio() {
        let h = params();
        let shape = CollectiveShape::AllGather;
        let gamma = 1.8;
        let samples: Vec<(u64, f64)> = [65_536u64, 262_144, 1_048_576]
            .iter()
            .map(|&m| (m, shape.lower_bound(&h, 16, m) * gamma))
            .collect();
        let sig = CollectiveSignature::fit(shape, h, 16, &samples).unwrap();
        assert!((sig.gamma - gamma).abs() < 1e-9);
        assert!(
            (sig.predict(32, 131_072) - shape.lower_bound(&h, 32, 131_072) * gamma).abs() < 1e-12
        );
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        let h = params();
        assert!(matches!(
            CollectiveSignature::fit(CollectiveShape::Broadcast, h, 8, &[(1024, 0.1)]),
            Err(ModelError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn gather_and_scatter_bounds_match() {
        let h = params();
        assert_eq!(
            CollectiveShape::Scatter.lower_bound(&h, 24, 4096),
            CollectiveShape::Gather.lower_bound(&h, 24, 4096)
        );
    }
}
