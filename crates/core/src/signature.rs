//! The contention signature — the paper's headline contribution (§7).
//!
//! The hypothesis: network contention depends mostly on the physical
//! network (cards, links, switches), so the *ratio* between the Proposition
//! 1 lower bound and the real completion time is a property of the network
//! — its **contention signature** — measurable once at a sample process
//! count `n′` and reusable for any `(n, m)` on that network:
//!
//! ```text
//! T(n, m) = (n−1)·(α + m·β)·γ                 if m <  M     (eq. 4/5)
//! T(n, m) = (n−1)·((α + m·β)·γ + δ)           if m ≥  M
//! ```
//!
//! `γ` is the contention ratio, `δ` the per-round start-up overload
//! ("each simultaneous communication induces an overload of 8.23 ms"), and
//! `M` the message-size cutoff below which the affine term vanishes.
//! Fitted by least squares over at least four measurement points, with the
//! breakpoint chosen by model selection.

use crate::error::ModelError;
use crate::hockney::HockneyParams;
use crate::models::CompletionModel;
use contention_stats::piecewise::{fit_piecewise, PiecewiseSpec};
use serde::{Deserialize, Serialize};

/// A fitted contention signature `(γ, δ, M)` over Hockney parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionSignature {
    /// Contention-free point-to-point parameters the bound is built on.
    pub hockney: HockneyParams,
    /// Contention ratio γ: measured time over the lower bound.
    pub gamma: f64,
    /// Per-round start-up overload δ in seconds (applied `n−1` times for
    /// messages of at least `cutoff_bytes`).
    pub delta_secs: f64,
    /// Message-size cutoff `M`; `None` when the pure-ratio model fits best
    /// (the Myrinet case, δ ≈ 0).
    pub cutoff_bytes: Option<u64>,
    /// Sample process count `n′` the signature was fitted at.
    pub sample_n: usize,
    /// Goodness of fit (R²) at the sample points.
    pub fit_r_squared: f64,
}

impl ContentionSignature {
    /// Fits a signature from All-to-All measurements at one process count.
    ///
    /// `samples` are `(message_bytes, measured_seconds)` pairs; the paper
    /// requires "at least four measurement points in order to better fit
    /// the performance curve". `δ` is constrained non-negative (a negative
    /// start-up overload is non-physical).
    pub fn fit(
        hockney: HockneyParams,
        sample_n: usize,
        samples: &[(u64, f64)],
    ) -> Result<Self, ModelError> {
        if sample_n < 2 {
            return Err(ModelError::InvalidInput("need at least two processes"));
        }
        if samples.len() < 4 {
            return Err(ModelError::InsufficientSamples {
                needed: 4,
                got: samples.len(),
            });
        }
        let abscissa: Vec<f64> = samples.iter().map(|&(m, _)| m as f64).collect();
        let slope_basis: Vec<f64> = samples
            .iter()
            .map(|&(m, _)| hockney.alltoall_lower_bound(sample_n, m))
            .collect();
        let step_basis = vec![(sample_n - 1) as f64; samples.len()];
        let observations: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let fit = fit_piecewise(
            &PiecewiseSpec {
                abscissa: &abscissa,
                slope_basis: &slope_basis,
                step_basis: &step_basis,
                observations: &observations,
            },
            true,
        )?;
        if fit.gamma <= 0.0 {
            return Err(ModelError::NonPhysical {
                parameter: "gamma",
                value: fit.gamma,
            });
        }
        Ok(Self {
            hockney,
            gamma: fit.gamma,
            delta_secs: fit.delta,
            cutoff_bytes: fit.cutoff.map(|c| c as u64),
            sample_n,
            fit_r_squared: fit.r_squared,
        })
    }

    /// Evaluates eq. 5 for `n` processes and `m`-byte messages.
    pub fn predict(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let per_round = self.hockney.p2p_time(m) * self.gamma
            + match self.cutoff_bytes {
                Some(cut) if m >= cut => self.delta_secs,
                _ => 0.0,
            };
        (n - 1) as f64 * per_round
    }

    /// The lower bound this signature is expressed against.
    pub fn lower_bound(&self, n: usize, m: u64) -> f64 {
        self.hockney.alltoall_lower_bound(n, m)
    }

    /// Whether the affine δ term applies at message size `m`.
    pub fn delta_active(&self, m: u64) -> bool {
        matches!(self.cutoff_bytes, Some(cut) if m >= cut && self.delta_secs > 0.0)
    }
}

impl CompletionModel for ContentionSignature {
    fn name(&self) -> &'static str {
        "contention-signature"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        ContentionSignature::predict(self, n, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gige_hockney() -> HockneyParams {
        HockneyParams::new(50e-6, 8.5e-9)
    }

    /// Synthesizes measurements from known (γ, δ, M) and checks recovery.
    #[test]
    fn fit_recovers_planted_signature() {
        let h = gige_hockney();
        let (n, gamma, delta, cut) = (40usize, 4.3628, 4.93e-3, 8192u64);
        let sizes = [1024u64, 4096, 8192, 65_536, 262_144, 524_288, 1_048_576];
        let samples: Vec<(u64, f64)> = sizes
            .iter()
            .map(|&m| {
                let t =
                    (n - 1) as f64 * (h.p2p_time(m) * gamma + if m >= cut { delta } else { 0.0 });
                (m, t)
            })
            .collect();
        let sig = ContentionSignature::fit(h, n, &samples).unwrap();
        assert!((sig.gamma - gamma).abs() < 1e-6, "gamma = {}", sig.gamma);
        assert!((sig.delta_secs - delta).abs() < 1e-9);
        assert_eq!(sig.cutoff_bytes, Some(cut));
        assert!(sig.fit_r_squared > 0.999999);
    }

    #[test]
    fn fit_without_step_finds_pure_gamma() {
        // The Myrinet case: δ below measurement noise → pure ratio.
        let h = HockneyParams::new(10e-6, 4e-9);
        let n = 24;
        let sizes = [65_536u64, 131_072, 262_144, 524_288, 1_048_576];
        let samples: Vec<(u64, f64)> = sizes
            .iter()
            .map(|&m| (m, h.alltoall_lower_bound(n, m) * 2.49754))
            .collect();
        let sig = ContentionSignature::fit(h, n, &samples).unwrap();
        assert!((sig.gamma - 2.49754).abs() < 1e-9);
        assert_eq!(sig.cutoff_bytes, None);
        assert_eq!(sig.delta_secs, 0.0);
    }

    #[test]
    fn prediction_extrapolates_across_n() {
        let h = gige_hockney();
        let sig = ContentionSignature {
            hockney: h,
            gamma: 4.3628,
            delta_secs: 4.93e-3,
            cutoff_bytes: Some(8192),
            sample_n: 40,
            fit_r_squared: 1.0,
        };
        // Eq. 5 by hand at n = 16, m = 1 MiB.
        let m = 1_048_576u64;
        let expected = 15.0 * (h.p2p_time(m) * 4.3628 + 4.93e-3);
        assert!((sig.predict(16, m) - expected).abs() < 1e-12);
        // Below the cutoff, no δ.
        let expected_small = 15.0 * h.p2p_time(4096) * 4.3628;
        assert!((sig.predict(16, 4096) - expected_small).abs() < 1e-12);
        assert!(sig.delta_active(8192));
        assert!(!sig.delta_active(4096));
    }

    #[test]
    fn gamma_one_delta_zero_equals_lower_bound() {
        let h = gige_hockney();
        let sig = ContentionSignature {
            hockney: h,
            gamma: 1.0,
            delta_secs: 0.0,
            cutoff_bytes: None,
            sample_n: 8,
            fit_r_squared: 1.0,
        };
        for &(n, m) in &[(4usize, 1024u64), (24, 65_536), (50, 1_048_576)] {
            assert!((sig.predict(n, m) - sig.lower_bound(n, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_requires_four_points() {
        let h = gige_hockney();
        let samples = vec![(1024u64, 0.1), (2048, 0.2), (4096, 0.4)];
        assert!(matches!(
            ContentionSignature::fit(h, 8, &samples),
            Err(ModelError::InsufficientSamples { needed: 4, .. })
        ));
    }

    #[test]
    fn fit_tolerates_measurement_noise() {
        let h = gige_hockney();
        let n = 24;
        let sizes: Vec<u64> = (1..=10).map(|i| i * 131_072).collect();
        let samples: Vec<(u64, f64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let noise = if i % 2 == 0 { 1.03 } else { 0.97 };
                (m, h.alltoall_lower_bound(n, m) * 1.9 * noise)
            })
            .collect();
        let sig = ContentionSignature::fit(h, n, &samples).unwrap();
        assert!((sig.gamma - 1.9).abs() < 0.1, "gamma = {}", sig.gamma);
    }

    #[test]
    fn degenerate_n_predicts_zero() {
        let sig = ContentionSignature {
            hockney: gige_hockney(),
            gamma: 2.0,
            delta_secs: 0.0,
            cutoff_bytes: None,
            sample_n: 8,
            fit_r_squared: 1.0,
        };
        assert_eq!(sig.predict(1, 1024), 0.0);
    }
}
