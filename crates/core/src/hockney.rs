//! Hockney's point-to-point transmission model and the paper's lower bound.
//!
//! The paper's transmission model (§4): sending `w` bytes costs
//! `α + w·β`, where `α` is the start-up latency and `1/β` the link
//! bandwidth. Proposition 1 then bounds the All-to-All:
//!
//! > If message forwarding is not allowed, and all messages have size m, and
//! > both bandwidth and latency are identical (for) any connection, the time
//! > to complete a total exchange is at least `(n−1)·α + (n−1)·β·m`.

use crate::error::ModelError;
use contention_stats::regression::simple_affine;
use serde::{Deserialize, Serialize};

/// Hockney parameters: start-up `α` (seconds) and gap `β` (seconds/byte).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HockneyParams {
    /// Per-message start-up latency in seconds.
    pub alpha_secs: f64,
    /// Per-byte gap (inverse bandwidth) in seconds.
    pub beta_secs_per_byte: f64,
}

impl HockneyParams {
    /// Constructs parameters directly.
    ///
    /// # Panics
    /// Panics on negative or non-finite values — these are programmer
    /// errors, not data-dependent conditions ([`HockneyParams::fit`] returns
    /// errors instead).
    pub fn new(alpha_secs: f64, beta_secs_per_byte: f64) -> Self {
        assert!(alpha_secs >= 0.0 && alpha_secs.is_finite());
        assert!(beta_secs_per_byte >= 0.0 && beta_secs_per_byte.is_finite());
        Self {
            alpha_secs,
            beta_secs_per_byte,
        }
    }

    /// Point-to-point time for `bytes`: `α + bytes·β`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.alpha_secs + bytes as f64 * self.beta_secs_per_byte
    }

    /// Proposition 1: the contention-free All-to-All lower bound
    /// `(n−1)·(α + m·β)` for `n` processes and `m`-byte messages.
    pub fn alltoall_lower_bound(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        (n - 1) as f64 * self.p2p_time(m)
    }

    /// Fits `α`, `β` from one-way point-to-point measurements
    /// `(size, seconds)` by ordinary least squares.
    ///
    /// Rejects fits that produce a negative bandwidth term; a slightly
    /// negative intercept (possible when all sampled sizes are large) is
    /// clamped to zero, since `α ≥ 0` by definition.
    pub fn fit(points: &[(u64, f64)]) -> Result<Self, ModelError> {
        if points.len() < 2 {
            return Err(ModelError::InsufficientSamples {
                needed: 2,
                got: points.len(),
            });
        }
        let x: Vec<f64> = points.iter().map(|&(s, _)| s as f64).collect();
        let y: Vec<f64> = points.iter().map(|&(_, t)| t).collect();
        let (alpha, beta, _fit) = simple_affine(&x, &y)?;
        if beta <= 0.0 {
            return Err(ModelError::NonPhysical {
                parameter: "beta",
                value: beta,
            });
        }
        Ok(Self {
            alpha_secs: alpha.max(0.0),
            beta_secs_per_byte: beta,
        })
    }

    /// Link bandwidth `1/β` in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        1.0 / self.beta_secs_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_time_is_affine() {
        let h = HockneyParams::new(50e-6, 8e-9);
        assert!((h.p2p_time(0) - 50e-6).abs() < 1e-15);
        assert!((h.p2p_time(1_000_000) - (50e-6 + 8e-3)).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_matches_proposition_1() {
        let h = HockneyParams::new(60e-6, 8e-8);
        let n = 24;
        let m = 1_048_576;
        let expected = 23.0 * (60e-6 + 1_048_576.0 * 8e-8);
        assert!((h.alltoall_lower_bound(n, m) - expected).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_degenerate_cases() {
        let h = HockneyParams::new(1e-6, 1e-9);
        assert_eq!(h.alltoall_lower_bound(0, 100), 0.0);
        assert_eq!(h.alltoall_lower_bound(1, 100), 0.0);
        assert!(h.alltoall_lower_bound(2, 100) > 0.0);
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        let h = HockneyParams::new(25e-6, 8.5e-9);
        let points: Vec<(u64, f64)> = [1024u64, 8192, 65536, 1_048_576]
            .iter()
            .map(|&s| (s, h.p2p_time(s)))
            .collect();
        let fitted = HockneyParams::fit(&points).unwrap();
        assert!((fitted.alpha_secs - 25e-6).abs() < 1e-12);
        assert!((fitted.beta_secs_per_byte - 8.5e-9).abs() < 1e-15);
    }

    #[test]
    fn fit_clamps_small_negative_intercept() {
        // All-large sizes with noise can push the intercept slightly below
        // zero; α must stay non-negative.
        let points = vec![
            (1_000_000u64, 0.00850),
            (2_000_000u64, 0.01699),
            (4_000_000u64, 0.03399),
        ];
        let fitted = HockneyParams::fit(&points).unwrap();
        assert!(fitted.alpha_secs >= 0.0);
    }

    #[test]
    fn fit_rejects_negative_bandwidth() {
        let points = vec![(1000u64, 1.0), (2000u64, 0.5), (4000u64, 0.25)];
        assert!(matches!(
            HockneyParams::fit(&points),
            Err(ModelError::NonPhysical {
                parameter: "beta",
                ..
            })
        ));
    }

    #[test]
    fn fit_needs_two_points() {
        assert!(matches!(
            HockneyParams::fit(&[(1000, 0.001)]),
            Err(ModelError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn bandwidth_inverts_beta() {
        let h = HockneyParams::new(0.0, 8e-9);
        assert!((h.bandwidth_bytes_per_sec() - 1.25e8).abs() < 1.0);
    }
}
