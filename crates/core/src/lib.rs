//! # contention-model — the paper's contribution
//!
//! Implements every model in Steffenel, *Modeling Network Contention
//! Effects on All-to-All Operations* (CLUSTER 2006):
//!
//! * [`hockney`] — the α/β transmission model and the Proposition 1
//!   All-to-All lower bound;
//! * [`med`] — the message exchange digraph with the Claims 1–3 start-up
//!   and bandwidth bounds for arbitrary total-exchange instances;
//! * [`models`] — the related-work baselines (eq. 1 naive linear, Clement's
//!   shared-medium factor, Labarta's bus waves, Chun's size-dependent
//!   latency, Bruck's slowdown factor, LogGP);
//! * [`throughput`] — §6: the `βF`/`βC`/`ρ` synthetic-gap model;
//! * [`signature`] — §7: the contention signature `(γ, δ, M)` with GLS
//!   fitting and breakpoint selection;
//! * [`calibration`] — §8's measurement pipeline, data side;
//! * [`metrics`] — the paper's `(measured/estimated − 1)·100 %` error.
//!
//! The crate is measurement-source-agnostic: it fits from plain
//! `(size, time)` data. The `contention-lab` crate supplies the simulator
//! drivers that generate those inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod collective;
pub mod error;
pub mod hockney;
pub mod med;
pub mod metrics;
pub mod models;
pub mod saturation;
pub mod signature;
pub mod throughput;

/// Commonly used items.
pub mod prelude {
    pub use crate::calibration::{Calibration, CalibrationInput};
    pub use crate::collective::{CollectiveShape, CollectiveSignature};
    pub use crate::error::ModelError;
    pub use crate::hockney::HockneyParams;
    pub use crate::med::Med;
    pub use crate::metrics::{estimation_error_percent, mape, AccuracyPoint};
    pub use crate::models::{
        BruckSlowdownModel, ChunModel, ClementModel, CompletionModel, LabartaModel, LogGpModel,
        NaiveLinearModel,
    };
    pub use crate::saturation::SaturationModel;
    pub use crate::signature::ContentionSignature;
    pub use crate::throughput::ThroughputModel;
}

pub use prelude::*;
