//! Error type for model construction and fitting.

use contention_stats::StatsError;
use std::fmt;

/// Errors raised while fitting or evaluating performance models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The underlying least-squares fit failed.
    Fit(StatsError),
    /// A fitted parameter came out non-physical (e.g. negative bandwidth).
    NonPhysical {
        /// Which parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Not enough measurement points for the requested fit.
    InsufficientSamples {
        /// Minimum required.
        needed: usize,
        /// Provided.
        got: usize,
    },
    /// Inputs contained NaN/inf or were otherwise malformed.
    InvalidInput(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Fit(e) => write!(f, "least-squares fit failed: {e}"),
            ModelError::NonPhysical { parameter, value } => {
                write!(f, "non-physical fitted parameter {parameter} = {value}")
            }
            ModelError::InsufficientSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            ModelError::InvalidInput(what) => write!(f, "invalid input: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<StatsError> for ModelError {
    fn from(e: StatsError) -> Self {
        ModelError::Fit(e)
    }
}
