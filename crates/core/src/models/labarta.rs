//! Labarta et al.'s bus-serialization approximation (DiP / Dimemas).

use super::CompletionModel;
use crate::hockney::HockneyParams;
use serde::{Deserialize, Serialize};

/// Labarta et al. approximate contention by assuming that when `k` messages
/// are ready and only `b` "buses" exist, the messages serialize into
/// `⌈k/b⌉` communication waves. In each All-to-All round, all `n` processes
/// have a message ready, so:
///
/// ```text
/// T(n, m) = (n−1) · ⌈n/b⌉ · (α + β·m)
/// ```
///
/// With `b ≥ n` this degenerates to the naive linear model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabartaModel {
    params: HockneyParams,
    /// Number of simultaneously usable "buses" (crossbar paths).
    pub buses: usize,
}

impl LabartaModel {
    /// Builds the model.
    ///
    /// # Panics
    /// Panics if `buses == 0`.
    pub fn new(params: HockneyParams, buses: usize) -> Self {
        assert!(buses > 0, "at least one bus");
        Self { params, buses }
    }
}

impl CompletionModel for LabartaModel {
    fn name(&self) -> &'static str {
        "labarta-waves"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let waves = n.div_ceil(self.buses) as f64;
        (n - 1) as f64 * waves * self.params.p2p_time(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enough_buses_degenerates_to_naive() {
        let h = HockneyParams::new(1e-6, 1e-9);
        let model = LabartaModel::new(h, 64);
        assert_eq!(model.predict(8, 1000), h.alltoall_lower_bound(8, 1000));
    }

    #[test]
    fn wave_count_ceils() {
        let h = HockneyParams::new(0.0, 1e-9);
        let model = LabartaModel::new(h, 3);
        // n = 7 → ⌈7/3⌉ = 3 waves.
        let expected = 6.0 * 3.0 * h.p2p_time(100);
        assert!((model.predict(7, 100) - expected).abs() < 1e-15);
    }
}
