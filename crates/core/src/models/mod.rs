//! Completion-time models for the All-to-All, including every baseline the
//! paper's related-work section discusses (§2, §6, §7).
//!
//! All models implement [`CompletionModel`]: given a process count `n` and a
//! per-pair message size `m`, predict the collective's completion time.

mod bruck;
mod chun;
mod clement;
mod labarta;
mod loggp;
mod naive;

pub use bruck::BruckSlowdownModel;
pub use chun::ChunModel;
pub use clement::ClementModel;
pub use labarta::LabartaModel;
pub use loggp::LogGpModel;
pub use naive::NaiveLinearModel;

/// A model predicting All-to-All completion time.
pub trait CompletionModel {
    /// Short identifier used in benchmark and experiment output.
    fn name(&self) -> &'static str;

    /// Predicted completion time in seconds for `n` processes exchanging
    /// `m`-byte messages.
    fn predict(&self, n: usize, m: u64) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hockney::HockneyParams;

    fn params() -> HockneyParams {
        HockneyParams::new(50e-6, 8.5e-9)
    }

    /// Every model must be monotone in both n and m on sane inputs.
    #[test]
    fn all_models_are_monotone() {
        let h = params();
        let models: Vec<Box<dyn CompletionModel>> = vec![
            Box::new(NaiveLinearModel::new(h)),
            Box::new(ClementModel::new(50e-6, 1.0 / 8.5e-9)),
            Box::new(LabartaModel::new(h, 8)),
            Box::new(ChunModel::new(
                vec![(8 * 1024, 60e-6), (u64::MAX, 200e-6)],
                8.5e-9,
            )),
            Box::new(BruckSlowdownModel::new(h, 2.0)),
            Box::new(LogGpModel::new(40e-6, 5e-6, 10e-6, 8.5e-9)),
        ];
        for model in &models {
            let base = model.predict(8, 64 * 1024);
            assert!(base > 0.0, "{}", model.name());
            assert!(
                model.predict(16, 64 * 1024) > base,
                "{} not monotone in n",
                model.name()
            );
            assert!(
                model.predict(8, 1024 * 1024) > base,
                "{} not monotone in m",
                model.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let h = params();
        let names = [
            NaiveLinearModel::new(h).name(),
            ClementModel::new(1e-6, 1e8).name(),
            LabartaModel::new(h, 4).name(),
            ChunModel::new(vec![(u64::MAX, 1e-6)], 1e-9).name(),
            BruckSlowdownModel::new(h, 1.5).name(),
            LogGpModel::new(1e-6, 1e-6, 1e-6, 1e-9).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
