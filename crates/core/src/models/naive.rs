//! The contention-blind baseline (paper eq. 1).

use super::CompletionModel;
use crate::hockney::HockneyParams;
use serde::{Deserialize, Serialize};

/// Christara / Pjesivac-Grbovic-style model: the All-to-All as `n−1`
/// parallel scatters, `T = (n−1)·(α + β·m)` — identical to the Proposition 1
/// lower bound, and therefore systematically optimistic once the network
/// saturates. This is the model the contention signature corrects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveLinearModel {
    params: HockneyParams,
}

impl NaiveLinearModel {
    /// Builds the model from Hockney parameters.
    pub fn new(params: HockneyParams) -> Self {
        Self { params }
    }

    /// The underlying Hockney parameters.
    pub fn params(&self) -> &HockneyParams {
        &self.params
    }
}

impl CompletionModel for NaiveLinearModel {
    fn name(&self) -> &'static str {
        "naive-linear"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        self.params.alltoall_lower_bound(n, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_lower_bound() {
        let h = HockneyParams::new(60e-6, 8e-8);
        let model = NaiveLinearModel::new(h);
        assert_eq!(model.predict(24, 65536), h.alltoall_lower_bound(24, 65536));
    }
}
