//! Chun's size-dependent latency model.

use super::CompletionModel;
use serde::{Deserialize, Serialize};

/// Chun treats contention as a component of latency: the per-message
/// latency `L(m)` takes different values for different message-size classes
/// (larger messages cause, and suffer, more contention). Applied to the
/// All-to-All's rounds:
///
/// ```text
/// T(n, m) = (n−1) · (L(m) + β·m)
/// ```
///
/// The paper's criticism (§2, §6): `L(m)` ignores *how many* messages are in
/// flight and the link capacity, both of which drive real contention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunModel {
    /// Size classes as `(upper_bound_inclusive, latency_secs)`, sorted by
    /// bound; the last entry should use `u64::MAX` as a catch-all.
    latency_classes: Vec<(u64, f64)>,
    /// Per-byte gap in seconds.
    pub beta_secs_per_byte: f64,
}

impl ChunModel {
    /// Builds the model from latency classes.
    ///
    /// # Panics
    /// Panics if `latency_classes` is empty or not sorted by bound.
    pub fn new(latency_classes: Vec<(u64, f64)>, beta_secs_per_byte: f64) -> Self {
        assert!(!latency_classes.is_empty(), "need at least one class");
        assert!(
            latency_classes.windows(2).all(|w| w[0].0 < w[1].0),
            "classes must be sorted by upper bound"
        );
        Self {
            latency_classes,
            beta_secs_per_byte,
        }
    }

    /// The latency class for a message of `m` bytes.
    pub fn latency_for(&self, m: u64) -> f64 {
        for &(bound, latency) in &self.latency_classes {
            if m <= bound {
                return latency;
            }
        }
        // Above every bound: use the largest class.
        self.latency_classes.last().expect("non-empty").1
    }
}

impl CompletionModel for ChunModel {
    fn name(&self) -> &'static str {
        "chun-latency"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        (n - 1) as f64 * (self.latency_for(m) + m as f64 * self.beta_secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_steps_by_class() {
        let model = ChunModel::new(
            vec![(1024, 50e-6), (65536, 120e-6), (u64::MAX, 400e-6)],
            8e-9,
        );
        assert_eq!(model.latency_for(100), 50e-6);
        assert_eq!(model.latency_for(1024), 50e-6);
        assert_eq!(model.latency_for(1025), 120e-6);
        assert_eq!(model.latency_for(10_000_000), 400e-6);
    }

    #[test]
    fn prediction_uses_class_latency() {
        let model = ChunModel::new(vec![(1024, 1e-3), (u64::MAX, 2e-3)], 0.0);
        assert!((model.predict(3, 100) - 2.0 * 1e-3).abs() < 1e-15);
        assert!((model.predict(3, 4096) - 2.0 * 2e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_classes_rejected() {
        let _ = ChunModel::new(vec![(2048, 1e-6), (1024, 2e-6)], 1e-9);
    }
}
