//! Bruck et al.'s slowdown-factor correction.

use super::CompletionModel;
use crate::hockney::HockneyParams;
use serde::{Deserialize, Serialize};

/// Bruck et al. "suggested the use of a slowdown factor to correct the
/// performance predictions" (§2): an empirically measured multiplier on the
/// contention-free model. Structurally this is the paper's γ without the
/// affine δ refinement — the signature model strictly generalizes it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BruckSlowdownModel {
    params: HockneyParams,
    /// The measured slowdown multiplier (≥ 1 in practice).
    pub slowdown: f64,
}

impl BruckSlowdownModel {
    /// Builds the model.
    ///
    /// # Panics
    /// Panics on a non-positive slowdown.
    pub fn new(params: HockneyParams, slowdown: f64) -> Self {
        assert!(slowdown > 0.0, "slowdown must be positive");
        Self { params, slowdown }
    }
}

impl CompletionModel for BruckSlowdownModel {
    fn name(&self) -> &'static str {
        "bruck-slowdown"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        self.params.alltoall_lower_bound(n, m) * self.slowdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_lower_bound() {
        let h = HockneyParams::new(1e-6, 1e-9);
        let model = BruckSlowdownModel::new(h, 2.5);
        assert!((model.predict(10, 1000) - 2.5 * h.alltoall_lower_bound(10, 1000)).abs() < 1e-15);
    }
}
