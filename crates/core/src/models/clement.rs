//! Clement, Steed and Crandall's shared-network contention factor
//! (paper eq. 2).

use super::CompletionModel;
use serde::{Deserialize, Serialize};

/// Clement et al. model a transmission on a shared (non-switched) network
/// as `T = l + b·γ/W` with the contention factor `γ` equal to the number of
/// communicating processes — all `n` processes share the single medium.
/// Applied to the All-to-All's `n−1` rounds:
///
/// ```text
/// T(n, m) = (n−1) · (l + m·n / W)
/// ```
///
/// Accurate on hubs and bus networks; pessimistic on switched fabrics,
/// which is exactly the gap the paper's measured signature closes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClementModel {
    /// Link latency `l` in seconds.
    pub latency_secs: f64,
    /// Link bandwidth `W` in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl ClementModel {
    /// Builds the model from link latency and bandwidth.
    ///
    /// # Panics
    /// Panics on non-positive bandwidth.
    pub fn new(latency_secs: f64, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0);
        Self {
            latency_secs,
            bandwidth_bytes_per_sec,
        }
    }
}

impl CompletionModel for ClementModel {
    fn name(&self) -> &'static str {
        "clement-shared"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let gamma = n as f64; // all processes share the medium
        (n - 1) as f64 * (self.latency_secs + m as f64 * gamma / self.bandwidth_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_factor_scales_with_n() {
        let model = ClementModel::new(0.0, 1e8);
        let t4 = model.predict(4, 1_000_000);
        let t8 = model.predict(8, 1_000_000);
        // (n−1)·n scaling: 8·7 / (4·3) = 14/3 ≈ 4.67.
        assert!((t8 / t4 - 56.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_n() {
        assert_eq!(ClementModel::new(1e-6, 1e8).predict(1, 100), 0.0);
    }
}
