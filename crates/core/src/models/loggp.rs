//! A LogGP-based All-to-All model (related work: LoGPC's base model).

use super::CompletionModel;
use serde::{Deserialize, Serialize};

/// LogGP parameters: latency `L`, per-message overhead `o`, per-message gap
/// `g`, per-byte gap `G`. The direct-exchange All-to-All under 1-port
/// sending is gap-limited:
///
/// ```text
/// T(n, m) = (n−1) · max(g, o + m·G) + L + o
/// ```
///
/// Like the Hockney-based eq. 1, this is contention-blind (LoGPC's
/// contention extension required a k-ary n-cube analysis the paper deems
/// impractical, which motivates the measured-signature approach).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogGpModel {
    /// Network latency `L` in seconds.
    pub latency_secs: f64,
    /// Per-message CPU overhead `o` in seconds.
    pub overhead_secs: f64,
    /// Minimum inter-message gap `g` in seconds.
    pub gap_secs: f64,
    /// Per-byte gap `G` in seconds.
    pub gap_per_byte_secs: f64,
}

impl LogGpModel {
    /// Builds the model from the four LogGP parameters.
    pub fn new(
        latency_secs: f64,
        overhead_secs: f64,
        gap_secs: f64,
        gap_per_byte_secs: f64,
    ) -> Self {
        Self {
            latency_secs,
            overhead_secs,
            gap_secs,
            gap_per_byte_secs,
        }
    }
}

impl CompletionModel for LogGpModel {
    fn name(&self) -> &'static str {
        "loggp"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let per_message =
            (self.overhead_secs + m as f64 * self.gap_per_byte_secs).max(self.gap_secs);
        (n - 1) as f64 * per_message + self.latency_secs + self.overhead_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_gap_limited() {
        let model = LogGpModel::new(10e-6, 1e-6, 20e-6, 1e-9);
        // o + mG = 1µs + 1µs ≪ g = 20µs → gap dominates.
        let t = model.predict(5, 1000);
        assert!((t - (4.0 * 20e-6 + 10e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn large_messages_are_bandwidth_limited() {
        let model = LogGpModel::new(10e-6, 1e-6, 20e-6, 1e-9);
        let t = model.predict(5, 1_000_000);
        assert!((t - (4.0 * (1e-6 + 1e-3) + 10e-6 + 1e-6)).abs() < 1e-12);
    }
}
