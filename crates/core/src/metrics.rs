//! Prediction-quality metrics.
//!
//! The paper reports estimation error as `(measured/estimated − 1) × 100 %`
//! (Figs. 8, 11, 14) and claims errors "usually smaller than 10 % when
//! there are enough processes to saturate the network".

use serde::{Deserialize, Serialize};

/// The paper's estimation error in percent: `(measured/estimated − 1)·100`.
/// Positive means the model was optimistic (reality slower than predicted).
pub fn estimation_error_percent(measured: f64, estimated: f64) -> f64 {
    debug_assert!(estimated > 0.0, "estimated time must be positive");
    (measured / estimated - 1.0) * 100.0
}

/// Mean absolute percentage error over paired observations.
pub fn mape(measured: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(measured.len(), estimated.len());
    assert!(!measured.is_empty());
    let sum: f64 = measured
        .iter()
        .zip(estimated)
        .map(|(&m, &e)| estimation_error_percent(m, e).abs())
        .sum();
    sum / measured.len() as f64
}

/// One point of an accuracy report: a `(n, m)` cell with measured and
/// predicted times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Process count.
    pub n: usize,
    /// Message size in bytes.
    pub message_bytes: u64,
    /// Measured completion time, seconds.
    pub measured_secs: f64,
    /// Model-predicted completion time, seconds.
    pub predicted_secs: f64,
}

impl AccuracyPoint {
    /// The paper's error metric for this point.
    pub fn error_percent(&self) -> f64 {
        estimation_error_percent(self.measured_secs, self.predicted_secs)
    }

    /// Whether the prediction is within `tolerance_percent` of measured.
    pub fn within(&self, tolerance_percent: f64) -> bool {
        self.error_percent().abs() <= tolerance_percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_sign_convention_matches_paper() {
        // Measured slower than estimated → positive error.
        assert!((estimation_error_percent(1.1, 1.0) - 10.0).abs() < 1e-9);
        // Measured faster → negative.
        assert!((estimation_error_percent(0.5, 1.0) + 50.0).abs() < 1e-9);
        // Perfect prediction → zero.
        assert_eq!(estimation_error_percent(2.0, 2.0), 0.0);
    }

    #[test]
    fn mape_averages_absolute_errors() {
        let measured = [1.1, 0.9];
        let estimated = [1.0, 1.0];
        assert!((mape(&measured, &estimated) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_point_roundtrip() {
        let p = AccuracyPoint {
            n: 24,
            message_bytes: 65_536,
            measured_secs: 0.105,
            predicted_secs: 0.100,
        };
        assert!((p.error_percent() - 5.0).abs() < 1e-9);
        assert!(p.within(10.0));
        assert!(!p.within(1.0));
    }

    #[test]
    #[should_panic]
    fn mape_requires_matching_lengths() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
