//! The §6 "throughput under contention" approach.
//!
//! Saturating the network with simultaneous point-to-point connections
//! (paper Fig. 3) exposes two per-byte gaps: a contention-free `βF` (the
//! fast connections) and a contended `βC` (the stragglers stalled by TCP
//! loss recovery — the paper's measured values were `βF = 8.502×10⁻⁹ s/B`
//! and `βC = 8.498×10⁻⁸ s/B` on Gigabit Ethernet). Assuming a proportion
//! `ρ` of connections suffer contention, the synthetic gap
//!
//! ```text
//! β = (1 − ρ)·βF + ρ·βC
//! ```
//!
//! plugs into the Proposition 1 formula. The paper uses `ρ = 0.5`
//! ("supposing that at most one of each two connections will be delayed").

use crate::error::ModelError;
use crate::hockney::HockneyParams;
use crate::models::CompletionModel;
use serde::{Deserialize, Serialize};

/// The throughput-under-contention model (paper §6, eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// Start-up latency α in seconds (from an uncontended ping-pong).
    pub alpha_secs: f64,
    /// Contention-free gap `βF` in seconds per byte.
    pub beta_free: f64,
    /// Contended gap `βC` in seconds per byte.
    pub beta_contended: f64,
    /// Proportion of connections assumed delayed by contention.
    pub rho: f64,
}

impl ThroughputModel {
    /// Builds the model from explicit parameters.
    ///
    /// # Panics
    /// Panics if `rho` is outside `[0, 1]` or the gaps are non-positive.
    pub fn new(alpha_secs: f64, beta_free: f64, beta_contended: f64, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho is a proportion");
        assert!(beta_free > 0.0 && beta_contended > 0.0);
        Self {
            alpha_secs,
            beta_free,
            beta_contended,
            rho,
        }
    }

    /// Estimates `βF`/`βC` from a stress run: per-connection completion
    /// times for `bytes`-sized transfers (paper Fig. 3). `βF` comes from the
    /// fastest connection, `βC` from the slowest — the same reading the
    /// paper takes off its figure.
    pub fn from_stress_times(
        alpha_secs: f64,
        bytes: u64,
        times_secs: &[f64],
        rho: f64,
    ) -> Result<Self, ModelError> {
        if times_secs.len() < 2 {
            return Err(ModelError::InsufficientSamples {
                needed: 2,
                got: times_secs.len(),
            });
        }
        if times_secs.iter().any(|t| !t.is_finite() || *t <= 0.0) {
            return Err(ModelError::InvalidInput("non-positive stress time"));
        }
        if bytes == 0 {
            return Err(ModelError::InvalidInput("zero-byte stress transfer"));
        }
        let min = times_secs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times_secs.iter().cloned().fold(0.0, f64::max);
        Ok(Self::new(
            alpha_secs,
            min / bytes as f64,
            max / bytes as f64,
            rho,
        ))
    }

    /// The synthetic gap `β = (1−ρ)·βF + ρ·βC` (paper eq. 3).
    pub fn synthetic_beta(&self) -> f64 {
        (1.0 - self.rho) * self.beta_free + self.rho * self.beta_contended
    }

    /// The synthetic Hockney parameters this model predicts with.
    pub fn synthetic_params(&self) -> HockneyParams {
        HockneyParams::new(self.alpha_secs, self.synthetic_beta())
    }
}

impl CompletionModel for ThroughputModel {
    fn name(&self) -> &'static str {
        "throughput-contention"
    }

    fn predict(&self, n: usize, m: u64) -> f64 {
        self.synthetic_params().alltoall_lower_bound(n, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_reproduce_paper_beta() {
        // §6: βF = 8.502e-9, βC = 8.498189e-8, ρ = 0.5 → β = 4.6742e-8.
        let model = ThroughputModel::new(50e-6, 8.502e-9, 8.498189e-8, 0.5);
        assert!((model.synthetic_beta() - 4.674194e-8).abs() < 1e-12);
    }

    #[test]
    fn rho_zero_is_contention_free() {
        let model = ThroughputModel::new(0.0, 1e-9, 1e-8, 0.0);
        assert_eq!(model.synthetic_beta(), 1e-9);
    }

    #[test]
    fn rho_one_is_fully_contended() {
        let model = ThroughputModel::new(0.0, 1e-9, 1e-8, 1.0);
        assert_eq!(model.synthetic_beta(), 1e-8);
    }

    #[test]
    fn from_stress_times_uses_extremes() {
        let bytes = 32 * 1024 * 1024u64;
        let times = [0.27, 0.30, 0.29, 1.62, 0.28];
        let model = ThroughputModel::from_stress_times(40e-6, bytes, &times, 0.5).unwrap();
        assert!((model.beta_free - 0.27 / bytes as f64).abs() < 1e-18);
        assert!((model.beta_contended - 1.62 / bytes as f64).abs() < 1e-18);
    }

    #[test]
    fn stress_estimation_rejects_bad_input() {
        assert!(ThroughputModel::from_stress_times(0.0, 100, &[0.1], 0.5).is_err());
        assert!(ThroughputModel::from_stress_times(0.0, 100, &[0.1, -1.0], 0.5).is_err());
        assert!(ThroughputModel::from_stress_times(0.0, 0, &[0.1, 0.2], 0.5).is_err());
    }

    #[test]
    fn prediction_scales_like_proposition_1() {
        let model = ThroughputModel::new(50e-6, 8.5e-9, 8.5e-8, 0.5);
        let t = model.predict(40, 1_048_576);
        let expected = 39.0 * (50e-6 + 1_048_576.0 * model.synthetic_beta());
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn invalid_rho_panics() {
        let _ = ThroughputModel::new(0.0, 1e-9, 1e-8, 1.5);
    }
}
