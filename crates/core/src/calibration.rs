//! The end-to-end calibration pipeline (paper §8), data side.
//!
//! The paper's procedure on each network: (1) measure `α`, `β` with "a
//! simple point-to-point measure"; (2) run the All-to-All at one sample
//! process count `n′` across message sizes; (3) regress `(γ, δ, M)` from
//! the gap between measurement and lower bound. This module performs steps
//! 1 and 3 from plain data, so the crate stays independent of any
//! particular measurement source; `contention-lab` supplies the simulator
//! driver that produces the inputs.

use crate::error::ModelError;
use crate::hockney::HockneyParams;
use crate::signature::ContentionSignature;
use serde::{Deserialize, Serialize};

/// Raw measurements feeding a calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationInput {
    /// Ping-pong one-way times: `(payload bytes, seconds)`.
    pub pingpong: Vec<(u64, f64)>,
    /// Sample process count `n′` of the All-to-All measurements.
    pub sample_n: usize,
    /// All-to-All completion times at `sample_n`: `(message bytes, seconds)`.
    pub alltoall: Vec<(u64, f64)>,
}

/// A completed calibration: Hockney parameters plus the fitted signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Point-to-point parameters from step 1.
    pub hockney: HockneyParams,
    /// The network's contention signature from step 3.
    pub signature: ContentionSignature,
}

impl Calibration {
    /// Runs steps 1 and 3 of the paper's procedure on raw measurements.
    pub fn from_measurements(input: &CalibrationInput) -> Result<Self, ModelError> {
        let hockney = HockneyParams::fit(&input.pingpong)?;
        let signature = ContentionSignature::fit(hockney, input.sample_n, &input.alltoall)?;
        Ok(Self { hockney, signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_recovers_planted_parameters() {
        let true_h = HockneyParams::new(60e-6, 8e-8);
        let pingpong: Vec<(u64, f64)> = [1024u64, 16_384, 131_072, 1_048_576]
            .iter()
            .map(|&s| (s, true_h.p2p_time(s)))
            .collect();
        let (n, gamma, delta, cut) = (24usize, 1.0195, 8.23e-3, 2048u64);
        let alltoall: Vec<(u64, f64)> = [2048u64, 16_384, 131_072, 524_288, 1_048_576]
            .iter()
            .map(|&m| {
                let t = (n - 1) as f64
                    * (true_h.p2p_time(m) * gamma + if m >= cut { delta } else { 0.0 });
                (m, t)
            })
            .collect();
        let cal = Calibration::from_measurements(&CalibrationInput {
            pingpong,
            sample_n: n,
            alltoall,
        })
        .unwrap();
        assert!((cal.hockney.alpha_secs - 60e-6).abs() < 1e-10);
        assert!((cal.signature.gamma - gamma).abs() < 1e-4);
        assert!((cal.signature.delta_secs - delta).abs() < 1e-6);
        // Every sampled size is ≥ the true cutoff, so the fitter reports
        // the smallest observed size as the breakpoint.
        assert_eq!(cal.signature.cutoff_bytes, Some(2048));
    }

    #[test]
    fn bad_pingpong_propagates_error() {
        let input = CalibrationInput {
            pingpong: vec![(1024, 0.001)],
            sample_n: 8,
            alltoall: vec![(1024, 0.1); 4],
        };
        assert!(Calibration::from_measurements(&input).is_err());
    }
}
