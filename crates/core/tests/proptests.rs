//! Property-based tests of the modeling layer: MED bounds, signature
//! fitting, and model sanity across randomized inputs.

use contention_model::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Claim 3 on the uniform All-to-All MED equals Proposition 1, for any
    /// size, count and parameters.
    #[test]
    fn claim3_equals_proposition1_on_uniform_alltoall(
        n in 2usize..40,
        m in 1u64..10_000_000,
        alpha_us in 1.0f64..1000.0,
        beta_ns in 0.5f64..100.0,
    ) {
        let params = HockneyParams::new(alpha_us * 1e-6, beta_ns * 1e-9);
        let med = Med::uniform_alltoall(n, m);
        let lhs = med.time_lower_bound(&params);
        let rhs = params.alltoall_lower_bound(n, m);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs));
    }

    /// Adding a message to a MED never lowers any bound (monotonicity).
    #[test]
    fn med_bounds_monotone_under_message_addition(
        msgs in prop::collection::vec((0usize..6, 0usize..6, 1u64..100_000), 1..20),
        extra in (0usize..6, 0usize..6, 1u64..100_000),
    ) {
        let beta = 1e-9;
        let params = HockneyParams::new(1e-6, beta);
        let mut med = Med::new(6);
        for &(s, d, w) in &msgs {
            if s != d {
                med.add_message(s, d, w);
            }
        }
        let before_bw = med.bandwidth_bound(beta);
        let before_su = med.min_startups();
        let before_t = med.time_lower_bound(&params);
        let (s, d, w) = extra;
        if s != d {
            med.add_message(s, d, w);
            prop_assert!(med.bandwidth_bound(beta) >= before_bw);
            prop_assert!(med.min_startups() >= before_su);
            prop_assert!(med.time_lower_bound(&params) >= before_t);
        }
    }

    /// A fitted signature reproduces its own training points when the data
    /// is noise-free, for any planted parameters.
    #[test]
    fn signature_fit_is_self_consistent(
        n in 4usize..64,
        gamma in 0.8f64..8.0,
        delta_ms in 0.0f64..20.0,
        cut_idx in 0usize..6,
    ) {
        let h = HockneyParams::new(60e-6, 8e-9);
        let sizes: Vec<u64> = (1..=8).map(|i| i * 131_072).collect();
        let cut = sizes[cut_idx];
        let delta = delta_ms * 1e-3;
        let samples: Vec<(u64, f64)> = sizes
            .iter()
            .map(|&m| {
                let t = (n - 1) as f64
                    * (h.p2p_time(m) * gamma + if m >= cut { delta } else { 0.0 });
                (m, t)
            })
            .collect();
        let sig = ContentionSignature::fit(h, n, &samples).unwrap();
        for &(m, t) in &samples {
            let p = sig.predict(n, m);
            prop_assert!((p - t).abs() < 1e-6 * (1.0 + t), "m={}: {} vs {}", m, p, t);
        }
    }

    /// Signature predictions scale linearly in (n−1) by construction: the
    /// extrapolation rule the paper relies on.
    #[test]
    fn signature_scales_linearly_in_rounds(
        gamma in 0.8f64..8.0,
        delta_ms in 0.0f64..20.0,
        m in 1024u64..2_000_000,
        n1 in 2usize..30,
        n2 in 2usize..30,
    ) {
        let sig = ContentionSignature {
            hockney: HockneyParams::new(60e-6, 8e-9),
            gamma,
            delta_secs: delta_ms * 1e-3,
            cutoff_bytes: Some(8192),
            sample_n: 8,
            fit_r_squared: 1.0,
        };
        let t1 = sig.predict(n1, m);
        let t2 = sig.predict(n2, m);
        let ratio_t = t1 / t2;
        let ratio_n = (n1 - 1) as f64 / (n2 - 1) as f64;
        prop_assert!((ratio_t - ratio_n).abs() < 1e-9 * (1.0 + ratio_n));
    }

    /// The throughput model's synthetic β interpolates βF..βC for any ρ.
    #[test]
    fn synthetic_beta_interpolates(
        bf_ns in 1.0f64..50.0,
        extra_ns in 1.0f64..500.0,
        rho in 0.0f64..1.0,
    ) {
        let bf = bf_ns * 1e-9;
        let bc = bf + extra_ns * 1e-9;
        let model = ThroughputModel::new(1e-6, bf, bc, rho);
        let beta = model.synthetic_beta();
        prop_assert!(beta >= bf - 1e-18);
        prop_assert!(beta <= bc + 1e-18);
    }

    /// Every baseline model is non-negative and zero-extensible.
    #[test]
    fn baseline_models_are_sane(
        n in 2usize..64,
        m in 1u64..5_000_000,
    ) {
        let h = HockneyParams::new(50e-6, 8.5e-9);
        let models: Vec<Box<dyn CompletionModel>> = vec![
            Box::new(NaiveLinearModel::new(h)),
            Box::new(ClementModel::new(50e-6, 1.25e8)),
            Box::new(LabartaModel::new(h, 4)),
            Box::new(BruckSlowdownModel::new(h, 2.0)),
            Box::new(LogGpModel::new(40e-6, 5e-6, 10e-6, 8.5e-9)),
        ];
        for model in &models {
            let t = model.predict(n, m);
            prop_assert!(t.is_finite() && t > 0.0, "{}: {}", model.name(), t);
            prop_assert_eq!(model.predict(1, m), 0.0, "{}", model.name());
        }
    }

    /// The paper's error metric is antisymmetric-ish around perfect
    /// prediction and zero exactly there.
    #[test]
    fn error_metric_sign_convention(measured in 0.001f64..100.0, estimated in 0.001f64..100.0) {
        let e = estimation_error_percent(measured, estimated);
        if measured > estimated {
            prop_assert!(e > 0.0);
        } else if measured < estimated {
            prop_assert!(e < 0.0);
        } else {
            prop_assert_eq!(e, 0.0);
        }
    }

    /// Hockney fitting round-trips through noise-free synthetic data.
    #[test]
    fn hockney_fit_roundtrips(
        alpha_us in 0.0f64..1000.0,
        beta_ns in 0.5f64..100.0,
    ) {
        let h = HockneyParams::new(alpha_us * 1e-6, beta_ns * 1e-9);
        let points: Vec<(u64, f64)> = [1024u64, 32_768, 262_144, 1_048_576]
            .iter()
            .map(|&s| (s, h.p2p_time(s)))
            .collect();
        let fit = HockneyParams::fit(&points).unwrap();
        prop_assert!((fit.alpha_secs - h.alpha_secs).abs() < 1e-9 + 1e-6 * h.alpha_secs);
        prop_assert!((fit.beta_secs_per_byte - h.beta_secs_per_byte).abs() < 1e-12);
    }
}
