//! Per-connection transport state machines.
//!
//! Two transports share one skeleton (a reliable, windowed byte stream with
//! message framing):
//!
//! * **TCP-like** (`TransportKind::Tcp`): slow start, AIMD congestion
//!   avoidance, Jacobson RTT estimation, a retransmission timeout with a
//!   200 ms floor and exponential backoff, and NewReno-style fast
//!   retransmit/recovery on three duplicate ACKs. Packet loss at exhausted
//!   switch buffers plus these timeouts are exactly the paper's contention
//!   mechanism ("the slowdown observed in some connections is mostly related
//!   to the time required to detect the loss of TCP packets and their
//!   subsequent retransmission", §3).
//! * **GM-like** (`TransportKind::Gm`): a fixed window, no congestion
//!   control and no retransmission timer — the network is configured
//!   lossless, as Myrinet's link-level backpressure guarantees.
//!
//! Methods mutate the connection and return [`SendActions`]/[`RecvActions`]
//! describing packets to inject and notifications to raise; the engine
//! applies them. This keeps the borrow graph trivial and the state machine
//! unit-testable without a network.

use crate::config::TransportKind;
use crate::ids::{ConnId, HostId};
use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// A run of data segments the engine should inject at the connection's
/// first hop: `count` back-to-back segments of `len` bytes each, segment
/// `i` starting at stream byte `seq + i·len`.
///
/// A window fill emits dozens to hundreds of contiguous same-size
/// segments; representing them as one run keeps the action vector at a
/// handful of entries and hands the engine exactly the shape
/// `EventQueue::push_run` compresses. [`Connection::pump`] coalesces as it
/// emits, so a run never mixes lengths or retransmit flags — a trailing
/// partial segment or a Karn-boundary crossing starts a new run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRun {
    /// First stream byte of the run's first segment.
    pub seq: u64,
    /// Payload length of every segment in the run.
    pub len: u32,
    /// Number of segments (≥ 1).
    pub count: u32,
    /// True if these segments are retransmissions (counted, and exempt
    /// from RTT sampling per Karn's rule).
    pub retransmit: bool,
}

impl SegmentRun {
    /// One stream byte past the run's last segment.
    pub fn end(&self) -> u64 {
        self.seq + self.count as u64 * self.len as u64
    }

    /// Total payload bytes across the run.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.len as u64
    }

    /// The run's segments as `(seq, len)` pairs, in stream order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..self.count).map(move |i| (self.seq + i as u64 * self.len as u64, self.len))
    }
}

/// Retransmission-timer command returned to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerCmd {
    /// Leave the timer as it is.
    #[default]
    Keep,
    /// (Re-)arm the timer at the given absolute deadline.
    Arm(SimTime),
    /// Disarm the timer (all data acknowledged).
    Disarm,
}

/// Sender-side reaction to an event.
#[derive(Debug, Default)]
pub struct SendActions {
    /// Segment runs to inject on the forward route, in stream order.
    pub segments: Vec<SegmentRun>,
    /// Tags of messages whose final byte has just been acknowledged.
    pub send_done: Vec<u64>,
    /// Timer update.
    pub timer: TimerCmd,
    /// A fast retransmit was triggered (for counters).
    pub fast_retransmit: bool,
    /// A retransmission timeout was taken (for counters).
    pub timeout: bool,
}

impl SendActions {
    /// Appends one segment, extending the trailing run when it is
    /// contiguous with it and shares its length and retransmit flag.
    /// Coalescing is representational only: the engine injects a run
    /// exactly as it would the equivalent individual segments.
    fn emit_segment(&mut self, seq: u64, len: u32, retransmit: bool) {
        if let Some(last) = self.segments.last_mut() {
            if last.retransmit == retransmit && last.len == len && last.end() == seq {
                last.count += 1;
                return;
            }
        }
        self.segments.push(SegmentRun {
            seq,
            len,
            count: 1,
            retransmit,
        });
    }
}

/// Receiver-side reaction to a data segment.
#[derive(Debug, Default)]
pub struct RecvActions {
    /// Cumulative acknowledgement to emit on the reverse route.
    pub ack: Option<u64>,
    /// Tags of messages fully received, in order.
    pub delivered: Vec<u64>,
}

/// One unidirectional transport connection between two hosts.
///
/// Holds both endpoints' state (the simulator is omniscient): the sender
/// half lives at `src`, the receiver half at `dst`. Message framing is
/// shared out of band — the application's `send` records byte boundaries
/// that the receiver half uses to report whole-message deliveries, standing
/// in for the MPI envelope.
#[derive(Debug)]
pub struct Connection {
    /// Connection id (index in the engine's arena).
    pub id: ConnId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    kind: TransportKind,
    mtu: u64,
    max_window: u64,

    // Sender half.
    stream_len: u64,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    srtt_ns: f64,
    rttvar_ns: f64,
    rto_ns: u64,
    has_rtt: bool,
    rtt_probe: Option<(u64, SimTime)>,
    /// Karn's rule across go-back-N: no RTT sampling below this sequence
    /// (bytes that may have been transmitted more than once).
    probe_floor: u64,
    msgs_out: VecDeque<(u64, u64)>,
    /// Engine bookkeeping: current timer deadline, if armed.
    pub(crate) timer_deadline: Option<SimTime>,
    /// Engine bookkeeping: a timer event is sitting in the queue.
    pub(crate) timer_pushed: bool,
    /// Engine bookkeeping: monotonic clamp for jittered data injections.
    pub(crate) last_data_inject: SimTime,
    /// Engine bookkeeping: monotonic clamp for jittered ACK injections.
    pub(crate) last_ack_inject: SimTime,

    // Receiver half.
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    msgs_in: VecDeque<(u64, u64)>,
}

impl Connection {
    /// Creates an idle connection. Routes are not held here: the engine
    /// resolves a packet's route through its own `flow → RouteId` table.
    pub fn new(id: ConnId, src: HostId, dst: HostId, kind: TransportKind) -> Self {
        let mtu = kind.mtu() as u64;
        let max_window = kind.window_bytes().max(mtu);
        let (cwnd, rto_ns) = match kind {
            TransportKind::Tcp(c) => (
                (c.initial_cwnd_segments as u64 * mtu) as f64,
                c.initial_rto_ns,
            ),
            TransportKind::Gm(_) => (max_window as f64, u64::MAX),
        };
        Self {
            id,
            src,
            dst,
            kind,
            mtu,
            max_window,
            stream_len: 0,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: max_window as f64,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rto_ns,
            has_rtt: false,
            rtt_probe: None,
            probe_floor: 0,
            msgs_out: VecDeque::new(),
            timer_deadline: None,
            timer_pushed: false,
            last_data_inject: SimTime::ZERO,
            last_ack_inject: SimTime::ZERO,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            msgs_in: VecDeque::new(),
        }
    }

    fn is_tcp(&self) -> bool {
        matches!(self.kind, TransportKind::Tcp(_))
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn flight(&self) -> u64 {
        debug_assert!(self.snd_nxt >= self.snd_una, "frontier behind ack point");
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    /// True when every byte handed to `on_app_send` has been acknowledged.
    pub fn quiescent(&self) -> bool {
        self.snd_una == self.stream_len
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current retransmission timeout in nanoseconds (diagnostics).
    pub fn rto_nanos(&self) -> u64 {
        self.rto_ns
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd as u64).min(self.max_window)
    }

    /// Application queues `len` bytes tagged `tag` on the stream.
    pub fn on_app_send(&mut self, len: u64, tag: u64, now: SimTime) -> SendActions {
        assert!(len > 0, "zero-length messages are framed by the MPI layer");
        self.stream_len += len;
        self.msgs_out.push_back((self.stream_len, tag));
        self.msgs_in.push_back((self.stream_len, tag));
        let mut actions = SendActions::default();
        self.pump(now, &mut actions);
        actions
    }

    /// Fills the window with new segments.
    fn pump(&mut self, now: SimTime, actions: &mut SendActions) {
        let had_flight = self.flight() > 0;
        loop {
            let remaining = self.stream_len - self.snd_nxt;
            if remaining == 0 {
                break;
            }
            let seg = remaining.min(self.mtu);
            let flight = self.flight();
            // A whole segment must fit in the window — except that an idle
            // sender may always emit one segment, so a post-RTO congestion
            // window below one MTU cannot deadlock the stream.
            if flight > 0 && flight + seg > self.effective_window() {
                break;
            }
            let len = seg as u32;
            let seq = self.snd_nxt;
            let retransmit = seq < self.probe_floor; // go-back-N resend
            self.snd_nxt += len as u64;
            if self.rtt_probe.is_none() && seq >= self.probe_floor {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            actions.emit_segment(seq, len, retransmit);
        }
        if !had_flight && self.flight() > 0 && self.is_tcp() {
            actions.timer = TimerCmd::Arm(now + self.rto_ns);
        }
    }

    /// Receiver half: a data segment arrived at `dst`.
    pub fn on_data(&mut self, seq: u64, len: u32, _now: SimTime) -> RecvActions {
        let end = seq + len as u64;
        if end > self.rcv_nxt {
            if seq <= self.rcv_nxt {
                // In-order (possibly partially duplicate): advance.
                self.rcv_nxt = end;
                // Merge any out-of-order runs now contiguous.
                while let Some((&start, &run_end)) = self.ooo.iter().next() {
                    if start > self.rcv_nxt {
                        break;
                    }
                    self.ooo.remove(&start);
                    self.rcv_nxt = self.rcv_nxt.max(run_end);
                }
            } else {
                // Out of order: record the run, coalescing overlaps lazily.
                let entry = self.ooo.entry(seq).or_insert(end);
                *entry = (*entry).max(end);
            }
        }
        let mut actions = RecvActions {
            ack: Some(self.rcv_nxt),
            delivered: Vec::new(),
        };
        while let Some(&(msg_end, tag)) = self.msgs_in.front() {
            if msg_end <= self.rcv_nxt {
                self.msgs_in.pop_front();
                actions.delivered.push(tag);
            } else {
                break;
            }
        }
        actions
    }

    /// Sender half: a cumulative ACK arrived back at `src`.
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> SendActions {
        let mut actions = SendActions::default();
        if ack > self.snd_una {
            let bytes_acked = ack - self.snd_una;
            self.snd_una = ack;
            // After a go-back-N rewind, ACKs for the pre-timeout flight can
            // overtake the rewound frontier; transmission resumes from the
            // acknowledged point.
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.dupacks = 0;
            // Karn-compliant RTT sample.
            if let Some((probe_end, sent_at)) = self.rtt_probe {
                if ack >= probe_end {
                    self.rtt_sample(now.since(sent_at));
                    self.rtt_probe = None;
                }
            }
            while let Some(&(msg_end, tag)) = self.msgs_out.front() {
                if msg_end <= self.snd_una {
                    self.msgs_out.pop_front();
                    actions.send_done.push(tag);
                } else {
                    break;
                }
            }
            if self.is_tcp() {
                if self.in_recovery {
                    if ack >= self.recover {
                        self.in_recovery = false;
                        self.cwnd = self.ssthresh;
                    } else {
                        // NewReno partial ACK: retransmit the next hole,
                        // deflate by the acked amount, inflate by one MTU.
                        let len = (self.snd_nxt - self.snd_una).min(self.mtu) as u32;
                        if len > 0 {
                            actions.emit_segment(self.snd_una, len, true);
                            self.rtt_probe = None;
                        }
                        self.cwnd =
                            (self.cwnd - bytes_acked as f64 + self.mtu as f64).max(self.mtu as f64);
                    }
                } else if self.cwnd < self.ssthresh {
                    // Slow start.
                    self.cwnd = (self.cwnd + bytes_acked as f64).min(self.max_window as f64);
                } else {
                    // Congestion avoidance: one MTU per window's worth.
                    self.cwnd = (self.cwnd + self.mtu as f64 * self.mtu as f64 / self.cwnd)
                        .min(self.max_window as f64);
                }
                actions.timer = if self.snd_una == self.snd_nxt {
                    TimerCmd::Disarm
                } else {
                    TimerCmd::Arm(now + self.rto_ns)
                };
            }
            self.pump(now, &mut actions);
        } else if ack == self.snd_una && self.flight() > 0 && self.is_tcp() {
            self.dupacks += 1;
            let threshold = match self.kind {
                TransportKind::Tcp(c) => c.dupack_threshold,
                TransportKind::Gm(_) => u32::MAX,
            };
            if self.dupacks == threshold && !self.in_recovery {
                // Fast retransmit + NewReno recovery.
                let flight = self.flight() as f64;
                self.ssthresh = (flight / 2.0).max(2.0 * self.mtu as f64);
                self.cwnd = self.ssthresh + 3.0 * self.mtu as f64;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                let len = (self.snd_nxt - self.snd_una).min(self.mtu) as u32;
                actions.emit_segment(self.snd_una, len, true);
                self.rtt_probe = None;
                actions.fast_retransmit = true;
                actions.timer = TimerCmd::Arm(now + self.rto_ns);
            } else if self.in_recovery {
                self.cwnd += self.mtu as f64;
                self.pump(now, &mut actions);
            }
        }
        actions
    }

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: SimTime) -> SendActions {
        let mut actions = SendActions::default();
        if self.flight() == 0 || !self.is_tcp() {
            actions.timer = TimerCmd::Disarm;
            return actions;
        }
        let (min_rto, max_rto) = match self.kind {
            TransportKind::Tcp(c) => (c.min_rto_ns, c.max_rto_ns),
            TransportKind::Gm(_) => unreachable!("GM never arms the timer"),
        };
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.mtu as f64);
        self.cwnd = self.mtu as f64;
        self.in_recovery = false;
        self.dupacks = 0;
        // Karn: no RTT samples from anything at or below the old frontier —
        // those bytes may now be transmitted twice.
        self.rtt_probe = None;
        self.probe_floor = self.probe_floor.max(self.snd_nxt);
        self.rto_ns = (self.rto_ns.saturating_mul(2)).clamp(min_rto, max_rto);
        // Go-back-N: resume transmission from the first unacknowledged
        // byte. Cumulative ACKs skip whatever the receiver already holds,
        // and slow start refills the window without requiring a separate
        // timeout per hole (serial-RTO starvation is not how TCP behaves).
        self.snd_nxt = self.snd_una;
        self.pump(now, &mut actions);
        actions.timeout = true;
        actions.timer = TimerCmd::Arm(now + self.rto_ns);
        actions
    }

    fn rtt_sample(&mut self, sample_ns: u64) {
        let sample = sample_ns as f64;
        if !self.has_rtt {
            self.srtt_ns = sample;
            self.rttvar_ns = sample / 2.0;
            self.has_rtt = true;
        } else {
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - sample).abs();
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * sample;
        }
        if let TransportKind::Tcp(c) = self.kind {
            let rto = self.srtt_ns + 4.0 * self.rttvar_ns;
            self.rto_ns = (rto as u64).clamp(c.min_rto_ns, c.max_rto_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmConfig, TcpConfig};

    fn conn(kind: TransportKind) -> Connection {
        Connection::new(
            ConnId::from_index(0),
            HostId::from_index(0),
            HostId::from_index(1),
            kind,
        )
    }

    fn tcp() -> Connection {
        conn(TransportKind::Tcp(TcpConfig::default()))
    }

    /// Expands the run-compressed segment list into per-segment
    /// `(seq, len, retransmit)` triples, the shape the engine injects.
    fn flat(a: &SendActions) -> Vec<(u64, u32, bool)> {
        a.segments
            .iter()
            .flat_map(|r| r.iter().map(|(seq, len)| (seq, len, r.retransmit)))
            .collect()
    }

    #[test]
    fn initial_send_respects_initial_cwnd() {
        let mut c = tcp();
        let a = c.on_app_send(100_000, 1, SimTime::ZERO);
        // initial cwnd = 2 segments, coalesced into one contiguous run.
        assert_eq!(flat(&a), vec![(0, 1460, false), (1460, 1460, false)]);
        assert_eq!(
            a.segments.len(),
            1,
            "contiguous same-size segments coalesce"
        );
        assert!(matches!(a.timer, TimerCmd::Arm(_)));
        assert_eq!(c.flight(), 2920);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = tcp();
        let _ = c.on_app_send(1_000_000, 1, SimTime::ZERO);
        let before = c.cwnd_bytes();
        // Ack both initial segments.
        let a = c.on_ack(2920, SimTime(1_000_000));
        assert!(c.cwnd_bytes() >= before + 2920);
        // Acking opened the window: roughly twice as many segments go out.
        assert!(flat(&a).len() >= 3, "got {}", flat(&a).len());
    }

    #[test]
    fn in_order_delivery_reports_messages() {
        let mut c = tcp();
        let _ = c.on_app_send(2000, 7, SimTime::ZERO);
        let r1 = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r1.ack, Some(1460));
        assert!(r1.delivered.is_empty());
        let r2 = c.on_data(1460, 540, SimTime(20));
        assert_eq!(r2.ack, Some(2000));
        assert_eq!(r2.delivered, vec![7]);
    }

    #[test]
    fn out_of_order_data_held_then_merged() {
        let mut c = tcp();
        let _ = c.on_app_send(4380, 9, SimTime::ZERO);
        let r = c.on_data(1460, 1460, SimTime(10));
        assert_eq!(r.ack, Some(0), "dup-ack for the hole");
        let r = c.on_data(2920, 1460, SimTime(20));
        assert_eq!(r.ack, Some(0));
        let r = c.on_data(0, 1460, SimTime(30));
        assert_eq!(r.ack, Some(4380), "hole filled merges the whole run");
        assert_eq!(r.delivered, vec![9]);
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut c = tcp();
        let _ = c.on_app_send(1460, 3, SimTime::ZERO);
        let r1 = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r1.delivered, vec![3]);
        let r2 = c.on_data(0, 1460, SimTime(20));
        assert_eq!(r2.ack, Some(1460));
        assert!(r2.delivered.is_empty());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100)); // grow window a bit
        let mut fast = false;
        for i in 0..3 {
            let a = c.on_ack(2920, SimTime(200 + i));
            if a.fast_retransmit {
                fast = true;
                assert_eq!(flat(&a).len(), 1);
                assert!(a.segments[0].retransmit);
                assert_eq!(a.segments[0].seq, 2920);
            }
        }
        assert!(fast, "third duplicate ACK must fast-retransmit");
    }

    #[test]
    fn rto_backs_off_and_retransmits_head() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let rto_before = c.rto_nanos();
        let a = c.on_rto(SimTime(rto_before));
        assert!(a.timeout);
        assert_eq!(flat(&a), vec![(0, 1460, true)]);
        assert_eq!(c.cwnd_bytes(), 1460);
        assert!(c.rto_nanos() >= rto_before, "exponential backoff");
    }

    #[test]
    fn rto_with_nothing_outstanding_disarms() {
        let mut c = tcp();
        let a = c.on_rto(SimTime(0));
        assert!(!a.timeout);
        assert_eq!(a.timer, TimerCmd::Disarm);
    }

    #[test]
    fn send_done_reported_when_fully_acked() {
        let mut c = tcp();
        let _ = c.on_app_send(1000, 42, SimTime::ZERO);
        let a = c.on_ack(1000, SimTime(500_000));
        assert_eq!(a.send_done, vec![42]);
        assert!(c.quiescent());
        assert_eq!(a.timer, TimerCmd::Disarm);
    }

    #[test]
    fn rtt_sample_updates_rto() {
        let mut c = tcp();
        let _ = c.on_app_send(1460, 1, SimTime::ZERO);
        let _ = c.on_ack(1460, SimTime(50_000_000)); // 50 ms RTT
                                                     // RTO = srtt + 4*rttvar = 50ms + 4*25ms = 150ms → clamped to 200ms.
        assert_eq!(c.rto_nanos(), 200_000_000);
        let mut c2 = tcp();
        let _ = c2.on_app_send(1460, 1, SimTime::ZERO);
        let _ = c2.on_ack(1460, SimTime(200_000_000)); // 200 ms RTT
        assert_eq!(c2.rto_nanos(), 600_000_000);
    }

    #[test]
    fn gm_uses_full_window_immediately() {
        let mut c = conn(TransportKind::Gm(GmConfig {
            mtu: 4096,
            window_bytes: 16 * 4096,
        }));
        let a = c.on_app_send(1_000_000, 1, SimTime::ZERO);
        assert_eq!(flat(&a).len(), 16, "fixed window fills at once");
        assert_eq!(
            a.segments,
            vec![SegmentRun {
                seq: 0,
                len: 4096,
                count: 16,
                retransmit: false,
            }],
            "a window fill is one run, not 16 entries"
        );
        assert_eq!(a.timer, TimerCmd::Keep, "GM never arms the RTO timer");
    }

    #[test]
    fn gm_ack_advances_without_congestion_control() {
        let mut c = conn(TransportKind::Gm(GmConfig::default()));
        let _ = c.on_app_send(10 * 4096, 1, SimTime::ZERO);
        let w = c.cwnd_bytes();
        let a = c.on_ack(4096, SimTime(1000));
        assert_eq!(c.cwnd_bytes(), w, "window is fixed");
        assert_eq!(a.segments.len(), 0, "stream already fully in flight");
        let a = c.on_ack(10 * 4096, SimTime(2000));
        assert_eq!(a.send_done, vec![1]);
    }

    #[test]
    fn multiple_messages_share_the_stream_in_order() {
        let mut c = tcp();
        let _ = c.on_app_send(1000, 1, SimTime::ZERO);
        let _ = c.on_app_send(1000, 2, SimTime::ZERO);
        let r = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r.delivered, vec![1]);
        let r = c.on_data(1460, 540, SimTime(20));
        assert_eq!(r.delivered, vec![2]);
    }

    #[test]
    fn late_ack_after_go_back_n_does_not_wedge() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100)); // window opens, more in flight
        let frontier = c.snd_nxt;
        assert!(frontier > 2920);
        // Timeout rewinds the frontier to snd_una.
        let a = c.on_rto(SimTime(1_000_000_000));
        assert!(a.timeout);
        // A straggling ACK for the original flight overtakes the rewind.
        let late_ack = frontier;
        let a = c.on_ack(late_ack, SimTime(1_000_000_100));
        assert!(c.flight() <= c.cwnd_bytes() + 1460);
        assert!(!a.segments.is_empty(), "transmission resumes past the ack");
        assert!(flat(&a).iter().all(|&(seq, _, _)| seq >= late_ack));
        // The stream must still be able to finish.
        let _ = c.on_ack(100_000, SimTime(2_000_000_000));
        assert!(c.quiescent());
    }

    #[test]
    fn rto_rewinds_and_resends_from_una() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(1460, SimTime(100));
        let a = c.on_rto(SimTime(1_000_000_000));
        assert!(a.timeout);
        assert_eq!(
            flat(&a),
            vec![(1460, 1460, true)],
            "cwnd=1 after timeout; go-back-N restarts at snd_una"
        );
    }

    #[test]
    fn runs_split_at_the_partial_tail() {
        // 10 full GM frames plus a 100-byte tail: one 10-segment run, then
        // a separate single-segment run (lengths never mix within a run).
        let mut c = conn(TransportKind::Gm(GmConfig::default()));
        let a = c.on_app_send(10 * 4096 + 100, 1, SimTime::ZERO);
        assert_eq!(
            a.segments,
            vec![
                SegmentRun {
                    seq: 0,
                    len: 4096,
                    count: 10,
                    retransmit: false,
                },
                SegmentRun {
                    seq: 10 * 4096,
                    len: 100,
                    count: 1,
                    retransmit: false,
                },
            ]
        );
        assert_eq!(a.segments[0].end(), 10 * 4096);
        assert_eq!(a.segments[0].total_bytes(), 10 * 4096);
    }

    #[test]
    fn recovery_exits_at_recover_point() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100));
        for i in 0..3 {
            let _ = c.on_ack(2920, SimTime(200 + i));
        }
        assert!(c.in_recovery);
        let recover = c.recover;
        let _ = c.on_ack(recover, SimTime(400));
        assert!(!c.in_recovery);
        assert_eq!(c.cwnd_bytes() as f64, c.ssthresh);
    }
}
