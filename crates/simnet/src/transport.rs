//! Per-connection transport state machines, stored columnar.
//!
//! Two transports share one skeleton (a reliable, windowed byte stream with
//! message framing):
//!
//! * **TCP-like** (`TransportKind::Tcp`): slow start, AIMD congestion
//!   avoidance, Jacobson RTT estimation, a retransmission timeout with a
//!   200 ms floor and exponential backoff, and NewReno-style fast
//!   retransmit/recovery on three duplicate ACKs. Packet loss at exhausted
//!   switch buffers plus these timeouts are exactly the paper's contention
//!   mechanism ("the slowdown observed in some connections is mostly related
//!   to the time required to detect the loss of TCP packets and their
//!   subsequent retransmission", §3).
//! * **GM-like** (`TransportKind::Gm`): a fixed window, no congestion
//!   control and no retransmission timer — the network is configured
//!   lossless, as Myrinet's link-level backpressure guarantees.
//!
//! # Hot/cold state split
//!
//! The engine processes one delivery or ACK per host event, across
//! thousands of connections, so per-connection state is split into two
//! columns the engine stores in parallel arenas:
//!
//! * [`ConnHot`] — the 64-byte block (one cache line, compile-time
//!   asserted) holding every field the steady-state delivery/ACK
//!   arithmetic touches: `snd_una`, `snd_nxt`, `rcv_nxt`, the delivery
//!   boundary, `cwnd`/`ssthresh`/window/MTU, the duplicate-ACK counter and
//!   the recovery/OOO flags.
//! * [`ConnCold`] — everything else: identity, RTT estimation, timer and
//!   injection bookkeeping, the message-boundary queues and the
//!   out-of-order reassembly map. Its POD front (`stream_len`, Karn
//!   fields, `rto_ns`, `recover`) is laid out first so the paths that do
//!   spill read one predictable line.
//!
//! The common-case *data delivery* — in-order, mid-message, nothing
//! buffered out of order — is handled entirely by
//! [`ConnHot::on_data_fast`], an inherent method on the hot block that by
//! construction cannot read or write a cold field: one cache line per
//! delivery. ACK processing reads [`ConnHot`] for all congestion/window
//! arithmetic and spills to the cold front only for what genuinely lives
//! there (the Karn probe check, message-completion pops, the RTO re-arm).
//!
//! Methods mutate the connection and return [`SendActions`]/[`RecvActions`]
//! describing packets to inject and notifications to raise; the engine
//! applies them. This keeps the borrow graph trivial and the state machine
//! unit-testable without a network.

use crate::config::TransportKind;
use crate::ids::{ConnId, HostId};
use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// A run of data segments the engine should inject at the connection's
/// first hop: `count` back-to-back segments of `len` bytes each, segment
/// `i` starting at stream byte `seq + i·len`.
///
/// A window fill emits dozens to hundreds of contiguous same-size
/// segments; representing them as one run keeps the action vector at a
/// handful of entries and hands the engine exactly the shape
/// `EventQueue::push_run` compresses. `ConnView::pump` coalesces as it
/// emits, so a run never mixes lengths or retransmit flags — a trailing
/// partial segment or a Karn-boundary crossing starts a new run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRun {
    /// First stream byte of the run's first segment.
    pub seq: u64,
    /// Payload length of every segment in the run.
    pub len: u32,
    /// Number of segments (≥ 1).
    pub count: u32,
    /// True if these segments are retransmissions (counted, and exempt
    /// from RTT sampling per Karn's rule).
    pub retransmit: bool,
}

impl SegmentRun {
    /// One stream byte past the run's last segment.
    pub fn end(&self) -> u64 {
        self.seq + self.count as u64 * self.len as u64
    }

    /// Total payload bytes across the run.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.len as u64
    }

    /// The run's segments as `(seq, len)` pairs, in stream order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..self.count).map(move |i| (self.seq + i as u64 * self.len as u64, self.len))
    }
}

/// Retransmission-timer command returned to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerCmd {
    /// Leave the timer as it is.
    #[default]
    Keep,
    /// (Re-)arm the timer at the given absolute deadline.
    Arm(SimTime),
    /// Disarm the timer (all data acknowledged).
    Disarm,
}

/// Sender-side reaction to an event.
#[derive(Debug, Default)]
pub struct SendActions {
    /// Segment runs to inject on the forward route, in stream order.
    pub segments: Vec<SegmentRun>,
    /// Tags of messages whose final byte has just been acknowledged.
    pub send_done: Vec<u64>,
    /// Timer update.
    pub timer: TimerCmd,
    /// A fast retransmit was triggered (for counters).
    pub fast_retransmit: bool,
    /// A retransmission timeout was taken (for counters).
    pub timeout: bool,
}

impl SendActions {
    /// Appends one segment, extending the trailing run when it is
    /// contiguous with it and shares its length and retransmit flag.
    /// Coalescing is representational only: the engine injects a run
    /// exactly as it would the equivalent individual segments.
    fn emit_segment(&mut self, seq: u64, len: u32, retransmit: bool) {
        if let Some(last) = self.segments.last_mut() {
            if last.retransmit == retransmit && last.len == len && last.end() == seq {
                last.count += 1;
                return;
            }
        }
        self.segments.push(SegmentRun {
            seq,
            len,
            count: 1,
            retransmit,
        });
    }
}

/// Receiver-side reaction to a data segment.
#[derive(Debug, Default)]
pub struct RecvActions {
    /// Cumulative acknowledgement to emit on the reverse route.
    pub ack: Option<u64>,
    /// Tags of messages fully received, in order.
    pub delivered: Vec<u64>,
}

/// `ConnHot::flags`: the transport runs TCP congestion control (else GM).
const FLAG_TCP: u16 = 1 << 0;
/// `ConnHot::flags`: the sender is inside NewReno fast recovery.
const FLAG_RECOVERY: u16 = 1 << 1;
/// `ConnHot::flags`: the receiver holds buffered out-of-order runs
/// (`ConnCold::ooo` is non-empty), so an in-order arrival must attempt a
/// merge on the slow path.
const FLAG_OOO: u16 = 1 << 2;

/// Sentinel for [`ConnHot::next_delivery`] when no message is in flight.
const NO_BOUNDARY: u64 = u64::MAX;

/// The hot column of one connection: the fields the per-delivery / per-ACK
/// state machine reads and writes in steady state, packed into one cache
/// line. The engine keeps one dense `Vec<ConnHot>` so a delivery touches
/// this line instead of scattering across a ~350-byte struct.
///
/// The `const` assertion below makes any regrowth (a new field, a widened
/// one) a compile error instead of a silent hot-loop slowdown — the same
/// discipline as `PackedPacket` and the event-queue nodes.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct ConnHot {
    /// First unacknowledged stream byte (sender half).
    pub snd_una: u64,
    /// Transmission frontier: next stream byte to send.
    pub snd_nxt: u64,
    /// Receiver half: next in-order byte expected.
    pub rcv_nxt: u64,
    /// Stream offset at which the oldest undelivered incoming message
    /// completes ([`NO_BOUNDARY`] when none): the delivery fast-path gate.
    /// Invariant: strictly greater than `rcv_nxt` while messages are
    /// outstanding (completed messages are popped eagerly).
    next_delivery: u64,
    /// Congestion window in bytes (f64: AIMD growth is fractional).
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    /// Hard window cap (receiver window / fixed GM window), bytes.
    max_window: u64,
    /// Segment payload size, bytes.
    mtu: u32,
    /// Duplicate-ACK counter.
    dupacks: u16,
    /// `FLAG_*` bits.
    flags: u16,
}

const _: () = assert!(
    std::mem::size_of::<ConnHot>() <= 64,
    "ConnHot must stay within one 64-byte cache line: every delivery and ACK touches it"
);

impl ConnHot {
    fn new(kind: TransportKind) -> Self {
        let mtu = kind.mtu();
        let max_window = kind.window_bytes().max(mtu as u64);
        let (cwnd, flags) = match kind {
            TransportKind::Tcp(c) => (
                (c.initial_cwnd_segments as u64 * mtu as u64) as f64,
                FLAG_TCP,
            ),
            TransportKind::Gm(_) => (max_window as f64, 0),
        };
        Self {
            snd_una: 0,
            snd_nxt: 0,
            rcv_nxt: 0,
            next_delivery: NO_BOUNDARY,
            cwnd,
            ssthresh: max_window as f64,
            max_window,
            mtu,
            dupacks: 0,
            flags,
        }
    }

    #[inline]
    fn is_tcp(&self) -> bool {
        self.flags & FLAG_TCP != 0
    }

    #[inline]
    fn in_recovery(&self) -> bool {
        self.flags & FLAG_RECOVERY != 0
    }

    /// Bytes in flight (sent but unacknowledged).
    #[inline]
    pub fn flight(&self) -> u64 {
        debug_assert!(self.snd_nxt >= self.snd_una, "frontier behind ack point");
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    #[inline]
    fn effective_window(&self) -> u64 {
        (self.cwnd as u64).min(self.max_window)
    }

    /// The delivery fast path: handles a data segment touching **only this
    /// hot line** when it is either wholly duplicate or an in-order,
    /// mid-message advance with nothing buffered out of order. Returns the
    /// cumulative ACK to emit, or `None` when the slow path (out-of-order
    /// bookkeeping or a message completion — both cold-store territory) is
    /// required.
    ///
    /// Being an inherent method on [`ConnHot`], this path *cannot* read or
    /// write a cold-store field; the borrow checker enforces the
    /// one-cache-line claim.
    #[inline]
    pub fn on_data_fast(&mut self, seq: u64, len: u32) -> Option<u64> {
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            // Wholly duplicate data: re-ACK, deliver nothing (completed
            // messages were popped when rcv_nxt first passed them).
            return Some(self.rcv_nxt);
        }
        if self.flags & FLAG_OOO == 0 && seq <= self.rcv_nxt && end < self.next_delivery {
            // In-order, mid-message, no reassembly pending: pure advance.
            self.rcv_nxt = end;
            return Some(end);
        }
        None
    }
}

/// The cold column of one connection: identity, RTT estimation, timer and
/// injection bookkeeping, message framing queues and out-of-order
/// reassembly. POD fields that the ACK path can still touch (Karn probe,
/// `stream_len`, `rto_ns`, `recover`) lead the layout so a spill reads one
/// predictable line; the heap-backed containers trail.
#[derive(Debug)]
pub struct ConnCold {
    /// Total bytes handed to `on_app_send`.
    stream_len: u64,
    /// Karn's rule across go-back-N: no RTT sampling below this sequence
    /// (bytes that may have been transmitted more than once).
    probe_floor: u64,
    /// In-flight RTT probe: `(stream offset whose ACK completes it, send
    /// time)`.
    rtt_probe: Option<(u64, SimTime)>,
    /// Current retransmission timeout, nanoseconds.
    rto_ns: u64,
    /// NewReno recovery point (`snd_nxt` at loss detection).
    recover: u64,
    /// Smoothed RTT estimate, nanoseconds.
    srtt_ns: f64,
    /// RTT variance estimate, nanoseconds.
    rttvar_ns: f64,
    /// Whether any RTT sample has been taken.
    has_rtt: bool,
    /// Transport parameters (thresholds, RTO clamps).
    kind: TransportKind,
    /// Connection id (index in the engine's arenas).
    pub id: ConnId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Sender message boundaries: `(stream end offset, tag)`.
    msgs_out: VecDeque<(u64, u64)>,
    /// Receiver message boundaries, same framing (shared out of band —
    /// the simulator is omniscient; this stands in for the MPI envelope).
    msgs_in: VecDeque<(u64, u64)>,
    /// Out-of-order received runs: `start → end`, coalesced lazily.
    ooo: BTreeMap<u64, u64>,
    /// Engine bookkeeping: current timer deadline, if armed.
    pub(crate) timer_deadline: Option<SimTime>,
    /// Engine bookkeeping: a timer event is sitting in the queue.
    pub(crate) timer_pushed: bool,
    /// Engine bookkeeping: monotonic clamp for jittered data injections.
    pub(crate) last_data_inject: SimTime,
    /// Engine bookkeeping: monotonic clamp for jittered ACK injections.
    pub(crate) last_ack_inject: SimTime,
}

impl ConnCold {
    /// Total bytes handed to `on_app_send` (the quiescence target for
    /// `snd_una`).
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn new(id: ConnId, src: HostId, dst: HostId, kind: TransportKind) -> Self {
        let rto_ns = match kind {
            TransportKind::Tcp(c) => c.initial_rto_ns,
            TransportKind::Gm(_) => u64::MAX,
        };
        Self {
            stream_len: 0,
            probe_floor: 0,
            rtt_probe: None,
            rto_ns,
            recover: 0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            has_rtt: false,
            kind,
            id,
            src,
            dst,
            msgs_out: VecDeque::new(),
            msgs_in: VecDeque::new(),
            ooo: BTreeMap::new(),
            timer_deadline: None,
            timer_pushed: false,
            last_data_inject: SimTime::ZERO,
            last_ack_inject: SimTime::ZERO,
        }
    }
}

/// A mutable view pairing one connection's hot and cold columns: the full
/// state machine lives here. The engine materializes one per event from
/// its parallel arenas; the owned [`Connection`] wraps the same pair for
/// unit tests and standalone use.
#[derive(Debug)]
pub struct ConnView<'a> {
    /// The hot cache-line column.
    pub hot: &'a mut ConnHot,
    /// The cold column.
    pub cold: &'a mut ConnCold,
}

impl ConnView<'_> {
    /// True when every byte handed to `on_app_send` has been acknowledged.
    pub fn quiescent(&self) -> bool {
        self.hot.snd_una == self.cold.stream_len
    }

    /// Current retransmission timeout in nanoseconds (diagnostics).
    pub fn rto_nanos(&self) -> u64 {
        self.cold.rto_ns
    }

    /// Refreshes the hot delivery boundary after `msgs_in` changed.
    fn refresh_delivery_boundary(&mut self) {
        self.hot.next_delivery = self
            .cold
            .msgs_in
            .front()
            .map_or(NO_BOUNDARY, |&(end, _)| end);
    }

    /// Application queues `len` bytes tagged `tag` on the stream.
    pub fn on_app_send(&mut self, len: u64, tag: u64, now: SimTime) -> SendActions {
        assert!(len > 0, "zero-length messages are framed by the MPI layer");
        self.cold.stream_len += len;
        self.cold.msgs_out.push_back((self.cold.stream_len, tag));
        self.cold.msgs_in.push_back((self.cold.stream_len, tag));
        if self.hot.next_delivery == NO_BOUNDARY {
            self.refresh_delivery_boundary();
        }
        let mut actions = SendActions::default();
        self.pump(now, &mut actions);
        actions
    }

    /// Fills the window with new segments.
    fn pump(&mut self, now: SimTime, actions: &mut SendActions) {
        let hot = &mut *self.hot;
        let had_flight = hot.flight() > 0;
        loop {
            let remaining = self.cold.stream_len - hot.snd_nxt;
            if remaining == 0 {
                break;
            }
            let seg = remaining.min(hot.mtu as u64);
            let flight = hot.flight();
            // A whole segment must fit in the window — except that an idle
            // sender may always emit one segment, so a post-RTO congestion
            // window below one MTU cannot deadlock the stream.
            if flight > 0 && flight + seg > hot.effective_window() {
                break;
            }
            let len = seg as u32;
            let seq = hot.snd_nxt;
            let retransmit = seq < self.cold.probe_floor; // go-back-N resend
            hot.snd_nxt += len as u64;
            if self.cold.rtt_probe.is_none() && seq >= self.cold.probe_floor {
                self.cold.rtt_probe = Some((hot.snd_nxt, now));
            }
            actions.emit_segment(seq, len, retransmit);
        }
        if !had_flight && hot.flight() > 0 && hot.is_tcp() {
            actions.timer = TimerCmd::Arm(now + self.cold.rto_ns);
        }
    }

    /// Receiver half: a data segment arrived at `dst`. The engine calls
    /// [`ConnHot::on_data_fast`] first; this is the full path covering
    /// out-of-order arrivals and message completions.
    pub fn on_data(&mut self, seq: u64, len: u32, _now: SimTime) -> RecvActions {
        let end = seq + len as u64;
        if end > self.hot.rcv_nxt {
            if seq <= self.hot.rcv_nxt {
                // In-order (possibly partially duplicate): advance.
                self.hot.rcv_nxt = end;
                // Merge any out-of-order runs now contiguous.
                while let Some((&start, &run_end)) = self.cold.ooo.iter().next() {
                    if start > self.hot.rcv_nxt {
                        break;
                    }
                    self.cold.ooo.remove(&start);
                    self.hot.rcv_nxt = self.hot.rcv_nxt.max(run_end);
                }
                if self.cold.ooo.is_empty() {
                    self.hot.flags &= !FLAG_OOO;
                }
            } else {
                // Out of order: record the run, coalescing overlaps lazily.
                let entry = self.cold.ooo.entry(seq).or_insert(end);
                *entry = (*entry).max(end);
                self.hot.flags |= FLAG_OOO;
            }
        }
        let mut actions = RecvActions {
            ack: Some(self.hot.rcv_nxt),
            delivered: Vec::new(),
        };
        while let Some(&(msg_end, tag)) = self.cold.msgs_in.front() {
            if msg_end <= self.hot.rcv_nxt {
                self.cold.msgs_in.pop_front();
                actions.delivered.push(tag);
            } else {
                break;
            }
        }
        if !actions.delivered.is_empty() {
            self.refresh_delivery_boundary();
        }
        actions
    }

    /// Sender half: a cumulative ACK arrived back at `src`.
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> SendActions {
        let mut actions = SendActions::default();
        let hot = &mut *self.hot;
        if ack > hot.snd_una {
            let bytes_acked = ack - hot.snd_una;
            hot.snd_una = ack;
            // After a go-back-N rewind, ACKs for the pre-timeout flight can
            // overtake the rewound frontier; transmission resumes from the
            // acknowledged point.
            if hot.snd_nxt < hot.snd_una {
                hot.snd_nxt = hot.snd_una;
            }
            hot.dupacks = 0;
            // Karn-compliant RTT sample.
            if let Some((probe_end, sent_at)) = self.cold.rtt_probe {
                if ack >= probe_end {
                    self.rtt_sample(now.since(sent_at));
                    self.cold.rtt_probe = None;
                }
            }
            let hot = &mut *self.hot;
            while let Some(&(msg_end, tag)) = self.cold.msgs_out.front() {
                if msg_end <= hot.snd_una {
                    self.cold.msgs_out.pop_front();
                    actions.send_done.push(tag);
                } else {
                    break;
                }
            }
            if hot.is_tcp() {
                if hot.in_recovery() {
                    if ack >= self.cold.recover {
                        hot.flags &= !FLAG_RECOVERY;
                        hot.cwnd = hot.ssthresh;
                    } else {
                        // NewReno partial ACK: retransmit the next hole,
                        // deflate by the acked amount, inflate by one MTU.
                        let len = (hot.snd_nxt - hot.snd_una).min(hot.mtu as u64) as u32;
                        if len > 0 {
                            actions.emit_segment(hot.snd_una, len, true);
                            self.cold.rtt_probe = None;
                        }
                        hot.cwnd =
                            (hot.cwnd - bytes_acked as f64 + hot.mtu as f64).max(hot.mtu as f64);
                    }
                } else if hot.cwnd < hot.ssthresh {
                    // Slow start.
                    hot.cwnd = (hot.cwnd + bytes_acked as f64).min(hot.max_window as f64);
                } else {
                    // Congestion avoidance: one MTU per window's worth.
                    hot.cwnd = (hot.cwnd + hot.mtu as f64 * hot.mtu as f64 / hot.cwnd)
                        .min(hot.max_window as f64);
                }
                actions.timer = if hot.snd_una == hot.snd_nxt {
                    TimerCmd::Disarm
                } else {
                    TimerCmd::Arm(now + self.cold.rto_ns)
                };
            }
            self.pump(now, &mut actions);
        } else if ack == hot.snd_una && hot.flight() > 0 && hot.is_tcp() {
            // Saturating: the window cap bounds genuine dup-ACK streaks to
            // ~window/MTU, far below u16::MAX; saturation only matters for
            // absurd (> 65535) thresholds, which then simply never fire.
            hot.dupacks = hot.dupacks.saturating_add(1);
            let threshold = match self.cold.kind {
                TransportKind::Tcp(c) => c.dupack_threshold,
                TransportKind::Gm(_) => u32::MAX,
            };
            if hot.dupacks as u32 == threshold && !hot.in_recovery() {
                // Fast retransmit + NewReno recovery.
                let flight = hot.flight() as f64;
                hot.ssthresh = (flight / 2.0).max(2.0 * hot.mtu as f64);
                hot.cwnd = hot.ssthresh + 3.0 * hot.mtu as f64;
                hot.flags |= FLAG_RECOVERY;
                self.cold.recover = hot.snd_nxt;
                let len = (hot.snd_nxt - hot.snd_una).min(hot.mtu as u64) as u32;
                actions.emit_segment(hot.snd_una, len, true);
                self.cold.rtt_probe = None;
                actions.fast_retransmit = true;
                actions.timer = TimerCmd::Arm(now + self.cold.rto_ns);
            } else if hot.in_recovery() {
                hot.cwnd += hot.mtu as f64;
                self.pump(now, &mut actions);
            }
        }
        actions
    }

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: SimTime) -> SendActions {
        let mut actions = SendActions::default();
        let hot = &mut *self.hot;
        if hot.flight() == 0 || !hot.is_tcp() {
            actions.timer = TimerCmd::Disarm;
            return actions;
        }
        let (min_rto, max_rto) = match self.cold.kind {
            TransportKind::Tcp(c) => (c.min_rto_ns, c.max_rto_ns),
            TransportKind::Gm(_) => unreachable!("GM never arms the timer"),
        };
        hot.ssthresh = (hot.flight() as f64 / 2.0).max(2.0 * hot.mtu as f64);
        hot.cwnd = hot.mtu as f64;
        hot.flags &= !FLAG_RECOVERY;
        hot.dupacks = 0;
        // Karn: no RTT samples from anything at or below the old frontier —
        // those bytes may now be transmitted twice.
        self.cold.rtt_probe = None;
        self.cold.probe_floor = self.cold.probe_floor.max(hot.snd_nxt);
        self.cold.rto_ns = (self.cold.rto_ns.saturating_mul(2)).clamp(min_rto, max_rto);
        // Go-back-N: resume transmission from the first unacknowledged
        // byte. Cumulative ACKs skip whatever the receiver already holds,
        // and slow start refills the window without requiring a separate
        // timeout per hole (serial-RTO starvation is not how TCP behaves).
        hot.snd_nxt = hot.snd_una;
        self.pump(now, &mut actions);
        actions.timeout = true;
        actions.timer = TimerCmd::Arm(now + self.cold.rto_ns);
        actions
    }

    fn rtt_sample(&mut self, sample_ns: u64) {
        let cold = &mut *self.cold;
        let sample = sample_ns as f64;
        if !cold.has_rtt {
            cold.srtt_ns = sample;
            cold.rttvar_ns = sample / 2.0;
            cold.has_rtt = true;
        } else {
            cold.rttvar_ns = 0.75 * cold.rttvar_ns + 0.25 * (cold.srtt_ns - sample).abs();
            cold.srtt_ns = 0.875 * cold.srtt_ns + 0.125 * sample;
        }
        if let TransportKind::Tcp(c) = cold.kind {
            let rto = cold.srtt_ns + 4.0 * cold.rttvar_ns;
            cold.rto_ns = (rto as u64).clamp(c.min_rto_ns, c.max_rto_ns);
        }
    }
}

/// One unidirectional transport connection between two hosts, owning its
/// [`ConnHot`]/[`ConnCold`] pair. The engine stores the two columns in
/// separate arenas instead; this owned form serves unit tests and
/// standalone state-machine use through the same [`ConnView`] methods.
///
/// Holds both endpoints' state (the simulator is omniscient): the sender
/// half lives at `src`, the receiver half at `dst`.
#[derive(Debug)]
pub struct Connection {
    /// The hot cache-line column.
    pub hot: ConnHot,
    /// The cold column.
    pub cold: ConnCold,
}

impl Connection {
    /// Creates an idle connection. Routes are not held here: the engine
    /// resolves a packet's route through its own `flow → RouteId` table.
    pub fn new(id: ConnId, src: HostId, dst: HostId, kind: TransportKind) -> Self {
        Self {
            hot: ConnHot::new(kind),
            cold: ConnCold::new(id, src, dst, kind),
        }
    }

    /// Splits the owned pair into the columnar state-machine view.
    pub fn view(&mut self) -> ConnView<'_> {
        ConnView {
            hot: &mut self.hot,
            cold: &mut self.cold,
        }
    }

    /// Creates the hot/cold columns directly (the engine's arena form).
    pub fn columns(
        id: ConnId,
        src: HostId,
        dst: HostId,
        kind: TransportKind,
    ) -> (ConnHot, ConnCold) {
        (ConnHot::new(kind), ConnCold::new(id, src, dst, kind))
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn flight(&self) -> u64 {
        self.hot.flight()
    }

    /// True when every byte handed to `on_app_send` has been acknowledged.
    pub fn quiescent(&self) -> bool {
        self.hot.snd_una == self.cold.stream_len
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd_bytes(&self) -> u64 {
        self.hot.cwnd_bytes()
    }

    /// Current retransmission timeout in nanoseconds (diagnostics).
    pub fn rto_nanos(&self) -> u64 {
        self.cold.rto_ns
    }

    /// Application queues `len` bytes tagged `tag` on the stream.
    pub fn on_app_send(&mut self, len: u64, tag: u64, now: SimTime) -> SendActions {
        self.view().on_app_send(len, tag, now)
    }

    /// Receiver half: a data segment arrived at `dst`.
    pub fn on_data(&mut self, seq: u64, len: u32, now: SimTime) -> RecvActions {
        self.view().on_data(seq, len, now)
    }

    /// Sender half: a cumulative ACK arrived back at `src`.
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> SendActions {
        self.view().on_ack(ack, now)
    }

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: SimTime) -> SendActions {
        self.view().on_rto(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmConfig, TcpConfig};

    fn conn(kind: TransportKind) -> Connection {
        Connection::new(
            ConnId::from_index(0),
            HostId::from_index(0),
            HostId::from_index(1),
            kind,
        )
    }

    fn tcp() -> Connection {
        conn(TransportKind::Tcp(TcpConfig::default()))
    }

    /// Expands the run-compressed segment list into per-segment
    /// `(seq, len, retransmit)` triples, the shape the engine injects.
    fn flat(a: &SendActions) -> Vec<(u64, u32, bool)> {
        a.segments
            .iter()
            .flat_map(|r| r.iter().map(|(seq, len)| (seq, len, r.retransmit)))
            .collect()
    }

    /// Drives a data segment the way the engine does: fast path first,
    /// slow path on fallback — and asserts the two agree where both apply.
    fn on_data_like_engine(c: &mut Connection, seq: u64, len: u32, now: SimTime) -> RecvActions {
        match c.hot.on_data_fast(seq, len) {
            Some(ack) => RecvActions {
                ack: Some(ack),
                delivered: Vec::new(),
            },
            None => c.on_data(seq, len, now),
        }
    }

    #[test]
    fn initial_send_respects_initial_cwnd() {
        let mut c = tcp();
        let a = c.on_app_send(100_000, 1, SimTime::ZERO);
        // initial cwnd = 2 segments, coalesced into one contiguous run.
        assert_eq!(flat(&a), vec![(0, 1460, false), (1460, 1460, false)]);
        assert_eq!(
            a.segments.len(),
            1,
            "contiguous same-size segments coalesce"
        );
        assert!(matches!(a.timer, TimerCmd::Arm(_)));
        assert_eq!(c.flight(), 2920);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = tcp();
        let _ = c.on_app_send(1_000_000, 1, SimTime::ZERO);
        let before = c.cwnd_bytes();
        // Ack both initial segments.
        let a = c.on_ack(2920, SimTime(1_000_000));
        assert!(c.cwnd_bytes() >= before + 2920);
        // Acking opened the window: roughly twice as many segments go out.
        assert!(flat(&a).len() >= 3, "got {}", flat(&a).len());
    }

    #[test]
    fn in_order_delivery_reports_messages() {
        let mut c = tcp();
        let _ = c.on_app_send(2000, 7, SimTime::ZERO);
        let r1 = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r1.ack, Some(1460));
        assert!(r1.delivered.is_empty());
        let r2 = c.on_data(1460, 540, SimTime(20));
        assert_eq!(r2.ack, Some(2000));
        assert_eq!(r2.delivered, vec![7]);
    }

    #[test]
    fn out_of_order_data_held_then_merged() {
        let mut c = tcp();
        let _ = c.on_app_send(4380, 9, SimTime::ZERO);
        let r = c.on_data(1460, 1460, SimTime(10));
        assert_eq!(r.ack, Some(0), "dup-ack for the hole");
        let r = c.on_data(2920, 1460, SimTime(20));
        assert_eq!(r.ack, Some(0));
        let r = c.on_data(0, 1460, SimTime(30));
        assert_eq!(r.ack, Some(4380), "hole filled merges the whole run");
        assert_eq!(r.delivered, vec![9]);
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut c = tcp();
        let _ = c.on_app_send(1460, 3, SimTime::ZERO);
        let r1 = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r1.delivered, vec![3]);
        let r2 = c.on_data(0, 1460, SimTime(20));
        assert_eq!(r2.ack, Some(1460));
        assert!(r2.delivered.is_empty());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100)); // grow window a bit
        let mut fast = false;
        for i in 0..3 {
            let a = c.on_ack(2920, SimTime(200 + i));
            if a.fast_retransmit {
                fast = true;
                assert_eq!(flat(&a).len(), 1);
                assert!(a.segments[0].retransmit);
                assert_eq!(a.segments[0].seq, 2920);
            }
        }
        assert!(fast, "third duplicate ACK must fast-retransmit");
    }

    #[test]
    fn rto_backs_off_and_retransmits_head() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let rto_before = c.rto_nanos();
        let a = c.on_rto(SimTime(rto_before));
        assert!(a.timeout);
        assert_eq!(flat(&a), vec![(0, 1460, true)]);
        assert_eq!(c.cwnd_bytes(), 1460);
        assert!(c.rto_nanos() >= rto_before, "exponential backoff");
    }

    #[test]
    fn rto_with_nothing_outstanding_disarms() {
        let mut c = tcp();
        let a = c.on_rto(SimTime(0));
        assert!(!a.timeout);
        assert_eq!(a.timer, TimerCmd::Disarm);
    }

    #[test]
    fn send_done_reported_when_fully_acked() {
        let mut c = tcp();
        let _ = c.on_app_send(1000, 42, SimTime::ZERO);
        let a = c.on_ack(1000, SimTime(500_000));
        assert_eq!(a.send_done, vec![42]);
        assert!(c.quiescent());
        assert_eq!(a.timer, TimerCmd::Disarm);
    }

    #[test]
    fn rtt_sample_updates_rto() {
        let mut c = tcp();
        let _ = c.on_app_send(1460, 1, SimTime::ZERO);
        let _ = c.on_ack(1460, SimTime(50_000_000)); // 50 ms RTT
                                                     // RTO = srtt + 4*rttvar = 50ms + 4*25ms = 150ms → clamped to 200ms.
        assert_eq!(c.rto_nanos(), 200_000_000);
        let mut c2 = tcp();
        let _ = c2.on_app_send(1460, 1, SimTime::ZERO);
        let _ = c2.on_ack(1460, SimTime(200_000_000)); // 200 ms RTT
        assert_eq!(c2.rto_nanos(), 600_000_000);
    }

    #[test]
    fn gm_uses_full_window_immediately() {
        let mut c = conn(TransportKind::Gm(GmConfig {
            mtu: 4096,
            window_bytes: 16 * 4096,
        }));
        let a = c.on_app_send(1_000_000, 1, SimTime::ZERO);
        assert_eq!(flat(&a).len(), 16, "fixed window fills at once");
        assert_eq!(
            a.segments,
            vec![SegmentRun {
                seq: 0,
                len: 4096,
                count: 16,
                retransmit: false,
            }],
            "a window fill is one run, not 16 entries"
        );
        assert_eq!(a.timer, TimerCmd::Keep, "GM never arms the RTO timer");
    }

    #[test]
    fn gm_ack_advances_without_congestion_control() {
        let mut c = conn(TransportKind::Gm(GmConfig::default()));
        let _ = c.on_app_send(10 * 4096, 1, SimTime::ZERO);
        let w = c.cwnd_bytes();
        let a = c.on_ack(4096, SimTime(1000));
        assert_eq!(c.cwnd_bytes(), w, "window is fixed");
        assert_eq!(a.segments.len(), 0, "stream already fully in flight");
        let a = c.on_ack(10 * 4096, SimTime(2000));
        assert_eq!(a.send_done, vec![1]);
    }

    #[test]
    fn multiple_messages_share_the_stream_in_order() {
        let mut c = tcp();
        let _ = c.on_app_send(1000, 1, SimTime::ZERO);
        let _ = c.on_app_send(1000, 2, SimTime::ZERO);
        let r = c.on_data(0, 1460, SimTime(10));
        assert_eq!(r.delivered, vec![1]);
        let r = c.on_data(1460, 540, SimTime(20));
        assert_eq!(r.delivered, vec![2]);
    }

    #[test]
    fn late_ack_after_go_back_n_does_not_wedge() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100)); // window opens, more in flight
        let frontier = c.hot.snd_nxt;
        assert!(frontier > 2920);
        // Timeout rewinds the frontier to snd_una.
        let a = c.on_rto(SimTime(1_000_000_000));
        assert!(a.timeout);
        // A straggling ACK for the original flight overtakes the rewind.
        let late_ack = frontier;
        let a = c.on_ack(late_ack, SimTime(1_000_000_100));
        assert!(c.flight() <= c.cwnd_bytes() + 1460);
        assert!(!a.segments.is_empty(), "transmission resumes past the ack");
        assert!(flat(&a).iter().all(|&(seq, _, _)| seq >= late_ack));
        // The stream must still be able to finish.
        let _ = c.on_ack(100_000, SimTime(2_000_000_000));
        assert!(c.quiescent());
    }

    #[test]
    fn rto_rewinds_and_resends_from_una() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(1460, SimTime(100));
        let a = c.on_rto(SimTime(1_000_000_000));
        assert!(a.timeout);
        assert_eq!(
            flat(&a),
            vec![(1460, 1460, true)],
            "cwnd=1 after timeout; go-back-N restarts at snd_una"
        );
    }

    #[test]
    fn runs_split_at_the_partial_tail() {
        // 10 full GM frames plus a 100-byte tail: one 10-segment run, then
        // a separate single-segment run (lengths never mix within a run).
        let mut c = conn(TransportKind::Gm(GmConfig::default()));
        let a = c.on_app_send(10 * 4096 + 100, 1, SimTime::ZERO);
        assert_eq!(
            a.segments,
            vec![
                SegmentRun {
                    seq: 0,
                    len: 4096,
                    count: 10,
                    retransmit: false,
                },
                SegmentRun {
                    seq: 10 * 4096,
                    len: 100,
                    count: 1,
                    retransmit: false,
                },
            ]
        );
        assert_eq!(a.segments[0].end(), 10 * 4096);
        assert_eq!(a.segments[0].total_bytes(), 10 * 4096);
    }

    #[test]
    fn recovery_exits_at_recover_point() {
        let mut c = tcp();
        let _ = c.on_app_send(100_000, 1, SimTime::ZERO);
        let _ = c.on_ack(2920, SimTime(100));
        for i in 0..3 {
            let _ = c.on_ack(2920, SimTime(200 + i));
        }
        assert!(c.hot.in_recovery());
        let recover = c.cold.recover;
        let _ = c.on_ack(recover, SimTime(400));
        assert!(!c.hot.in_recovery());
        assert_eq!(c.cwnd_bytes() as f64, c.hot.ssthresh);
    }

    // ---- hot/cold split invariants ------------------------------------

    #[test]
    fn fast_path_handles_in_order_mid_message_data() {
        let mut c = tcp();
        let _ = c.on_app_send(10_000, 1, SimTime::ZERO);
        // Mid-message in-order segment: pure hot.
        assert_eq!(c.hot.on_data_fast(0, 1460), Some(1460));
        assert_eq!(c.hot.rcv_nxt, 1460);
        // Duplicate: pure hot re-ACK, no state change.
        assert_eq!(c.hot.on_data_fast(0, 1460), Some(1460));
        assert_eq!(c.hot.rcv_nxt, 1460);
        // Message-completing segment must fall to the slow path.
        assert_eq!(c.hot.on_data_fast(1460, 10_000 - 1460), None);
        // Out-of-order segment must fall to the slow path.
        assert_eq!(c.hot.on_data_fast(5000, 100), None);
    }

    #[test]
    fn fast_path_defers_to_slow_path_while_ooo_pending() {
        let mut c = tcp();
        let _ = c.on_app_send(10_000, 1, SimTime::ZERO);
        let _ = c.on_data(2920, 1460, SimTime(10)); // hole at [0, 2920)
        assert!(c.hot.flags & FLAG_OOO != 0);
        // An in-order arrival must not bypass the merge.
        assert_eq!(c.hot.on_data_fast(0, 1460), None);
        let r = c.on_data(0, 1460, SimTime(20));
        assert_eq!(r.ack, Some(1460), "no merge yet: hole at [1460, 2920)");
        let r = c.on_data(1460, 1460, SimTime(30));
        assert_eq!(r.ack, Some(4380), "merge consumed the buffered run");
        assert!(c.hot.flags & FLAG_OOO == 0, "OOO flag clears on drain");
    }

    #[test]
    fn fast_and_slow_paths_agree_on_fast_eligible_segments() {
        // Replay the same in-order stream through (a) the engine's
        // fast-then-slow dispatch and (b) the slow path alone: identical
        // ACKs, identical deliveries at the boundaries.
        let drive = |fast: bool| {
            let mut c = tcp();
            let _ = c.on_app_send(4000, 1, SimTime::ZERO);
            let _ = c.on_app_send(3000, 2, SimTime::ZERO);
            let mut acks = Vec::new();
            let mut delivered = Vec::new();
            let mut seq = 0u64;
            for len in [1460u32, 1460, 1460, 1460, 1160] {
                let r = if fast {
                    on_data_like_engine(&mut c, seq, len, SimTime(seq))
                } else {
                    c.on_data(seq, len, SimTime(seq))
                };
                acks.push(r.ack);
                delivered.extend(r.delivered);
                seq += len as u64;
            }
            (acks, delivered)
        };
        assert_eq!(drive(true), drive(false));
    }

    /// Satellite guard: the hot column's size, surfaced in test output
    /// (run `cargo test -p simnet layout -- --nocapture` to see it) and
    /// pinned by the `const` assertion next to the type.
    #[test]
    fn conn_layout_is_columnar() {
        use std::mem::size_of;
        let sizes = [
            ("ConnHot (per-delivery/ACK line)", size_of::<ConnHot>()),
            ("ConnCold (cold column)", size_of::<ConnCold>()),
            ("Connection (owned pair)", size_of::<Connection>()),
        ];
        for (name, bytes) in sizes {
            println!("layout: {name} = {bytes} bytes");
        }
        assert_eq!(
            size_of::<ConnHot>(),
            64,
            "ConnHot is exactly one cache line"
        );
        assert!(
            size_of::<ConnCold>() > 64,
            "the cold column holds everything the hot line excludes"
        );
    }
}
