//! Simulation clock: integer nanoseconds since simulation start.
//!
//! All scheduling is done on a `u64` nanosecond timeline, which keeps event
//! ordering exact and runs deterministic across platforms (no accumulated
//! floating-point drift in the clock itself; rates are converted to integer
//! nanoseconds at the point of use).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation timeline, in nanoseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0 && secs.is_finite());
        SimTime((secs * 1e9).round() as u64)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as `f64` (for reporting; the clock
    /// itself never goes through floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self − earlier` in nanoseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, nanos: u64) -> SimTime {
        SimTime(self.0 + nanos)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, nanos: u64) {
        self.0 += nanos;
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative time difference");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Converts a duration in seconds to integer nanoseconds, rounding.
pub fn secs_to_nanos(secs: f64) -> u64 {
    debug_assert!(secs >= 0.0 && secs.is_finite());
    (secs * 1e9).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime(100);
        assert_eq!((t + 50).as_nanos(), 150);
        assert_eq!(SimTime(150) - t, 50);
        assert_eq!(t.since(SimTime(150)), 0); // saturates
        let mut u = t;
        u += 25;
        assert_eq!(u.as_nanos(), 125);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO, SimTime(0));
    }
}
