//! Index newtypes for the simulator's arenas.
//!
//! Everything in the simulator lives in flat `Vec` arenas and is referred to
//! by index; these newtypes keep host, switch, transmitter, buffer-pool and
//! connection indices from being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from an arena index. The caller is responsible
            /// for the index referring to an existing entity in the
            /// simulator it is used with.
            pub fn new(i: usize) -> Self {
                assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }

            /// Builds an id from an arena index (internal alias).
            pub(crate) fn from_index(i: usize) -> Self {
                Self::new(i)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A host (end node with a single full-duplex NIC).
    HostId,
    "h"
);
id_type!(
    /// A switch (store-and-forward, shared buffer pool).
    SwitchId,
    "sw"
);
id_type!(
    /// A directed transmitter: one direction of one link, with its own
    /// serialization state and queue accounting.
    TxId,
    "tx"
);
id_type!(
    /// A buffer pool shared by one or more transmitters (a switch's shared
    /// memory, or a host NIC's socket buffer).
    PoolId,
    "pool"
);
id_type!(
    /// A unidirectional transport connection between two hosts.
    ConnId,
    "conn"
);
id_type!(
    /// An interned route: a handle into the topology's flat route arena.
    /// Packets do not carry it — a packet's route is a pure function of its
    /// flow (`conn·2 + direction`), resolved through the engine's flat
    /// `flow → RouteId` table — so advancing a hop is two flat-array
    /// indexes and the packet itself stays at 16 bytes.
    RouteId,
    "rt"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let h = HostId::from_index(3);
        assert_eq!(h.index(), 3);
        assert_eq!(h.to_string(), "h3");
        assert_eq!(ConnId::from_index(0).to_string(), "conn0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(TxId::from_index(1) < TxId::from_index(2));
    }
}
