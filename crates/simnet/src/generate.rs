//! Parameterized topology generators.
//!
//! The paper measures three hand-built single-core clusters; the scenario
//! engine (`contention-scenario`) needs whole *families* of fabrics. Each
//! generator returns a [`Generated`]: a ready-to-`build` [`TopologyBuilder`]
//! plus the host ids grouped by their edge switch, so callers can place
//! ranks (packed or scattered) and inspect the structure.
//!
//! Generators provided:
//!
//! * [`single_switch`] — `n` hosts on one switch (the paper's Myrinet /
//!   small-job shape);
//! * [`star_of_switches`] — leaf switches around one core, with explicit
//!   uplink parameters (the paper's Fast Ethernet shape);
//! * [`two_level_tree`] — leaf switches under one core where the uplink
//!   capacity is **derived from an oversubscription ratio**: total host
//!   bandwidth per leaf = `oversubscription ×` total uplink bandwidth;
//! * [`fat_tree`] — a k-ary fat-tree (k pods of k/2 edge + k/2 aggregation
//!   switches, (k/2)² cores) with a configurable number of hosts per edge
//!   switch;
//! * [`torus_2d`] / [`torus_3d`] — wrap-around switch meshes with
//!   dimension-ordered (e-cube) routing, the HPC fabrics where partition
//!   shape decides which contention is avoidable at all (Oltchik &
//!   Toledo 2020);
//! * [`dragonfly`] — groups of fully-meshed routers joined by single
//!   global links, minimal-path routed: the fabric whose global links the
//!   adversarial placements saturate.
//!
//! Rank placement onto generated hosts is a [`Placement`] policy —
//! scatter (round-robin across edge groups), pack (fill groups in order)
//! or a seeded random partial permutation — instead of the scatter rule
//! being hard-coded into every caller.

use crate::config::{LinkConfig, SwitchConfig};
use crate::ids::{HostId, SwitchId};
use crate::topology::{RoutingPolicy, TopologyBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A generator's output: the builder (not yet built, so callers can still
/// attach a host I/O bus or extra links) plus structural metadata.
pub struct Generated {
    /// The assembled builder.
    pub builder: TopologyBuilder,
    /// All hosts in creation order.
    pub hosts: Vec<HostId>,
    /// Hosts grouped by the edge switch they attach to.
    pub host_groups: Vec<Vec<HostId>>,
    /// Edge (leaf) switches.
    pub edge_switches: Vec<SwitchId>,
    /// Aggregation switches (fat-tree only; empty otherwise).
    pub agg_switches: Vec<SwitchId>,
    /// Core switches (empty for a single switch).
    pub core_switches: Vec<SwitchId>,
}

impl Generated {
    /// Total host capacity.
    pub fn capacity(&self) -> usize {
        self.hosts.len()
    }

    /// The first `n` hosts taken round-robin across edge switches — the
    /// scatter placement a batch scheduler produces and the placement the
    /// paper's presets use.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Generated::capacity`].
    pub fn scattered_hosts(&self, n: usize) -> Vec<HostId> {
        assert!(
            n <= self.capacity(),
            "{n} ranks exceed the fabric's {} hosts",
            self.capacity()
        );
        let mut picked = Vec::with_capacity(n);
        let mut depth = 0;
        while picked.len() < n {
            for group in &self.host_groups {
                if picked.len() == n {
                    break;
                }
                if let Some(&h) = group.get(depth) {
                    picked.push(h);
                }
            }
            depth += 1;
        }
        picked
    }

    /// The first `n` hosts taken group-by-group (edge switch by edge
    /// switch) — the placement a locality-greedy batch scheduler
    /// produces, and the adversarial one on dragonflies (packed groups
    /// funnel all cross-traffic through single global links).
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Generated::capacity`].
    pub fn packed_hosts(&self, n: usize) -> Vec<HostId> {
        assert!(
            n <= self.capacity(),
            "{n} ranks exceed the fabric's {} hosts",
            self.capacity()
        );
        self.host_groups
            .iter()
            .flat_map(|group| group.iter().copied())
            .take(n)
            .collect()
    }

    /// `n` hosts drawn as a seeded random partial permutation of the
    /// fabric — the placement a fragmented batch queue produces.
    /// Deterministic per seed.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Generated::capacity`].
    pub fn random_hosts(&self, n: usize, seed: u64) -> Vec<HostId> {
        assert!(
            n <= self.capacity(),
            "{n} ranks exceed the fabric's {} hosts",
            self.capacity()
        );
        let mut pool = self.hosts.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        pool.shuffle(&mut rng);
        pool.truncate(n);
        pool
    }
}

/// How scenario ranks map onto a generated fabric's hosts. Replaces the
/// scatter rule previously hard-coded into every caller; threaded through
/// the scenario spec, the TOML format and the `ctnsim` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Round-robin across edge groups ([`Generated::scattered_hosts`]) —
    /// the historical default every pre-existing scenario keeps.
    #[default]
    Scatter,
    /// Fill edge groups in order ([`Generated::packed_hosts`]).
    Pack,
    /// Seeded random partial permutation ([`Generated::random_hosts`]).
    RandomSeeded,
}

impl Placement {
    /// Every policy, in presentation order.
    pub fn all() -> [Placement; 3] {
        [Placement::Scatter, Placement::Pack, Placement::RandomSeeded]
    }

    /// The stable spec/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Scatter => "scatter",
            Placement::Pack => "pack",
            Placement::RandomSeeded => "random",
        }
    }

    /// Parses a spec/CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        Placement::all().into_iter().find(|p| p.name() == name)
    }

    /// Places `n` ranks onto the fabric. `seed` only affects
    /// [`Placement::RandomSeeded`].
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Generated::capacity`].
    pub fn place(&self, g: &Generated, n: usize, seed: u64) -> Vec<HostId> {
        match self {
            Placement::Scatter => g.scattered_hosts(n),
            Placement::Pack => g.packed_hosts(n),
            Placement::RandomSeeded => g.random_hosts(n, seed),
        }
    }
}

/// `n` hosts on a single switch.
///
/// # Panics
/// Panics if `n == 0`.
pub fn single_switch(n: usize, link: LinkConfig, switch: SwitchConfig) -> Generated {
    assert!(n > 0, "single_switch needs at least one host");
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let sw = b.add_switch(switch);
    for &h in &hosts {
        b.link_host(h, sw, link);
    }
    Generated {
        builder: b,
        host_groups: vec![hosts.clone()],
        hosts,
        edge_switches: vec![sw],
        agg_switches: Vec::new(),
        core_switches: Vec::new(),
    }
}

/// `leaves` leaf switches of `hosts_per_leaf` hosts each around one core
/// switch, `uplinks_per_leaf` parallel uplinks per leaf with explicit
/// `uplink` parameters.
///
/// # Panics
/// Panics if any count is zero.
pub fn star_of_switches(
    leaves: usize,
    hosts_per_leaf: usize,
    edge_link: LinkConfig,
    uplink: LinkConfig,
    uplinks_per_leaf: usize,
    edge_switch: SwitchConfig,
    core_switch: SwitchConfig,
) -> Generated {
    assert!(leaves > 0 && hosts_per_leaf > 0 && uplinks_per_leaf > 0);
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(leaves * hosts_per_leaf);
    let edges: Vec<SwitchId> = (0..leaves).map(|_| b.add_switch(edge_switch)).collect();
    let core = b.add_switch(core_switch);
    let mut host_groups = vec![Vec::with_capacity(hosts_per_leaf); leaves];
    for (i, &h) in hosts.iter().enumerate() {
        let leaf = i / hosts_per_leaf;
        b.link_host(h, edges[leaf], edge_link);
        host_groups[leaf].push(h);
    }
    for &e in &edges {
        for _ in 0..uplinks_per_leaf {
            b.link_switches(e, core, uplink);
        }
    }
    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches: edges,
        agg_switches: Vec::new(),
        core_switches: vec![core],
    }
}

/// Parameters of an oversubscribed two-level tree (see [`two_level_tree`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host ↔ leaf link.
    pub edge_link: LinkConfig,
    /// Parallel uplinks from each leaf to the core.
    pub uplinks_per_leaf: usize,
    /// Oversubscription ratio: total host bandwidth under a leaf divided
    /// by the leaf's total uplink bandwidth. `1.0` is non-blocking; the
    /// paper's GdX trunks are ≈ 3:1.
    pub oversubscription: f64,
    /// Extra one-way latency of each uplink, nanoseconds.
    pub uplink_latency_ns: u64,
    /// Leaf switch buffering.
    pub edge_switch: SwitchConfig,
    /// Core switch buffering.
    pub core_switch: SwitchConfig,
}

impl TreeParams {
    /// The derived per-uplink bandwidth in bytes/second.
    pub fn uplink_bandwidth(&self) -> f64 {
        self.hosts_per_leaf as f64 * self.edge_link.bandwidth_bytes_per_sec
            / (self.oversubscription * self.uplinks_per_leaf as f64)
    }
}

/// A two-level tree whose uplink capacity is derived from
/// [`TreeParams::oversubscription`].
///
/// # Panics
/// Panics if any count is zero or the ratio is not a positive finite
/// number.
pub fn two_level_tree(p: &TreeParams) -> Generated {
    assert!(p.leaves > 0 && p.hosts_per_leaf > 0 && p.uplinks_per_leaf > 0);
    assert!(
        p.oversubscription.is_finite() && p.oversubscription > 0.0,
        "oversubscription must be positive and finite"
    );
    let uplink = LinkConfig {
        bandwidth_bytes_per_sec: p.uplink_bandwidth(),
        latency_ns: p.uplink_latency_ns,
    };
    star_of_switches(
        p.leaves,
        p.hosts_per_leaf,
        p.edge_link,
        uplink,
        p.uplinks_per_leaf,
        p.edge_switch,
        p.core_switch,
    )
}

/// Parameters of a k-ary fat-tree (see [`fat_tree`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeParams {
    /// Arity: `k` pods, `k/2` edge and `k/2` aggregation switches per pod,
    /// `(k/2)²` core switches. Must be even and ≥ 2.
    pub k: usize,
    /// Hosts per edge switch (the canonical fat-tree uses `k/2`).
    pub hosts_per_edge: usize,
    /// Link used at every level (fat-trees are bandwidth-uniform).
    pub link: LinkConfig,
    /// Buffering used for every switch.
    pub switch: SwitchConfig,
}

impl FatTreeParams {
    /// Total host capacity: `k · (k/2) · hosts_per_edge`.
    pub fn capacity(&self) -> usize {
        self.k * (self.k / 2) * self.hosts_per_edge
    }
}

/// A k-ary fat-tree: every pod's edge switches connect to all of the pod's
/// aggregation switches; aggregation switch `j` of every pod connects to
/// core group `j` (cores `j·k/2 .. (j+1)·k/2`). Same-edge pairs are 2 hops,
/// same-pod pairs 4 hops, cross-pod pairs 6 hops; equal-cost paths are
/// spread by the builder's deterministic ECMP hashing.
///
/// # Panics
/// Panics if `k` is odd or zero, or `hosts_per_edge == 0`.
pub fn fat_tree(p: &FatTreeParams) -> Generated {
    assert!(
        p.k >= 2 && p.k.is_multiple_of(2),
        "fat-tree arity must be even, got {}",
        p.k
    );
    assert!(p.hosts_per_edge > 0);
    let half = p.k / 2;
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(p.capacity());

    let mut edge_switches = Vec::with_capacity(p.k * half);
    let mut agg_switches = Vec::with_capacity(p.k * half);
    for _pod in 0..p.k {
        for _ in 0..half {
            edge_switches.push(b.add_switch(p.switch));
        }
        for _ in 0..half {
            agg_switches.push(b.add_switch(p.switch));
        }
    }
    let core_switches: Vec<SwitchId> = (0..half * half).map(|_| b.add_switch(p.switch)).collect();

    // Hosts onto edge switches, filling edge by edge.
    let mut host_groups = vec![Vec::with_capacity(p.hosts_per_edge); p.k * half];
    for (i, &h) in hosts.iter().enumerate() {
        let edge = i / p.hosts_per_edge;
        b.link_host(h, edge_switches[edge], p.link);
        host_groups[edge].push(h);
    }

    for pod in 0..p.k {
        for e in 0..half {
            for a in 0..half {
                b.link_switches(
                    edge_switches[pod * half + e],
                    agg_switches[pod * half + a],
                    p.link,
                );
            }
        }
        for a in 0..half {
            for c in 0..half {
                b.link_switches(
                    agg_switches[pod * half + a],
                    core_switches[a * half + c],
                    p.link,
                );
            }
        }
    }

    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches,
        agg_switches,
        core_switches,
    }
}

/// Parameters of a wrap-around switch mesh (see [`torus`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TorusParams {
    /// Ring length per dimension; use `1` for unused dimensions (a 2-D
    /// torus is `[x, y, 1]`).
    pub dims: [usize; 3],
    /// Hosts attached to each switch.
    pub hosts_per_switch: usize,
    /// Link used for host and switch-to-switch wires alike.
    pub link: LinkConfig,
    /// Buffering of every switch.
    pub switch: SwitchConfig,
}

impl TorusParams {
    /// Total host capacity: `x · y · z · hosts_per_switch`.
    pub fn capacity(&self) -> usize {
        self.dims.iter().product::<usize>() * self.hosts_per_switch
    }
}

/// A torus of switches with [dimension-ordered] (e-cube) routing: switch
/// `(x, y, z)` joins its `±1` wrap-around neighbours along every dimension
/// of length ≥ 2 (a length-2 ring is a single link, not a doubled pair).
/// Routes correct the lowest-indexed mismatched dimension first, always
/// along the shorter wrap direction — the deterministic minimal routing of
/// classical k-ary n-cube machines.
///
/// ```text
///  (0,1)──(1,1)──(2,1)─┐        one host column per switch
///    │      │      │   │        (hosts_per_switch hosts)
///  (0,0)──(1,0)──(2,0)─┤
///    └──────┴──────┴───┘  ← wrap links close each ring
/// ```
///
/// [dimension-ordered]: crate::topology::RoutingPolicy::DimensionOrdered
///
/// # Panics
/// Panics if any dimension is 0, the switch count is below 2, or
/// `hosts_per_switch == 0`.
pub fn torus(p: &TorusParams) -> Generated {
    let [nx, ny, nz] = p.dims;
    assert!(nx > 0 && ny > 0 && nz > 0, "torus dimensions must be ≥ 1");
    assert!(nx * ny * nz >= 2, "a torus needs at least two switches");
    assert!(p.hosts_per_switch > 0);
    let n_switches = nx * ny * nz;
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n_switches * p.hosts_per_switch);
    let switches: Vec<SwitchId> = (0..n_switches).map(|_| b.add_switch(p.switch)).collect();
    // Switch s ↔ coordinate (x, y, z), x fastest.
    let index_of = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    let mut coords = Vec::with_capacity(n_switches);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                coords.push([x as u16, y as u16, z as u16]);
            }
        }
    }

    let mut host_groups = vec![Vec::with_capacity(p.hosts_per_switch); n_switches];
    for (i, &h) in hosts.iter().enumerate() {
        let sw = i / p.hosts_per_switch;
        b.link_host(h, switches[sw], p.link);
        host_groups[sw].push(h);
    }

    for (s, &[x, y, z]) in coords.iter().enumerate() {
        let (x, y, z) = (x as usize, y as usize, z as usize);
        // +1 neighbour per dimension; a length-2 ring adds its single
        // link only from coordinate 0, a length-1 ring none at all.
        for (size, neighbor) in [
            (nx, index_of((x + 1) % nx, y, z)),
            (ny, index_of(x, (y + 1) % ny, z)),
            (nz, index_of(x, y, (z + 1) % nz)),
        ] {
            let add = s != neighbor && (size > 2 || neighbor > s);
            if add {
                b.link_switches(switches[s], switches[neighbor], p.link);
            }
        }
    }

    b.set_switch_coords(coords);
    b.set_routing(RoutingPolicy::DimensionOrdered);
    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches: switches,
        agg_switches: Vec::new(),
        core_switches: Vec::new(),
    }
}

/// A 2-D torus: `x · y` switches, `hosts_per_switch` hosts each. See
/// [`torus`].
pub fn torus_2d(
    x: usize,
    y: usize,
    hosts_per_switch: usize,
    link: LinkConfig,
    switch: SwitchConfig,
) -> Generated {
    torus(&TorusParams {
        dims: [x, y, 1],
        hosts_per_switch,
        link,
        switch,
    })
}

/// A 3-D torus: `x · y · z` switches, `hosts_per_switch` hosts each. See
/// [`torus`].
pub fn torus_3d(
    x: usize,
    y: usize,
    z: usize,
    hosts_per_switch: usize,
    link: LinkConfig,
    switch: SwitchConfig,
) -> Generated {
    torus(&TorusParams {
        dims: [x, y, z],
        hosts_per_switch,
        link,
        switch,
    })
}

/// Parameters of a dragonfly fabric (see [`dragonfly`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DragonflyParams {
    /// Number of groups (`g`).
    pub groups: usize,
    /// Routers per group (`a`), fully meshed within the group.
    pub routers_per_group: usize,
    /// Hosts attached to each router (`h`).
    pub hosts_per_router: usize,
    /// Host ↔ router link.
    pub host_link: LinkConfig,
    /// Intra-group (local mesh) link.
    pub local_link: LinkConfig,
    /// Inter-group (global) link.
    pub global_link: LinkConfig,
    /// Buffering of every router.
    pub switch: SwitchConfig,
}

impl DragonflyParams {
    /// Total host capacity: `g · a · h`.
    pub fn capacity(&self) -> usize {
        self.groups * self.routers_per_group * self.hosts_per_router
    }
}

/// A dragonfly: `g` groups of `a` fully-meshed routers with `h` hosts
/// each; every *pair of groups* is joined by exactly one global link,
/// attached round-robin to the groups' routers so global connectivity
/// spreads evenly. Routing is minimal-path (the builder's BFS) with
/// deterministic ECMP over equal-cost choices — up to
/// `local → global → local`, the canonical dragonfly minimal route.
///
/// ```text
///   group 0          group 1          group 2
///  ┌r0──r1┐         ┌r0──r1┐         ┌r0──r1┐
///  │ ╲  ╱ │  ═══════│ ╲  ╱ │═══════  │ ╲  ╱ │   ── local mesh
///  └r3──r2┘         └r3──r2┘         └r3──r2┘   ══ one global link
///      ╚════════════════════════════════╝          per group pair
/// ```
///
/// # Panics
/// Panics if any count is zero or the fabric has fewer than two routers.
pub fn dragonfly(p: &DragonflyParams) -> Generated {
    let (g, a, h) = (p.groups, p.routers_per_group, p.hosts_per_router);
    assert!(g > 0 && a > 0 && h > 0, "dragonfly counts must be positive");
    assert!(g * a >= 2, "a dragonfly needs at least two routers");
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(g * a * h);
    let routers: Vec<SwitchId> = (0..g * a).map(|_| b.add_switch(p.switch)).collect();

    let mut host_groups = vec![Vec::with_capacity(h); g * a];
    for (i, &host) in hosts.iter().enumerate() {
        let r = i / h;
        b.link_host(host, routers[r], p.host_link);
        host_groups[r].push(host);
    }

    // Local full mesh within each group.
    for group in 0..g {
        for i in 0..a {
            for j in (i + 1)..a {
                b.link_switches(routers[group * a + i], routers[group * a + j], p.local_link);
            }
        }
    }
    // One global link per group pair, endpoints rotating through each
    // group's routers so every router carries ⌈(g−1)/a⌉ global links.
    for gi in 0..g {
        for gj in (gi + 1)..g {
            let ri = routers[gi * a + (gj - gi - 1) % a];
            let rj = routers[gj * a + (g + gi - gj - 1) % a];
            b.link_switches(ri, rj, p.global_link);
        }
    }

    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches: routers,
        agg_switches: Vec::new(),
        core_switches: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::Endpoint;

    fn gbe() -> LinkConfig {
        LinkConfig::gigabit_ethernet()
    }

    fn sw() -> SwitchConfig {
        SwitchConfig::commodity_ethernet()
    }

    #[test]
    fn single_switch_is_a_star() {
        let g = single_switch(5, gbe(), sw());
        assert_eq!(g.capacity(), 5);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(g.hosts[0], g.hosts[4]), 2);
    }

    #[test]
    fn star_of_switches_routes_via_core() {
        let g = star_of_switches(3, 4, gbe(), gbe(), 2, sw(), sw());
        assert_eq!(g.capacity(), 12);
        assert_eq!(g.host_groups.len(), 3);
        let (h0, h1, h4) = (g.hosts[0], g.hosts[1], g.hosts[4]);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(h0, h1), 2, "same leaf");
        assert_eq!(topo.hop_count(h0, h4), 4, "via core");
    }

    #[test]
    fn tree_uplink_bandwidth_implements_oversubscription() {
        let p = TreeParams {
            leaves: 4,
            hosts_per_leaf: 8,
            edge_link: gbe(),
            uplinks_per_leaf: 2,
            oversubscription: 4.0,
            uplink_latency_ns: 10_000,
            edge_switch: sw(),
            core_switch: sw(),
        };
        // 8 hosts × 125 MB/s = 1 GB/s under each leaf; 4:1 oversubscribed
        // over 2 uplinks → 125 MB/s each.
        assert!((p.uplink_bandwidth() - 125e6).abs() < 1.0);
        let g = two_level_tree(&p);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(g.hosts[0], g.hosts[31]), 4);
    }

    #[test]
    fn fat_tree_structure_and_hop_classes() {
        let p = FatTreeParams {
            k: 4,
            hosts_per_edge: 2,
            link: gbe(),
            switch: sw(),
        };
        let g = fat_tree(&p);
        assert_eq!(g.capacity(), 16);
        assert_eq!(g.edge_switches.len(), 8);
        assert_eq!(g.agg_switches.len(), 8);
        assert_eq!(g.core_switches.len(), 4);
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 2, "same edge");
        assert_eq!(topo.hop_count(hosts[0], hosts[2]), 4, "same pod");
        assert_eq!(topo.hop_count(hosts[0], hosts[15]), 6, "cross pod");
        // Last hop of any route terminates at the destination host.
        let route = topo.route(hosts[0], hosts[15]);
        assert_eq!(
            topo.tx_params[route[5].index()].to,
            Endpoint::Host(hosts[15])
        );
    }

    #[test]
    fn scattered_hosts_interleave_groups() {
        let g = star_of_switches(3, 4, gbe(), gbe(), 1, sw(), sw());
        let picked = g.scattered_hosts(5);
        // Round-robin over leaves: leaf0[0], leaf1[0], leaf2[0], leaf0[1], leaf1[1].
        assert_eq!(
            picked,
            vec![
                g.host_groups[0][0],
                g.host_groups[1][0],
                g.host_groups[2][0],
                g.host_groups[0][1],
                g.host_groups[1][1],
            ]
        );
    }

    #[test]
    #[should_panic(expected = "arity must be even")]
    fn odd_fat_tree_rejected() {
        let _ = fat_tree(&FatTreeParams {
            k: 3,
            hosts_per_edge: 2,
            link: gbe(),
            switch: sw(),
        });
    }

    #[test]
    fn torus_2d_routes_dimension_ordered() {
        let g = torus_2d(4, 3, 2, gbe(), sw());
        assert_eq!(g.capacity(), 24);
        assert_eq!(g.edge_switches.len(), 12);
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        // Same switch: host → switch → host.
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 2);
        // Switch (0,0) → (2,1): ring distances 2 + 1, plus the two host
        // hops. Host 0 sits on switch 0 = (0,0); hosts 2·s on switch s.
        let src = hosts[0];
        let dst = hosts[2 * (2 + 4)]; // switch (2,1)
                                      // 1 host hop + ring distances (2 along x, 1 along y) + final hop.
        assert_eq!(topo.hop_count(src, dst), 1 + 2 + 1 + 1);
        // Dimension order: x corrects before y — the second hop leaves
        // along x, and the route's switch sequence is (1,0), (2,0), (2,1).
        let route = topo.route(src, dst);
        use crate::topology::Endpoint;
        let seq: Vec<Endpoint> = route
            .iter()
            .map(|tx| topo.tx_params[tx.index()].to)
            .collect();
        assert_eq!(
            seq,
            vec![
                Endpoint::Switch(g.edge_switches[0]),
                Endpoint::Switch(g.edge_switches[1]),
                Endpoint::Switch(g.edge_switches[2]),
                Endpoint::Switch(g.edge_switches[2 + 4]),
                Endpoint::Host(dst),
            ]
        );
    }

    #[test]
    fn torus_wrap_links_take_the_short_way() {
        let g = torus_2d(4, 1, 1, gbe(), sw());
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        // 0 → 3 wraps backwards: one switch hop, not three.
        assert_eq!(topo.hop_count(hosts[0], hosts[3]), 3);
        assert_eq!(topo.hop_count(hosts[0], hosts[2]), 4, "true diameter");
    }

    #[test]
    fn torus_3d_hop_counts_sum_ring_distances() {
        let g = torus_3d(3, 3, 3, 1, gbe(), sw());
        assert_eq!(g.capacity(), 27);
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        // (0,0,0) → (1,1,1): three unit corrections + host hops.
        let dst = hosts[1 + 3 * (1 + 3)];
        assert_eq!(topo.hop_count(hosts[0], dst), 1 + 3 + 1);
    }

    #[test]
    fn dragonfly_structure_and_minimal_paths() {
        let p = DragonflyParams {
            groups: 4,
            routers_per_group: 4,
            hosts_per_router: 2,
            host_link: gbe(),
            local_link: gbe(),
            global_link: gbe(),
            switch: sw(),
        };
        let g = dragonfly(&p);
        assert_eq!(g.capacity(), 32);
        assert_eq!(g.edge_switches.len(), 16);
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    let hops = topo.hop_count(a, b);
                    // host + ≤1 local + ≤1 global + ≤1 local + host.
                    assert!((2..=5).contains(&hops), "{a}->{b}: {hops}");
                }
            }
        }
        // Same router: 2 hops. Same group: 3 (one local mesh hop).
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 2);
        assert_eq!(topo.hop_count(hosts[0], hosts[2]), 3);
    }

    #[test]
    fn placements_cover_scatter_pack_random() {
        let g = star_of_switches(3, 4, gbe(), gbe(), 1, sw(), sw());
        let scatter = Placement::Scatter.place(&g, 6, 9);
        assert_eq!(scatter, g.scattered_hosts(6));
        let pack = Placement::Pack.place(&g, 6, 9);
        assert_eq!(
            pack,
            vec![
                g.host_groups[0][0],
                g.host_groups[0][1],
                g.host_groups[0][2],
                g.host_groups[0][3],
                g.host_groups[1][0],
                g.host_groups[1][1],
            ],
            "pack fills leaf 0 before touching leaf 1"
        );
        let r1 = Placement::RandomSeeded.place(&g, 6, 9);
        let r2 = Placement::RandomSeeded.place(&g, 6, 9);
        assert_eq!(r1, r2, "same seed, same placement");
        let r3 = Placement::RandomSeeded.place(&g, 6, 10);
        assert_ne!(r1, r3, "different seed, different placement");
    }

    #[test]
    fn placement_names_round_trip() {
        for p in Placement::all() {
            assert_eq!(Placement::parse(p.name()), Some(p));
        }
        assert_eq!(Placement::parse("compact"), None);
    }
}
