//! Parameterized topology generators.
//!
//! The paper measures three hand-built single-core clusters; the scenario
//! engine (`contention-scenario`) needs whole *families* of fabrics. Each
//! generator returns a [`Generated`]: a ready-to-`build` [`TopologyBuilder`]
//! plus the host ids grouped by their edge switch, so callers can place
//! ranks (packed or scattered) and inspect the structure.
//!
//! Generators provided:
//!
//! * [`single_switch`] — `n` hosts on one switch (the paper's Myrinet /
//!   small-job shape);
//! * [`star_of_switches`] — leaf switches around one core, with explicit
//!   uplink parameters (the paper's Fast Ethernet shape);
//! * [`two_level_tree`] — leaf switches under one core where the uplink
//!   capacity is **derived from an oversubscription ratio**: total host
//!   bandwidth per leaf = `oversubscription ×` total uplink bandwidth;
//! * [`fat_tree`] — a k-ary fat-tree (k pods of k/2 edge + k/2 aggregation
//!   switches, (k/2)² cores) with a configurable number of hosts per edge
//!   switch.

use crate::config::{LinkConfig, SwitchConfig};
use crate::ids::{HostId, SwitchId};
use crate::topology::TopologyBuilder;

/// A generator's output: the builder (not yet built, so callers can still
/// attach a host I/O bus or extra links) plus structural metadata.
pub struct Generated {
    /// The assembled builder.
    pub builder: TopologyBuilder,
    /// All hosts in creation order.
    pub hosts: Vec<HostId>,
    /// Hosts grouped by the edge switch they attach to.
    pub host_groups: Vec<Vec<HostId>>,
    /// Edge (leaf) switches.
    pub edge_switches: Vec<SwitchId>,
    /// Aggregation switches (fat-tree only; empty otherwise).
    pub agg_switches: Vec<SwitchId>,
    /// Core switches (empty for a single switch).
    pub core_switches: Vec<SwitchId>,
}

impl Generated {
    /// Total host capacity.
    pub fn capacity(&self) -> usize {
        self.hosts.len()
    }

    /// The first `n` hosts taken round-robin across edge switches — the
    /// scatter placement a batch scheduler produces and the placement the
    /// paper's presets use.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Generated::capacity`].
    pub fn scattered_hosts(&self, n: usize) -> Vec<HostId> {
        assert!(
            n <= self.capacity(),
            "{n} ranks exceed the fabric's {} hosts",
            self.capacity()
        );
        let mut picked = Vec::with_capacity(n);
        let mut depth = 0;
        while picked.len() < n {
            for group in &self.host_groups {
                if picked.len() == n {
                    break;
                }
                if let Some(&h) = group.get(depth) {
                    picked.push(h);
                }
            }
            depth += 1;
        }
        picked
    }
}

/// `n` hosts on a single switch.
///
/// # Panics
/// Panics if `n == 0`.
pub fn single_switch(n: usize, link: LinkConfig, switch: SwitchConfig) -> Generated {
    assert!(n > 0, "single_switch needs at least one host");
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let sw = b.add_switch(switch);
    for &h in &hosts {
        b.link_host(h, sw, link);
    }
    Generated {
        builder: b,
        host_groups: vec![hosts.clone()],
        hosts,
        edge_switches: vec![sw],
        agg_switches: Vec::new(),
        core_switches: Vec::new(),
    }
}

/// `leaves` leaf switches of `hosts_per_leaf` hosts each around one core
/// switch, `uplinks_per_leaf` parallel uplinks per leaf with explicit
/// `uplink` parameters.
///
/// # Panics
/// Panics if any count is zero.
pub fn star_of_switches(
    leaves: usize,
    hosts_per_leaf: usize,
    edge_link: LinkConfig,
    uplink: LinkConfig,
    uplinks_per_leaf: usize,
    edge_switch: SwitchConfig,
    core_switch: SwitchConfig,
) -> Generated {
    assert!(leaves > 0 && hosts_per_leaf > 0 && uplinks_per_leaf > 0);
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(leaves * hosts_per_leaf);
    let edges: Vec<SwitchId> = (0..leaves).map(|_| b.add_switch(edge_switch)).collect();
    let core = b.add_switch(core_switch);
    let mut host_groups = vec![Vec::with_capacity(hosts_per_leaf); leaves];
    for (i, &h) in hosts.iter().enumerate() {
        let leaf = i / hosts_per_leaf;
        b.link_host(h, edges[leaf], edge_link);
        host_groups[leaf].push(h);
    }
    for &e in &edges {
        for _ in 0..uplinks_per_leaf {
            b.link_switches(e, core, uplink);
        }
    }
    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches: edges,
        agg_switches: Vec::new(),
        core_switches: vec![core],
    }
}

/// Parameters of an oversubscribed two-level tree (see [`two_level_tree`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host ↔ leaf link.
    pub edge_link: LinkConfig,
    /// Parallel uplinks from each leaf to the core.
    pub uplinks_per_leaf: usize,
    /// Oversubscription ratio: total host bandwidth under a leaf divided
    /// by the leaf's total uplink bandwidth. `1.0` is non-blocking; the
    /// paper's GdX trunks are ≈ 3:1.
    pub oversubscription: f64,
    /// Extra one-way latency of each uplink, nanoseconds.
    pub uplink_latency_ns: u64,
    /// Leaf switch buffering.
    pub edge_switch: SwitchConfig,
    /// Core switch buffering.
    pub core_switch: SwitchConfig,
}

impl TreeParams {
    /// The derived per-uplink bandwidth in bytes/second.
    pub fn uplink_bandwidth(&self) -> f64 {
        self.hosts_per_leaf as f64 * self.edge_link.bandwidth_bytes_per_sec
            / (self.oversubscription * self.uplinks_per_leaf as f64)
    }
}

/// A two-level tree whose uplink capacity is derived from
/// [`TreeParams::oversubscription`].
///
/// # Panics
/// Panics if any count is zero or the ratio is not a positive finite
/// number.
pub fn two_level_tree(p: &TreeParams) -> Generated {
    assert!(p.leaves > 0 && p.hosts_per_leaf > 0 && p.uplinks_per_leaf > 0);
    assert!(
        p.oversubscription.is_finite() && p.oversubscription > 0.0,
        "oversubscription must be positive and finite"
    );
    let uplink = LinkConfig {
        bandwidth_bytes_per_sec: p.uplink_bandwidth(),
        latency_ns: p.uplink_latency_ns,
    };
    star_of_switches(
        p.leaves,
        p.hosts_per_leaf,
        p.edge_link,
        uplink,
        p.uplinks_per_leaf,
        p.edge_switch,
        p.core_switch,
    )
}

/// Parameters of a k-ary fat-tree (see [`fat_tree`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeParams {
    /// Arity: `k` pods, `k/2` edge and `k/2` aggregation switches per pod,
    /// `(k/2)²` core switches. Must be even and ≥ 2.
    pub k: usize,
    /// Hosts per edge switch (the canonical fat-tree uses `k/2`).
    pub hosts_per_edge: usize,
    /// Link used at every level (fat-trees are bandwidth-uniform).
    pub link: LinkConfig,
    /// Buffering used for every switch.
    pub switch: SwitchConfig,
}

impl FatTreeParams {
    /// Total host capacity: `k · (k/2) · hosts_per_edge`.
    pub fn capacity(&self) -> usize {
        self.k * (self.k / 2) * self.hosts_per_edge
    }
}

/// A k-ary fat-tree: every pod's edge switches connect to all of the pod's
/// aggregation switches; aggregation switch `j` of every pod connects to
/// core group `j` (cores `j·k/2 .. (j+1)·k/2`). Same-edge pairs are 2 hops,
/// same-pod pairs 4 hops, cross-pod pairs 6 hops; equal-cost paths are
/// spread by the builder's deterministic ECMP hashing.
///
/// # Panics
/// Panics if `k` is odd or zero, or `hosts_per_edge == 0`.
pub fn fat_tree(p: &FatTreeParams) -> Generated {
    assert!(
        p.k >= 2 && p.k.is_multiple_of(2),
        "fat-tree arity must be even, got {}",
        p.k
    );
    assert!(p.hosts_per_edge > 0);
    let half = p.k / 2;
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(p.capacity());

    let mut edge_switches = Vec::with_capacity(p.k * half);
    let mut agg_switches = Vec::with_capacity(p.k * half);
    for _pod in 0..p.k {
        for _ in 0..half {
            edge_switches.push(b.add_switch(p.switch));
        }
        for _ in 0..half {
            agg_switches.push(b.add_switch(p.switch));
        }
    }
    let core_switches: Vec<SwitchId> = (0..half * half).map(|_| b.add_switch(p.switch)).collect();

    // Hosts onto edge switches, filling edge by edge.
    let mut host_groups = vec![Vec::with_capacity(p.hosts_per_edge); p.k * half];
    for (i, &h) in hosts.iter().enumerate() {
        let edge = i / p.hosts_per_edge;
        b.link_host(h, edge_switches[edge], p.link);
        host_groups[edge].push(h);
    }

    for pod in 0..p.k {
        for e in 0..half {
            for a in 0..half {
                b.link_switches(
                    edge_switches[pod * half + e],
                    agg_switches[pod * half + a],
                    p.link,
                );
            }
        }
        for a in 0..half {
            for c in 0..half {
                b.link_switches(
                    agg_switches[pod * half + a],
                    core_switches[a * half + c],
                    p.link,
                );
            }
        }
    }

    Generated {
        builder: b,
        hosts,
        host_groups,
        edge_switches,
        agg_switches,
        core_switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::Endpoint;

    fn gbe() -> LinkConfig {
        LinkConfig::gigabit_ethernet()
    }

    fn sw() -> SwitchConfig {
        SwitchConfig::commodity_ethernet()
    }

    #[test]
    fn single_switch_is_a_star() {
        let g = single_switch(5, gbe(), sw());
        assert_eq!(g.capacity(), 5);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(g.hosts[0], g.hosts[4]), 2);
    }

    #[test]
    fn star_of_switches_routes_via_core() {
        let g = star_of_switches(3, 4, gbe(), gbe(), 2, sw(), sw());
        assert_eq!(g.capacity(), 12);
        assert_eq!(g.host_groups.len(), 3);
        let (h0, h1, h4) = (g.hosts[0], g.hosts[1], g.hosts[4]);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(h0, h1), 2, "same leaf");
        assert_eq!(topo.hop_count(h0, h4), 4, "via core");
    }

    #[test]
    fn tree_uplink_bandwidth_implements_oversubscription() {
        let p = TreeParams {
            leaves: 4,
            hosts_per_leaf: 8,
            edge_link: gbe(),
            uplinks_per_leaf: 2,
            oversubscription: 4.0,
            uplink_latency_ns: 10_000,
            edge_switch: sw(),
            core_switch: sw(),
        };
        // 8 hosts × 125 MB/s = 1 GB/s under each leaf; 4:1 oversubscribed
        // over 2 uplinks → 125 MB/s each.
        assert!((p.uplink_bandwidth() - 125e6).abs() < 1.0);
        let g = two_level_tree(&p);
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(g.hosts[0], g.hosts[31]), 4);
    }

    #[test]
    fn fat_tree_structure_and_hop_classes() {
        let p = FatTreeParams {
            k: 4,
            hosts_per_edge: 2,
            link: gbe(),
            switch: sw(),
        };
        let g = fat_tree(&p);
        assert_eq!(g.capacity(), 16);
        assert_eq!(g.edge_switches.len(), 8);
        assert_eq!(g.agg_switches.len(), 8);
        assert_eq!(g.core_switches.len(), 4);
        let hosts = g.hosts.clone();
        let topo = g.builder.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 2, "same edge");
        assert_eq!(topo.hop_count(hosts[0], hosts[2]), 4, "same pod");
        assert_eq!(topo.hop_count(hosts[0], hosts[15]), 6, "cross pod");
        // Last hop of any route terminates at the destination host.
        let route = topo.route(hosts[0], hosts[15]);
        assert_eq!(
            topo.tx_params[route[5].index()].to,
            Endpoint::Host(hosts[15])
        );
    }

    #[test]
    fn scattered_hosts_interleave_groups() {
        let g = star_of_switches(3, 4, gbe(), gbe(), 1, sw(), sw());
        let picked = g.scattered_hosts(5);
        // Round-robin over leaves: leaf0[0], leaf1[0], leaf2[0], leaf0[1], leaf1[1].
        assert_eq!(
            picked,
            vec![
                g.host_groups[0][0],
                g.host_groups[1][0],
                g.host_groups[2][0],
                g.host_groups[0][1],
                g.host_groups[1][1],
            ]
        );
    }

    #[test]
    #[should_panic(expected = "arity must be even")]
    fn odd_fat_tree_rejected() {
        let _ = fat_tree(&FatTreeParams {
            k: 3,
            hosts_per_edge: 2,
            link: gbe(),
            switch: sw(),
        });
    }
}
