//! # simnet — packet-level discrete-event network simulator
//!
//! This crate stands in for the physical clusters of Steffenel's CLUSTER
//! 2006 paper (Grid'5000's icluster2 and GdX, plus a Myrinet 2000 fabric).
//! It simulates hosts, switches and links at packet granularity with two
//! transports:
//!
//! * a **TCP-like** transport whose loss recovery (RTO with a 200 ms floor,
//!   exponential backoff, fast retransmit) reproduces the straggler
//!   connections the paper observes when All-to-All traffic saturates
//!   Ethernet switches;
//! * a **GM-like** transport (Myrinet): lossless, fixed-window, no timers.
//!
//! Contention emerges mechanistically — finite shared switch buffers tail-
//! drop under burst collisions, TCP backs off and stalls — rather than being
//! injected as a synthetic slowdown, so the model crates can *measure* a
//! contention signature the same way the paper measures one on hardware.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! let mut b = TopologyBuilder::new();
//! let hosts = b.add_hosts(2);
//! let sw = b.add_switch(SwitchConfig::commodity_ethernet());
//! for &h in &hosts {
//!     b.link_host(h, sw, LinkConfig::gigabit_ethernet());
//! }
//! let cfg = SimConfig::default();
//! let mut sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
//! let conn = sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
//! sim.send(conn, 1_000_000, 42);
//! while let Some(n) = sim.poll() {
//!     if let Notification::Delivered { tag, at, .. } = n {
//!         assert_eq!(tag, 42);
//!         assert!(at.as_secs_f64() > 0.0);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use contention_obs as obs;

pub mod config;
pub mod engine;
pub mod event;
pub mod fluid;
pub mod generate;
pub mod guard;
pub mod ids;
pub mod packet;
pub mod stats;
pub mod time;
pub mod topology;
pub mod transport;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{
        GmConfig, LinkConfig, SimConfig, SwitchConfig, TcpConfig, TransportKind,
    };
    pub use crate::engine::{BlockedConn, Simulator};
    pub use crate::guard::{GuardStop, RunGuard, GUARD_CHECK_INTERVAL};
    pub use crate::ids::{ConnId, HostId, SwitchId};
    pub use crate::packet::{Notification, PackedPacket, Packet, PacketKind};
    pub use crate::stats::NetStats;
    pub use crate::time::SimTime;
    pub use crate::topology::{Topology, TopologyBuilder, TopologyError};
    pub use contention_obs::{EngineRecorder, NoopRecorder, Recorder, TelemetryConfig};
}

pub use prelude::*;
