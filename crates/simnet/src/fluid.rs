//! Flow-level (fluid) network model: max-min fair bandwidth sharing.
//!
//! The packet engine reproduces *mechanistic* contention — drops, timeouts,
//! stragglers. This module is its idealized counterpart, in the style of
//! SimGrid's and dslab's flow models: every transfer is a fluid flow across
//! capacitated serializers, rates follow max-min fairness (progressive
//! filling), and the only events are flow starts and finishes. A million
//! simultaneous flows advance in a handful of rate recomputations instead
//! of billions of per-packet events, which is what makes 1k–4k-host
//! fabrics simulable at all.
//!
//! Two entry points:
//!
//! * [`FluidSim`] — the churn-capable event engine behind the scenario
//!   layer's `backend = "fluid"` tier: flows start and finish at arbitrary
//!   instants, rates are recomputed on every churn event (bottleneck-link
//!   saturation order), and an attached [`Recorder`] receives
//!   link-utilization samples integrated from the fluid rates;
//! * [`FluidNet`] — the original batch facade (start everything, run to
//!   completion), now a thin wrapper over [`FluidSim`] kept for estimate
//!   call sites and tests.
//!
//! Uses:
//!
//! * **cross-validation** — a fluid completion time is a lower bound on the
//!   packet engine's result for the same traffic (no loss, no protocol
//!   overhead, perfect fairness); tests assert the packet engine never
//!   beats it by more than protocol-overhead margins;
//! * **fast sweeps** — a 64-node All-to-All estimate costs microseconds,
//!   letting experiments bracket huge parameter spaces before committing
//!   packet-level time;
//! * **contention accounting** — the gap between fluid and the Proposition
//!   1 bound isolates *topological* contention (shared trunks, half-duplex
//!   buses) from *protocol* contention (TCP loss recovery).
//!
//! # The sharing algorithm
//!
//! Rates are max-min fair: no flow can gain bandwidth without taking it
//! from a flow that already has less. [`FluidSim`] computes the allocation
//! by progressive filling in bottleneck-saturation order — repeatedly find
//! the serializer slot with the smallest fair share `residual / unfrozen`,
//! freeze every unfrozen flow crossing it at that share, subtract the
//! frozen bandwidth, and continue until every flow is frozen. Per-slot
//! flow lists (a CSR index rebuilt per recomputation) make each
//! recomputation `O(total hops + bottleneck iterations × active slots)`,
//! so the cost of a churn event scales with the traffic actually in
//! flight, not with per-packet state.

use crate::guard::{GuardStop, RunGuard};
use crate::ids::HostId;
use crate::time::SimTime;
use crate::topology::Topology;
use contention_obs::{NoopRecorder, Recorder};

/// Finished-flow tolerance: anything within a byte of done is done.
const DONE_TOLERANCE_BYTES: f64 = 1.0;

/// A completed fluid transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidCompletion {
    /// Caller-supplied tag.
    pub tag: u64,
    /// Completion instant.
    pub at: SimTime,
}

/// One fluid flow in flight.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    /// Span into the slot arena: the serializer slots this flow occupies
    /// (sorted, deduplicated — shared slots model half-duplex buses
    /// exactly as the packet engine does).
    span_start: u32,
    span_len: u32,
    remaining_bytes: f64,
    /// Current max-min rate in bytes/second.
    rate: f64,
    tag: u64,
}

/// Churn-capable max-min fair flow-level simulator over a built
/// [`Topology`].
///
/// Unlike [`FluidNet`], flows may start and finish at arbitrary simulated
/// instants: the caller interleaves [`FluidSim::start_flow`] with
/// [`FluidSim::advance_to`] / [`FluidSim::next_finish_ns`], and rates are
/// lazily recomputed whenever the flow set changed. Simulated time is a
/// monotone `f64` nanosecond clock; completions are reported with rounded
/// [`SimTime`] stamps.
///
/// The `R` parameter is the telemetry recorder: when `R::ENABLED`, every
/// advance interval emits one `on_tx_busy` sample per busy serializer slot
/// with the bytes that flowed through it at the current rates — per-link
/// utilization falls out of the fluid rates for free. The default
/// [`NoopRecorder`] compiles all of it away.
pub struct FluidSim<'a, R: Recorder = NoopRecorder> {
    topo: &'a Topology,
    /// Capacity per serializer slot in bytes/second.
    capacity: Vec<f64>,
    /// Representative transmitter id per slot (first tx mapped onto it),
    /// used to label recorder samples.
    slot_tx: Vec<u32>,
    flows: Vec<FlowState>,
    /// Backing store for flow slot lists (grows monotonically; spans of
    /// finished flows are not reclaimed, which is fine for the bounded
    /// programs the scenario layer runs).
    slot_arena: Vec<u32>,
    now_ns: f64,
    /// Flow set changed since the last rate computation.
    dirty: bool,
    /// Relative finish-coalescing window (see [`FluidSim::set_finish_window`]).
    finish_window_rel: f64,
    /// Lifetime count of full rate recomputations (performance counter).
    recomputes: u64,
    /// Supervision limits polled once per advance iteration; the event
    /// budget counts rate recomputations here (the fluid tier's unit of
    /// solver effort).
    guard: RunGuard,
    guard_active: bool,
    guard_recompute_origin: u64,
    guard_time_origin_ns: f64,
    stopped: Option<GuardStop>,
    recorder: R,
    // Scratch buffers reused across recomputations.
    scratch_residual: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_offsets: Vec<u32>,
    scratch_csr: Vec<u32>,
    scratch_frozen: Vec<bool>,
    scratch_rate: Vec<f64>,
    /// Per-flow projected finish instants (windowed stamping only).
    scratch_finish: Vec<f64>,
}

impl<'a> FluidSim<'a, NoopRecorder> {
    /// Creates an empty fluid simulation over `topo` with no telemetry.
    pub fn new(topo: &'a Topology) -> Self {
        Self::with_recorder(topo, NoopRecorder)
    }
}

impl<'a, R: Recorder> FluidSim<'a, R> {
    /// Creates an empty fluid simulation over `topo` with `recorder`
    /// attached.
    pub fn with_recorder(topo: &'a Topology, recorder: R) -> Self {
        let mut capacity = vec![0.0; topo.n_serializers];
        let mut slot_tx = vec![u32::MAX; topo.n_serializers];
        for (i, params) in topo.tx_params.iter().enumerate() {
            let slot = params.serializer as usize;
            // All members of a shared slot have equal rates by construction.
            capacity[slot] = 1e9 / params.ns_per_byte;
            if slot_tx[slot] == u32::MAX {
                slot_tx[slot] = i as u32;
            }
        }
        Self {
            topo,
            capacity,
            slot_tx,
            flows: Vec::new(),
            slot_arena: Vec::new(),
            now_ns: 0.0,
            dirty: false,
            finish_window_rel: 0.0,
            recomputes: 0,
            guard: RunGuard::default(),
            guard_active: false,
            guard_recompute_origin: 0,
            guard_time_origin_ns: 0.0,
            stopped: None,
            recorder,
            scratch_residual: Vec::new(),
            scratch_count: Vec::new(),
            scratch_offsets: Vec::new(),
            scratch_csr: Vec::new(),
            scratch_frozen: Vec::new(),
            scratch_rate: Vec::new(),
            scratch_finish: Vec::new(),
        }
    }

    /// Sets the relative finish-coalescing window (the fluid analogue of
    /// SimGrid's `maxmin` precision knob). Default `0.0` — exact mode.
    ///
    /// With a window `rel > 0`, an advance that reaches the earliest flow
    /// finish at instant `t` keeps draining at the *current* rates through
    /// `t·(1+rel)` and completes every flow finishing inside that span in
    /// one batch, paying **one** rate recomputation for the whole wave
    /// cluster instead of one per distinct finish instant. Completed flows
    /// are stamped at their exact projected finishes (at pre-window
    /// rates); only the *redistribution* of freed bandwidth to survivors
    /// is deferred, so every reported time errs late by at most a factor
    /// `rel` — a 1e-3 window bounds the error at 0.1 %, far below the
    /// packet-vs-fluid model error bands, while collapsing the `O(hosts)`
    /// near-simultaneous finish waves of a large symmetric all-to-all
    /// (ECMP collision classes) into `O(log(spread)/rel)` recomputations.
    ///
    /// # Panics
    /// Panics if `rel` is negative or not finite.
    pub fn set_finish_window(&mut self, rel: f64) {
        assert!(rel.is_finite() && rel >= 0.0, "bad finish window {rel}");
        self.finish_window_rel = rel;
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Number of flows still in flight.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of full max-min rate recomputations performed so far — the
    /// dominant cost of a fluid run (each is `O(total hops)`). Exposed so
    /// benches and telemetry can report solver effort alongside wall time.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Installs supervision limits, replacing any previous guard and
    /// clearing a tripped stop. The budget (counting rate recomputations
    /// here) and the simulated-time horizon are measured from this
    /// instant; the wall-clock deadline is absolute.
    pub fn set_guard(&mut self, guard: RunGuard) {
        self.guard_active = !guard.is_unlimited();
        self.guard_recompute_origin = self.recomputes;
        self.guard_time_origin_ns = self.now_ns;
        self.stopped = None;
        self.guard = guard;
    }

    /// Checks the installed guard now and returns the stop reason if any
    /// limit has tripped (now or during an earlier advance). Drivers
    /// poll this between advances so pure-event phases with no fluid in
    /// flight still honor deadlines and cancellation.
    pub fn guard_stop(&mut self) -> Option<GuardStop> {
        if !self.guard_active {
            return None;
        }
        if self.stopped.is_none() {
            let used = self.recomputes - self.guard_recompute_origin;
            let elapsed = (self.now_ns - self.guard_time_origin_ns).max(0.0) as u64;
            self.stopped = self.guard.check(used, elapsed);
        }
        self.stopped
    }

    /// Takes the stop reason, letting the simulation be advanced again
    /// (the guard re-trips at the next check if its limit still holds).
    pub fn take_stop(&mut self) -> Option<GuardStop> {
        self.stopped.take()
    }

    /// Consumes the simulation, returning the recorder for harvest.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Starts a flow of `bytes` from `src` to `dst` at the current time.
    ///
    /// # Panics
    /// Panics if `src == dst` or `bytes == 0` (zero-byte transfers carry
    /// no fluid and must be completed by the caller directly).
    pub fn start_flow(&mut self, src: HostId, dst: HostId, bytes: u64, tag: u64) {
        assert!(bytes > 0, "empty fluid flow");
        let route = self.topo.route(src, dst);
        let span_start = self.slot_arena.len() as u32;
        for tx in route {
            let slot = self.topo.tx_params[tx.index()].serializer;
            self.slot_arena.push(slot);
        }
        // A flow crossing the same slot twice (a half-duplex bus at both
        // endpoints, say) must not double-count its demand.
        let span = &mut self.slot_arena[span_start as usize..];
        span.sort_unstable();
        let mut unique = 1;
        for i in 1..span.len() {
            if span[i] != span[i - 1] {
                span[unique] = span[i];
                unique += 1;
            }
        }
        self.slot_arena.truncate(span_start as usize + unique);
        self.flows.push(FlowState {
            span_start,
            span_len: unique as u32,
            remaining_bytes: bytes as f64,
            rate: 0.0,
            tag,
        });
        self.dirty = true;
    }

    fn flow_slots(flow: &FlowState) -> std::ops::Range<usize> {
        flow.span_start as usize..(flow.span_start + flow.span_len) as usize
    }

    /// Progressive filling in bottleneck-saturation order. `O(total hops)`
    /// for freezing plus one active-slot scan per bottleneck level.
    fn recompute_rates(&mut self) {
        self.recomputes += 1;
        let n_slots = self.capacity.len();
        self.scratch_residual.clone_from(&self.capacity);
        self.scratch_count.clear();
        self.scratch_count.resize(n_slots, 0);
        for flow in &self.flows {
            for &s in &self.slot_arena[Self::flow_slots(flow)] {
                self.scratch_count[s as usize] += 1;
            }
        }
        // CSR: per-slot list of flow indices.
        self.scratch_offsets.clear();
        self.scratch_offsets.resize(n_slots + 1, 0);
        for s in 0..n_slots {
            self.scratch_offsets[s + 1] = self.scratch_offsets[s] + self.scratch_count[s];
        }
        let total = self.scratch_offsets[n_slots] as usize;
        self.scratch_csr.clear();
        self.scratch_csr.resize(total, 0);
        let mut cursor: Vec<u32> = self.scratch_offsets[..n_slots].to_vec();
        for (fi, flow) in self.flows.iter().enumerate() {
            for &s in &self.slot_arena[Self::flow_slots(flow)] {
                self.scratch_csr[cursor[s as usize] as usize] = fi as u32;
                cursor[s as usize] += 1;
            }
        }
        let active: Vec<u32> = (0..n_slots as u32)
            .filter(|&s| self.scratch_count[s as usize] > 0)
            .collect();

        self.scratch_frozen.clear();
        self.scratch_frozen.resize(self.flows.len(), false);
        self.scratch_rate.clear();
        self.scratch_rate.resize(self.flows.len(), 0.0);
        let mut remaining_flows = self.flows.len();
        while remaining_flows > 0 {
            // Find the bottleneck slot: smallest fair share among slots
            // still carrying unfrozen flows.
            let mut best_share = f64::INFINITY;
            let mut best_slot = usize::MAX;
            for &s in &active {
                let s = s as usize;
                if self.scratch_count[s] > 0 {
                    let share = self.scratch_residual[s] / self.scratch_count[s] as f64;
                    if share < best_share {
                        best_share = share;
                        best_slot = s;
                    }
                }
            }
            assert!(best_slot != usize::MAX, "active flow without a bottleneck");
            // Freeze every unfrozen flow crossing the bottleneck at the
            // bottleneck's fair share.
            let (lo, hi) = (
                self.scratch_offsets[best_slot] as usize,
                self.scratch_offsets[best_slot + 1] as usize,
            );
            for idx in lo..hi {
                let fi = self.scratch_csr[idx] as usize;
                if self.scratch_frozen[fi] {
                    continue;
                }
                self.scratch_frozen[fi] = true;
                self.scratch_rate[fi] = best_share;
                remaining_flows -= 1;
                let flow = self.flows[fi];
                for &s in &self.slot_arena[Self::flow_slots(&flow)] {
                    let s = s as usize;
                    self.scratch_residual[s] -= best_share;
                    // Numerical guard: residuals may dip epsilon-negative.
                    if self.scratch_residual[s] < 0.0 {
                        self.scratch_residual[s] = 0.0;
                    }
                    self.scratch_count[s] -= 1;
                }
            }
        }
        for (fi, flow) in self.flows.iter_mut().enumerate() {
            flow.rate = self.scratch_rate[fi];
        }
    }

    fn ensure_rates(&mut self) {
        if self.dirty {
            if !self.flows.is_empty() {
                self.recompute_rates();
            }
            self.dirty = false;
        }
    }

    /// The simulated instant (nanoseconds) the earliest active flow
    /// finishes at current rates, or `None` when no flow is in flight.
    pub fn next_finish_ns(&mut self) -> Option<f64> {
        self.ensure_rates();
        self.flows
            .iter()
            .map(|f| self.now_ns + (f.remaining_bytes / f.rate) * 1e9)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Drains `dt_secs` of fluid at current rates and emits one
    /// utilization sample per busy slot when the recorder is enabled.
    fn drain(&mut self, dt_secs: f64, from_ns: f64, to_ns: f64) {
        if dt_secs <= 0.0 {
            return;
        }
        if R::ENABLED {
            let n_slots = self.capacity.len();
            self.scratch_rate.clear();
            self.scratch_rate.resize(n_slots, 0.0);
            for flow in &self.flows {
                for &s in &self.slot_arena[Self::flow_slots(flow)] {
                    self.scratch_rate[s as usize] += flow.rate;
                }
            }
            for (s, &rate) in self.scratch_rate.iter().enumerate() {
                if rate > 0.0 {
                    self.recorder.on_tx_busy(
                        self.slot_tx[s],
                        from_ns.round() as u64,
                        to_ns.round() as u64,
                        (rate * dt_secs).round() as u64,
                    );
                }
            }
        }
        for flow in &mut self.flows {
            flow.remaining_bytes -= flow.rate * dt_secs;
        }
    }

    /// Advances simulated time to exactly `target_ns`, appending every
    /// flow completion at or before it (stamped at its own finish time) to
    /// `completions`. Finishes within `DONE_TOLERANCE_BYTES` of the same
    /// instant coalesce onto that instant, so a symmetric all-to-all's
    /// wave of identical flows costs one churn event, not thousands.
    ///
    /// A tripped [`RunGuard`] limit (see [`FluidSim::set_guard`]) makes
    /// the advance return early, short of `target_ns`; check
    /// [`FluidSim::guard_stop`] to distinguish that from a completed
    /// advance.
    ///
    /// # Panics
    /// Panics if `target_ns` is behind the current time.
    pub fn advance_to(&mut self, target_ns: f64, completions: &mut Vec<FluidCompletion>) {
        assert!(
            target_ns >= self.now_ns,
            "fluid time must advance monotonically"
        );
        loop {
            if self.guard_active && self.guard_stop().is_some() {
                return;
            }
            self.ensure_rates();
            let next = self
                .flows
                .iter()
                .map(|f| (f.remaining_bytes / f.rate) * 1e9)
                .fold(f64::INFINITY, f64::min);
            let next_ns = self.now_ns + next;
            if self.flows.is_empty() || next_ns > target_ns {
                let dt = (target_ns - self.now_ns) / 1e9;
                let from = self.now_ns;
                self.drain(dt, from, target_ns);
                self.now_ns = target_ns;
                return;
            }
            // Windowed mode drains through the whole coalescing span at the
            // current rates; every flow finishing inside it goes ≤ 0
            // remaining and completes below, stamped at its exact projected
            // finish. Exact mode (window 0) stops at the earliest finish.
            let windowed = self.finish_window_rel > 0.0;
            let stop_ns = if windowed {
                (next_ns * (1.0 + self.finish_window_rel)).min(target_ns)
            } else {
                next_ns
            };
            if windowed {
                self.scratch_finish.clear();
                self.scratch_finish.extend(
                    self.flows
                        .iter()
                        .map(|f| self.now_ns + (f.remaining_bytes / f.rate) * 1e9),
                );
            }
            let dt = (stop_ns - self.now_ns) / 1e9;
            let from = self.now_ns;
            self.drain(dt, from, stop_ns);
            self.now_ns = stop_ns;
            let at = SimTime(self.now_ns.round() as u64);
            let mut i = 0;
            while i < self.flows.len() {
                if self.flows[i].remaining_bytes <= DONE_TOLERANCE_BYTES {
                    completions.push(FluidCompletion {
                        tag: self.flows[i].tag,
                        at: if windowed {
                            SimTime(self.scratch_finish[i].min(stop_ns).round() as u64)
                        } else {
                            at
                        },
                    });
                    self.flows.swap_remove(i);
                    if windowed {
                        self.scratch_finish.swap_remove(i);
                    }
                    self.dirty = true;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Runs every in-flight flow to completion, returning completions in
    /// time order (ties broken by start order).
    pub fn run_to_completion(&mut self) -> Vec<FluidCompletion> {
        let mut completions = Vec::with_capacity(self.flows.len());
        while let Some(t) = self.next_finish_ns() {
            // Give a windowed advance room to coalesce the wave cluster;
            // exact mode stops at `t` either way.
            self.advance_to(t * (1.0 + self.finish_window_rel), &mut completions);
            if self.stopped.is_some() {
                break;
            }
        }
        completions.sort_by_key(|c| c.at);
        completions
    }
}

/// Batch max-min fair flow-level facade over a built [`Topology`]: start
/// all flows at time zero, run to completion. A thin wrapper over
/// [`FluidSim`] kept for estimate call sites; use [`FluidSim`] directly
/// when flows churn.
pub struct FluidNet<'a> {
    sim: FluidSim<'a, NoopRecorder>,
}

impl<'a> FluidNet<'a> {
    /// Creates an empty fluid network over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        Self {
            sim: FluidSim::new(topo),
        }
    }

    /// Starts a flow of `bytes` from `src` to `dst` at the current time.
    ///
    /// # Panics
    /// Panics if `src == dst` or `bytes == 0`.
    pub fn start_flow(&mut self, src: HostId, dst: HostId, bytes: u64, tag: u64) {
        self.sim.start_flow(src, dst, bytes, tag);
    }

    /// Number of flows still active.
    pub fn active_flows(&self) -> usize {
        self.sim.active_flows()
    }

    /// Runs all flows to completion, returning completions in time order.
    pub fn run_to_completion(&mut self) -> Vec<FluidCompletion> {
        self.sim.run_to_completion()
    }

    /// Convenience: the fluid completion time (seconds) of a uniform
    /// All-to-All of `m` bytes per ordered pair among `hosts`.
    pub fn alltoall_estimate(topo: &Topology, hosts: &[HostId], m: u64) -> f64 {
        let mut net = FluidNet::new(topo);
        let mut tag = 0;
        for &a in hosts {
            for &b in hosts {
                if a != b {
                    net.start_flow(a, b, m, tag);
                    tag += 1;
                }
            }
        }
        net.run_to_completion()
            .last()
            .map(|c| c.at.as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LinkConfig, SimConfig, SwitchConfig};
    use crate::topology::TopologyBuilder;

    fn star(n: usize) -> (Topology, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::lossless_fabric());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        (b.build(&SimConfig::default()).unwrap(), hosts)
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let (topo, hosts) = star(2);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 125_000_000, 1);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        // 125 MB at 125 MB/s = 1 s.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_into_one_sink_halve() {
        let (topo, hosts) = star(3);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[2], 125_000_000, 1);
        net.start_flow(hosts[1], hosts[2], 125_000_000, 2);
        let done = net.run_to_completion();
        // Shared sink downlink: both at 62.5 MB/s → 2 s each.
        for c in &done {
            assert!((c.at.as_secs_f64() - 2.0).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn short_flow_releases_bandwidth_to_long_flow() {
        let (topo, hosts) = star(3);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[2], 125_000_000, 1); // long
        net.start_flow(hosts[1], hosts[2], 62_500_000, 2); // half the size
        let done = net.run_to_completion();
        let short = done.iter().find(|c| c.tag == 2).unwrap();
        let long = done.iter().find(|c| c.tag == 1).unwrap();
        // Short: 62.5 MB at 62.5 MB/s = 1 s. Long: 62.5 MB in that first
        // second, then the remaining 62.5 MB at full 125 MB/s = 0.5 s.
        assert!((short.at.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((long.at.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn max_min_protects_disjoint_flows() {
        let (topo, hosts) = star(4);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 125_000_000, 1);
        net.start_flow(hosts[2], hosts[3], 125_000_000, 2);
        let done = net.run_to_completion();
        for c in &done {
            assert!(
                (c.at.as_secs_f64() - 1.0).abs() < 1e-6,
                "disjoint flows at line rate"
            );
        }
    }

    #[test]
    fn alltoall_estimate_matches_receiver_bottleneck() {
        let (topo, hosts) = star(8);
        let m = 1_000_000u64;
        let t = FluidNet::alltoall_estimate(&topo, &hosts, m);
        // Every host receives 7 MB through a 125 MB/s downlink: 56 ms.
        let ideal = 7.0 * m as f64 / 125e6;
        assert!((t - ideal).abs() < ideal * 0.01, "{t} vs {ideal}");
    }

    #[test]
    fn oversubscribed_trunk_shows_in_the_estimate() {
        // Two 4-host edge switches joined by ONE gigabit trunk.
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(8);
        let e0 = b.add_switch(SwitchConfig::lossless_fabric());
        let e1 = b.add_switch(SwitchConfig::lossless_fabric());
        for (i, &h) in hosts.iter().enumerate() {
            b.link_host(
                h,
                if i < 4 { e0 } else { e1 },
                LinkConfig::gigabit_ethernet(),
            );
        }
        b.link_switches(e0, e1, LinkConfig::gigabit_ethernet());
        let topo = b.build(&SimConfig::default()).unwrap();
        let m = 1_000_000u64;
        let t = FluidNet::alltoall_estimate(&topo, &hosts, m);
        // Cross traffic: 4×4 MB each way over one 125 MB/s trunk = 128 ms
        // per direction — far above the 56 ms receiver bound.
        let trunk_bound = 16.0 * m as f64 / 125e6;
        assert!(t >= trunk_bound * 0.99, "{t} vs {trunk_bound}");
    }

    #[test]
    fn half_duplex_bus_doubles_alltoall_cost() {
        let build = |bus: bool| {
            let mut b = TopologyBuilder::new();
            let hosts = b.add_hosts(4);
            let sw = b.add_switch(SwitchConfig::lossless_fabric());
            for &h in &hosts {
                b.link_host(h, sw, LinkConfig::myrinet_2000());
            }
            if bus {
                b.host_io_bus(250e6, 500);
            }
            (b.build(&SimConfig::default()).unwrap(), hosts)
        };
        let (t0, h0) = build(false);
        let (t1, h1) = build(true);
        let m = 1_000_000;
        let duplex = FluidNet::alltoall_estimate(&t0, &h0, m);
        let half = FluidNet::alltoall_estimate(&t1, &h1, m);
        let ratio = half / duplex;
        assert!((ratio - 2.0).abs() < 0.05, "bus ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty fluid flow")]
    fn zero_byte_flow_rejected() {
        let (topo, hosts) = star(2);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 0, 1);
    }

    #[test]
    fn churn_late_flow_shares_from_its_start_instant() {
        let (topo, hosts) = star(3);
        let mut sim = FluidSim::new(&topo);
        let mut done = Vec::new();
        // 125 MB alone for 0.4 s (50 MB through), then a second flow into
        // the same sink: remaining 75 MB at 62.5 MB/s = 1.2 s more.
        sim.start_flow(hosts[0], hosts[2], 125_000_000, 1);
        sim.advance_to(0.4e9, &mut done);
        assert!(done.is_empty());
        sim.start_flow(hosts[1], hosts[2], 125_000_000, 2);
        while let Some(t) = sim.next_finish_ns() {
            sim.advance_to(t, &mut done);
        }
        let first = done.iter().find(|c| c.tag == 1).unwrap();
        assert!(
            (first.at.as_secs_f64() - 1.6).abs() < 1e-6,
            "{:?}",
            first.at
        );
        // Late flow: 75 MB at 62.5 MB/s while sharing (through t=1.6),
        // then its last 50 MB at line rate → finishes at 2.0 s.
        let second = done.iter().find(|c| c.tag == 2).unwrap();
        assert!(
            (second.at.as_secs_f64() - 2.0).abs() < 1e-6,
            "{:?}",
            second.at
        );
    }

    #[test]
    fn advance_emits_utilization_samples_when_recording() {
        #[derive(Default)]
        struct BusyLog {
            samples: Vec<(u32, u64, u64, u64)>,
        }
        impl Recorder for BusyLog {
            fn on_tx_busy(&mut self, tx: u32, from_ns: u64, until_ns: u64, wire_bytes: u64) {
                self.samples.push((tx, from_ns, until_ns, wire_bytes));
            }
        }
        let (topo, hosts) = star(2);
        let mut sim = FluidSim::with_recorder(&topo, BusyLog::default());
        sim.start_flow(hosts[0], hosts[1], 125_000_000, 7);
        let mut done = Vec::new();
        let t = sim.next_finish_ns().unwrap();
        sim.advance_to(t, &mut done);
        assert_eq!(done.len(), 1);
        let log = sim.into_recorder();
        // The route crosses two serializers (host uplink, sink downlink);
        // each gets one full-interval sample carrying every byte.
        assert_eq!(log.samples.len(), 2);
        for &(_, from, until, bytes) in &log.samples {
            assert_eq!(from, 0);
            assert!((until as f64 - 1e9).abs() < 2.0);
            assert!((bytes as f64 - 125e6).abs() < 2.0);
        }
    }

    #[test]
    fn coalesced_finishes_report_one_instant() {
        let (topo, hosts) = star(5);
        let mut sim = FluidSim::new(&topo);
        // Four identical flows into one sink: all finish together.
        for (i, &h) in hosts[..4].iter().enumerate() {
            sim.start_flow(h, hosts[4], 1_000_000, i as u64);
        }
        let done = sim.run_to_completion();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| c.at == done[0].at));
    }
}
