//! Flow-level (fluid) network model: max-min fair bandwidth sharing.
//!
//! The packet engine reproduces *mechanistic* contention — drops, timeouts,
//! stragglers. This module is its idealized counterpart, in the style of
//! SimGrid's flow models: every transfer is a fluid flow across capacitated
//! serializers, rates follow max-min fairness (progressive filling), and
//! the only events are flow completions.
//!
//! Uses:
//!
//! * **cross-validation** — a fluid completion time is a lower bound on the
//!   packet engine's result for the same traffic (no loss, no protocol
//!   overhead, perfect fairness); tests assert the packet engine never
//!   beats it by more than protocol-overhead margins;
//! * **fast sweeps** — a 64-node All-to-All estimate costs microseconds,
//!   letting experiments bracket huge parameter spaces before committing
//!   packet-level time;
//! * **contention accounting** — the gap between fluid and the Proposition
//!   1 bound isolates *topological* contention (shared trunks, half-duplex
//!   buses) from *protocol* contention (TCP loss recovery).

use crate::ids::HostId;
use crate::time::SimTime;
use crate::topology::Topology;

/// A fluid flow in progress.
#[derive(Debug, Clone)]
struct Flow {
    /// Serializer slots the flow occupies (shared slots model half-duplex
    /// buses exactly as the packet engine does).
    slots: Vec<usize>,
    remaining_bytes: f64,
    rate: f64,
    tag: u64,
}

/// A completed fluid transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidCompletion {
    /// Caller-supplied tag.
    pub tag: u64,
    /// Completion instant.
    pub at: SimTime,
}

/// Max-min fair flow-level simulator over a built [`Topology`].
pub struct FluidNet<'a> {
    topo: &'a Topology,
    /// Capacity per serializer slot in bytes/second.
    capacity: Vec<f64>,
    flows: Vec<Flow>,
    now_ns: f64,
}

impl<'a> FluidNet<'a> {
    /// Creates an empty fluid network over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        let mut capacity = vec![0.0; topo.n_serializers];
        for params in &topo.tx_params {
            // All members of a shared slot have equal rates by construction.
            capacity[params.serializer as usize] = 1e9 / params.ns_per_byte;
        }
        Self {
            topo,
            capacity,
            flows: Vec::new(),
            now_ns: 0.0,
        }
    }

    /// Starts a flow of `bytes` from `src` to `dst` at the current time.
    ///
    /// # Panics
    /// Panics if `src == dst` or `bytes == 0`.
    pub fn start_flow(&mut self, src: HostId, dst: HostId, bytes: u64, tag: u64) {
        assert!(bytes > 0, "empty fluid flow");
        let route = self.topo.route(src, dst);
        let mut slots: Vec<usize> = route
            .iter()
            .map(|tx| self.topo.tx_params[tx.index()].serializer as usize)
            .collect();
        // A flow crossing the same slot twice (impossible on simple paths,
        // but cheap to guard) must not double-count its demand.
        slots.sort_unstable();
        slots.dedup();
        self.flows.push(Flow {
            slots,
            remaining_bytes: bytes as f64,
            rate: 0.0,
            tag,
        });
    }

    /// Number of flows still active.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Progressive filling: repeatedly find the tightest serializer
    /// (smallest fair share among unfrozen flows), freeze its flows at
    /// that share, and remove its capacity.
    fn recompute_rates(&mut self) {
        let n_slots = self.capacity.len();
        let mut residual = self.capacity.clone();
        let mut unfrozen_on_slot = vec![0usize; n_slots];
        let mut frozen: Vec<bool> = vec![false; self.flows.len()];
        for flow in &self.flows {
            for &s in &flow.slots {
                unfrozen_on_slot[s] += 1;
            }
        }
        let mut remaining_flows = self.flows.len();
        while remaining_flows > 0 {
            // Find the bottleneck slot.
            let mut best_share = f64::INFINITY;
            let mut best_slot = usize::MAX;
            for s in 0..n_slots {
                if unfrozen_on_slot[s] > 0 {
                    let share = residual[s] / unfrozen_on_slot[s] as f64;
                    if share < best_share {
                        best_share = share;
                        best_slot = s;
                    }
                }
            }
            if best_slot == usize::MAX {
                // Flows exist but touch no capacitated slot — impossible
                // by construction (every route has at least one hop).
                unreachable!("active flow without a bottleneck");
            }
            // Freeze every unfrozen flow crossing the bottleneck.
            for (i, flow) in self.flows.iter_mut().enumerate() {
                if !frozen[i] && flow.slots.contains(&best_slot) {
                    frozen[i] = true;
                    flow.rate = best_share;
                    remaining_flows -= 1;
                    for &s in &flow.slots {
                        residual[s] -= best_share;
                        unfrozen_on_slot[s] -= 1;
                    }
                }
            }
            // Numerical guard: residuals may dip epsilon-negative.
            for r in residual.iter_mut() {
                if *r < 0.0 {
                    *r = 0.0;
                }
            }
        }
    }

    /// Runs all flows to completion, returning completions in time order.
    pub fn run_to_completion(&mut self) -> Vec<FluidCompletion> {
        let mut completions = Vec::with_capacity(self.flows.len());
        while !self.flows.is_empty() {
            self.recompute_rates();
            // Earliest finishing flow at current rates.
            let dt_secs = self
                .flows
                .iter()
                .map(|f| f.remaining_bytes / f.rate)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(dt_secs.is_finite() && dt_secs >= 0.0);
            self.now_ns += dt_secs * 1e9;
            let now = SimTime(self.now_ns.round() as u64);
            let mut i = 0;
            while i < self.flows.len() {
                let f = &mut self.flows[i];
                f.remaining_bytes -= f.rate * dt_secs;
                // Anything within a byte of done is done (fp tolerance).
                if f.remaining_bytes <= 1.0 {
                    completions.push(FluidCompletion {
                        tag: f.tag,
                        at: now,
                    });
                    self.flows.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        completions.sort_by_key(|c| c.at);
        completions
    }

    /// Convenience: the fluid completion time (seconds) of a uniform
    /// All-to-All of `m` bytes per ordered pair among `hosts`.
    pub fn alltoall_estimate(topo: &Topology, hosts: &[HostId], m: u64) -> f64 {
        let mut net = FluidNet::new(topo);
        let mut tag = 0;
        for &a in hosts {
            for &b in hosts {
                if a != b {
                    net.start_flow(a, b, m, tag);
                    tag += 1;
                }
            }
        }
        net.run_to_completion()
            .last()
            .map(|c| c.at.as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LinkConfig, SimConfig, SwitchConfig};
    use crate::topology::TopologyBuilder;

    fn star(n: usize) -> (Topology, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::lossless_fabric());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        (b.build(&SimConfig::default()).unwrap(), hosts)
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let (topo, hosts) = star(2);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 125_000_000, 1);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        // 125 MB at 125 MB/s = 1 s.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_into_one_sink_halve() {
        let (topo, hosts) = star(3);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[2], 125_000_000, 1);
        net.start_flow(hosts[1], hosts[2], 125_000_000, 2);
        let done = net.run_to_completion();
        // Shared sink downlink: both at 62.5 MB/s → 2 s each.
        for c in &done {
            assert!((c.at.as_secs_f64() - 2.0).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn short_flow_releases_bandwidth_to_long_flow() {
        let (topo, hosts) = star(3);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[2], 125_000_000, 1); // long
        net.start_flow(hosts[1], hosts[2], 62_500_000, 2); // half the size
        let done = net.run_to_completion();
        let short = done.iter().find(|c| c.tag == 2).unwrap();
        let long = done.iter().find(|c| c.tag == 1).unwrap();
        // Short: 62.5 MB at 62.5 MB/s = 1 s. Long: 62.5 MB in that first
        // second, then the remaining 62.5 MB at full 125 MB/s = 0.5 s.
        assert!((short.at.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((long.at.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn max_min_protects_disjoint_flows() {
        let (topo, hosts) = star(4);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 125_000_000, 1);
        net.start_flow(hosts[2], hosts[3], 125_000_000, 2);
        let done = net.run_to_completion();
        for c in &done {
            assert!(
                (c.at.as_secs_f64() - 1.0).abs() < 1e-6,
                "disjoint flows at line rate"
            );
        }
    }

    #[test]
    fn alltoall_estimate_matches_receiver_bottleneck() {
        let (topo, hosts) = star(8);
        let m = 1_000_000u64;
        let t = FluidNet::alltoall_estimate(&topo, &hosts, m);
        // Every host receives 7 MB through a 125 MB/s downlink: 56 ms.
        let ideal = 7.0 * m as f64 / 125e6;
        assert!((t - ideal).abs() < ideal * 0.01, "{t} vs {ideal}");
    }

    #[test]
    fn oversubscribed_trunk_shows_in_the_estimate() {
        // Two 4-host edge switches joined by ONE gigabit trunk.
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(8);
        let e0 = b.add_switch(SwitchConfig::lossless_fabric());
        let e1 = b.add_switch(SwitchConfig::lossless_fabric());
        for (i, &h) in hosts.iter().enumerate() {
            b.link_host(
                h,
                if i < 4 { e0 } else { e1 },
                LinkConfig::gigabit_ethernet(),
            );
        }
        b.link_switches(e0, e1, LinkConfig::gigabit_ethernet());
        let topo = b.build(&SimConfig::default()).unwrap();
        let m = 1_000_000u64;
        let t = FluidNet::alltoall_estimate(&topo, &hosts, m);
        // Cross traffic: 4×4 MB each way over one 125 MB/s trunk = 128 ms
        // per direction — far above the 56 ms receiver bound.
        let trunk_bound = 16.0 * m as f64 / 125e6;
        assert!(t >= trunk_bound * 0.99, "{t} vs {trunk_bound}");
    }

    #[test]
    fn half_duplex_bus_doubles_alltoall_cost() {
        let build = |bus: bool| {
            let mut b = TopologyBuilder::new();
            let hosts = b.add_hosts(4);
            let sw = b.add_switch(SwitchConfig::lossless_fabric());
            for &h in &hosts {
                b.link_host(h, sw, LinkConfig::myrinet_2000());
            }
            if bus {
                b.host_io_bus(250e6, 500);
            }
            (b.build(&SimConfig::default()).unwrap(), hosts)
        };
        let (t0, h0) = build(false);
        let (t1, h1) = build(true);
        let m = 1_000_000;
        let duplex = FluidNet::alltoall_estimate(&t0, &h0, m);
        let half = FluidNet::alltoall_estimate(&t1, &h1, m);
        let ratio = half / duplex;
        assert!((ratio - 2.0).abs() < 0.05, "bus ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty fluid flow")]
    fn zero_byte_flow_rejected() {
        let (topo, hosts) = star(2);
        let mut net = FluidNet::new(&topo);
        net.start_flow(hosts[0], hosts[1], 0, 1);
    }
}
