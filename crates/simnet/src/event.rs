//! The event queue: lane-structured, time-ordered, FIFO tie-broken.
//!
//! # Why lanes
//!
//! A discrete-event network simulator does not schedule events in random
//! time order: almost every producer emits them *monotonically*. A
//! serializer's departures form a non-decreasing chain (`busy_until` only
//! advances); a transmitter's wire arrivals are its departures plus a
//! constant latency; a connection's injections are clamped monotone by the
//! engine. A global `BinaryHeap<Event>` ignores this structure and pays
//! `O(log n_events)` per operation over tens of thousands of pending
//! events.
//!
//! This queue exploits it. Every producer pushes into a **lane** — a
//! pooled FIFO ring whose entries are non-decreasing in `(time, seq)` —
//! and an **indexed d-ary heap** orders only the lane *heads*. A push to a
//! non-empty lane is O(1) (append to the ring; the head is unchanged); a
//! pop sifts over the active lanes, of which there are orders of magnitude
//! fewer than pending events. Ring nodes and lane slots recycle through
//! freelists, so the steady-state serializer/departure churn allocates
//! nothing.
//!
//! Events with no monotone producer (application wakeups, RTO timers) use
//! [`EventQueue::push_once`]: a transient single-entry lane, trivially
//! ordered, whose slot is recycled as soon as it pops.
//!
//! # Determinism
//!
//! `seq` is assigned globally in push order, every lane is non-decreasing
//! in `(time, seq)`, and the heap pops the minimum lane head — so the pop
//! sequence is *exactly* the global `(time, seq)` order a single heap
//! would produce: time-ordered, FIFO among equal timestamps.

use crate::ids::{ConnId, HostId, TxId};
use crate::packet::Packet;
use crate::time::SimTime;

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet arrives at a transmitter's input and must be admitted to its
    /// queue (or dropped).
    Arrival {
        /// Transmitter the packet arrives at.
        tx: TxId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet finishes serializing out of a transmitter.
    Departure {
        /// Transmitter the packet leaves.
        tx: TxId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet reaches its destination host's protocol stack.
    HostDelivery {
        /// Destination host.
        host: HostId,
        /// The packet.
        pkt: Packet,
    },
    /// A connection's retransmission timer fires.
    RtoTimer {
        /// Owning connection.
        conn: ConnId,
    },
    /// An application-scheduled wakeup.
    AppWakeup {
        /// Caller-chosen token.
        token: u64,
    },
}

/// A push lane: an ordering claim that every event pushed through it
/// carries a time no earlier than the lane's current tail. Allocated once
/// per monotone producer via [`EventQueue::alloc_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId(u32);

/// Freelist / ring terminator.
const NIL: u32 = u32::MAX;

/// Arity of the lane-head heap: shallow, and the keys of all four children
/// of a node sit in adjacent memory.
const D: usize = 4;

/// One pooled FIFO node.
#[derive(Debug)]
struct Node {
    at: SimTime,
    seq: u64,
    event: Option<Event>,
    next: u32,
}

/// A FIFO of pooled nodes. While a lane slot is free, `head` threads the
/// lane freelist.
#[derive(Debug, Clone, Copy)]
struct Lane {
    head: u32,
    tail: u32,
    /// Recycle the lane slot once it drains (see `push_once`).
    transient: bool,
}

/// A lane-head key in the d-ary heap.
#[derive(Debug, Clone, Copy)]
struct TopKey {
    at: SimTime,
    seq: u64,
    lane: u32,
}

impl TopKey {
    /// Min-heap order: earliest time first, global push order (`seq`)
    /// breaking ties so equal timestamps process FIFO (deterministic).
    #[inline]
    fn before(&self, other: &Self) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    nodes: Vec<Node>,
    free_node: u32,
    lanes: Vec<Lane>,
    free_lane: u32,
    /// Active lane heads, d-ary min-heap by `(at, seq)`.
    top: Vec<TopKey>,
    next_seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        // Not derivable: the freelist heads must start at NIL, not 0.
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free_node: NIL,
            lanes: Vec::new(),
            free_lane: NIL,
            top: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Allocates a persistent lane for a monotone event producer.
    pub fn alloc_lane(&mut self) -> LaneId {
        LaneId(self.alloc_lane_slot(false))
    }

    fn alloc_lane_slot(&mut self, transient: bool) -> u32 {
        let lane = Lane {
            head: NIL,
            tail: NIL,
            transient,
        };
        if self.free_lane != NIL {
            let idx = self.free_lane;
            self.free_lane = self.lanes[idx as usize].head;
            self.lanes[idx as usize] = lane;
            idx
        } else {
            self.lanes.push(lane);
            (self.lanes.len() - 1) as u32
        }
    }

    fn alloc_node(&mut self, at: SimTime, seq: u64, event: Event) -> u32 {
        let node = Node {
            at,
            seq,
            event: Some(event),
            next: NIL,
        };
        if self.free_node != NIL {
            let idx = self.free_node;
            self.free_node = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Schedules `event` at time `at` on a lane.
    ///
    /// Lane discipline (debug-asserted): `at` must be no earlier than the
    /// last event still queued on the same lane.
    pub fn push(&mut self, lane: LaneId, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let idx = self.alloc_node(at, seq, event);
        let tail = self.lanes[lane.0 as usize].tail;
        if tail == NIL {
            self.lanes[lane.0 as usize].head = idx;
            self.lanes[lane.0 as usize].tail = idx;
            self.top.push(TopKey {
                at,
                seq,
                lane: lane.0,
            });
            self.sift_up(self.top.len() - 1);
        } else {
            debug_assert!(
                self.nodes[tail as usize].at <= at,
                "lane pushed out of order: {} after {}",
                at,
                self.nodes[tail as usize].at
            );
            self.nodes[tail as usize].next = idx;
            self.lanes[lane.0 as usize].tail = idx;
        }
    }

    /// Schedules a single event at an arbitrary time: a transient lane that
    /// exists only while the event is pending. For producers with no
    /// monotone structure (wakeups, retransmission timers).
    pub fn push_once(&mut self, at: SimTime, event: Event) {
        let lane = LaneId(self.alloc_lane_slot(true));
        self.push(lane, at, event);
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let root = *self.top.first()?;
        let lane = root.lane as usize;
        let node = self.lanes[lane].head;
        let next = self.nodes[node as usize].next;
        let event = self.nodes[node as usize]
            .event
            .take()
            .expect("queued nodes hold events");
        // Recycle the node.
        self.nodes[node as usize].next = self.free_node;
        self.free_node = node;
        if next != NIL {
            // The lane's new head re-keys the heap root and sifts down.
            self.lanes[lane].head = next;
            self.top[0] = TopKey {
                at: self.nodes[next as usize].at,
                seq: self.nodes[next as usize].seq,
                lane: root.lane,
            };
            self.sift_down(0);
        } else {
            // Lane drained: remove it from the heap.
            self.lanes[lane].head = NIL;
            self.lanes[lane].tail = NIL;
            if self.lanes[lane].transient {
                // Thread the slot onto the lane freelist via `head`.
                self.lanes[lane].head = self.free_lane;
                self.free_lane = root.lane;
            }
            let last = self.top.pop().expect("root exists");
            if !self.top.is_empty() {
                self.top[0] = last;
                self.sift_down(0);
            }
        }
        self.len -= 1;
        Some((root.at, event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.top.first().map(|k| k.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn sift_up(&mut self, mut i: usize) {
        let key = self.top[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if !key.before(&self.top[parent]) {
                break;
            }
            self.top[i] = self.top[parent];
            i = parent;
        }
        self.top[i] = key;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.top.len();
        let key = self.top[i];
        loop {
            let first = D * i + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            for child in (first + 1)..(first + D).min(len) {
                if self.top[child].before(&self.top[best]) {
                    best = child;
                }
            }
            if !self.top[best].before(&key) {
                break;
            }
            self.top[i] = self.top[best];
            i = best;
        }
        self.top[i] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_once(SimTime(30), Event::AppWakeup { token: 3 });
        q.push_once(SimTime(10), Event::AppWakeup { token: 1 });
        q.push_once(SimTime(20), Event::AppWakeup { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for token in 0..10 {
            q.push_once(SimTime(5), Event::AppWakeup { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_times_are_fifo_across_lanes() {
        // Interleave two monotone lanes and singletons at one timestamp:
        // pops must follow global push order.
        let mut q = EventQueue::new();
        let a = q.alloc_lane();
        let b = q.alloc_lane();
        q.push(a, SimTime(5), Event::AppWakeup { token: 0 });
        q.push(b, SimTime(5), Event::AppWakeup { token: 1 });
        q.push_once(SimTime(5), Event::AppWakeup { token: 2 });
        q.push(a, SimTime(5), Event::AppWakeup { token: 3 });
        q.push(b, SimTime(5), Event::AppWakeup { token: 4 });
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lanes_merge_in_global_time_order() {
        // Three monotone lanes with interleaved times plus out-of-order
        // singletons: the pop sequence must be globally sorted by
        // (time, push order).
        let mut q = EventQueue::new();
        let lanes: Vec<LaneId> = (0..3).map(|_| q.alloc_lane()).collect();
        let mut expected = Vec::new();
        let mut token = 0u64;
        for step in 0..50u64 {
            let lane = lanes[(step % 3) as usize];
            let at = SimTime(step / 3 * 7 + (step % 3));
            q.push(lane, at, Event::AppWakeup { token });
            expected.push((at, token));
            token += 1;
        }
        for step in (0..20u64).rev() {
            let at = SimTime(step * 9 + 1);
            q.push_once(at, Event::AppWakeup { token });
            expected.push((at, token));
            token += 1;
        }
        // Stable sort by time preserves push order among equal times,
        // matching the queue's seq tie-break.
        expected.sort_by_key(|&(at, _)| at);
        let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::AppWakeup { token } => (t, token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_push_pop_keeps_order_within_drain() {
        let mut q = EventQueue::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for round in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push_once(SimTime(x % 97), Event::AppWakeup { token: round });
            if round % 3 == 0 {
                q.pop().unwrap();
            }
        }
        let mut drained = Vec::new();
        while let Some((t, _)) = q.pop() {
            drained.push(t);
        }
        assert!(drained.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn nodes_and_transient_lanes_recycle() {
        let mut q = EventQueue::new();
        for token in 0..64 {
            q.push_once(SimTime(token), Event::AppWakeup { token });
        }
        while q.pop().is_some() {}
        let node_high_water = q.nodes.len();
        let lane_high_water = q.lanes.len();
        assert_eq!(node_high_water, 64);
        // A steady push-one-pop-one cycle must not grow either arena.
        for token in 0..10_000 {
            q.push_once(SimTime(token), Event::AppWakeup { token });
            q.pop().unwrap();
        }
        assert_eq!(q.nodes.len(), node_high_water, "node churn must recycle");
        assert_eq!(q.lanes.len(), lane_high_water, "lane churn must recycle");
    }

    #[test]
    fn persistent_lane_push_is_queue_append() {
        // A monotone lane accumulating many pending events keeps exactly
        // one heap entry (its head) — the O(1)-push property the engine's
        // hot path relies on.
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        for i in 0..1_000u64 {
            q.push(lane, SimTime(i), Event::AppWakeup { token: i });
        }
        assert_eq!(q.len(), 1_000);
        assert_eq!(q.top.len(), 1, "one heap key per active lane");
        for i in 0..1_000u64 {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime(i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push_once(SimTime(1), Event::AppWakeup { token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
