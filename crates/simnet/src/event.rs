//! The event queue: a time-ordered binary heap with FIFO tie-breaking.

use crate::ids::{ConnId, HostId, TxId};
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet arrives at a transmitter's input and must be admitted to its
    /// queue (or dropped).
    Arrival {
        /// Transmitter the packet arrives at.
        tx: TxId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet finishes serializing out of a transmitter.
    Departure {
        /// Transmitter the packet leaves.
        tx: TxId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet reaches its destination host's protocol stack.
    HostDelivery {
        /// Destination host.
        host: HostId,
        /// The packet.
        pkt: Packet,
    },
    /// A connection's retransmission timer fires.
    RtoTimer {
        /// Owning connection.
        conn: ConnId,
    },
    /// An application-scheduled wakeup.
    AppWakeup {
        /// Caller-chosen token.
        token: u64,
    },
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so equal
        // timestamps process FIFO (deterministic).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::AppWakeup { token: 3 });
        q.push(SimTime(10), Event::AppWakeup { token: 1 });
        q.push(SimTime(20), Event::AppWakeup { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for token in 0..10 {
            q.push(SimTime(5), Event::AppWakeup { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), Event::AppWakeup { token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
