//! The event queue: lane-structured, time-ordered, FIFO tie-broken, with
//! 16-byte nodes and run-length-compressed injection bursts.
//!
//! # Why lanes
//!
//! A discrete-event network simulator does not schedule events in random
//! time order: almost every producer emits them *monotonically*. A
//! serializer's departures form a non-decreasing chain (`busy_until` only
//! advances); a transmitter's wire arrivals are its departures plus a
//! constant latency; a connection's injections are clamped monotone by the
//! engine. A global `BinaryHeap<Event>` ignores this structure and pays
//! `O(log n_events)` per operation over tens of thousands of pending
//! events.
//!
//! This queue exploits it. Every producer pushes into a **lane** — a
//! pooled FIFO ring whose entries are non-decreasing in `(time, seq)` —
//! and an **indexed d-ary heap** orders only the lane *heads*. A push to a
//! non-empty lane is O(1) (append to the ring; the head is unchanged); a
//! pop sifts over the active lanes, of which there are orders of magnitude
//! fewer than pending events.
//!
//! # Why 16-byte nodes
//!
//! The end-to-end engine is memory-bound: its cost is dominated by moving
//! event payloads through this queue, so a queued event is stored as a
//! 16-byte `Node` — `(SimTime, u32 seq, u32 payload)` — not as a ~56-byte
//! inline `Event`. The payload word packs a 3-bit event tag with 29 handle
//! bits: a timer's connection index rides the word itself, while packet
//! events put their [`PackedPacket`] plus location in the chunk's
//! *parallel payload array* at the node's own index — written beside the
//! node at push, read beside it at pop, no slab, no freelist, no extra
//! cache miss. Lanes are rings of pooled 16-entry chunks, so the per-node
//! `next` pointer of a linked design is amortized away and a drain walks
//! contiguous memory. Compile-time assertions pin `Node` and the heap's
//! `TopKey` at ≤ 16 bytes so a layout regression fails the build, not a
//! benchmark.
//!
//! # Run-length injection lanes
//!
//! An injection burst — a window's worth of same-size segments entering one
//! connection's lane at one clamped time — is an arithmetic progression in
//! `(time, seq)`. [`EventQueue::push_run`] stores the whole burst as *one*
//! ring node referencing a run descriptor (template packet, element count,
//! time/stream strides) and materializes packets lazily at pop: ~40 bytes
//! per burst instead of 16 bytes plus a slab slot per segment.
//!
//! # Determinism
//!
//! `seq` is assigned globally in push order, every lane is non-decreasing
//! in `(time, seq)`, and the heap pops the minimum lane head — so the pop
//! sequence is *exactly* the global `(time, seq)` order a single heap
//! would produce: time-ordered, FIFO among equal timestamps. Runs preserve
//! this bit-for-bit: `push_run` reserves the `count` consecutive seq values
//! the equivalent individual pushes would have consumed, element `i`
//! surfaces with key `(base_time + i·stride, base_seq + i)`, and after each
//! materialized pop the lane head is re-keyed to element `i+1` before the
//! heap sifts — indistinguishable, pop by pop, from the uncompressed burst.
//! `seq` is a *wrapping* `u32` compared with two's-complement distance
//! (`seq_before`); the order is exact as long as fewer than 2³¹ events
//! are pending at once, which the engine's bounded transport windows keep
//! many orders of magnitude away.
//!
//! Events with no monotone producer (application wakeups, RTO timers) use
//! [`EventQueue::push_once`]: a transient single-entry lane, trivially
//! ordered, whose slot is recycled as soon as it pops.

use crate::ids::{ConnId, HostId, TxId};
use crate::packet::PackedPacket;
use crate::time::SimTime;

/// A scheduled simulator event, reassembled at pop time. `Copy` — the
/// 16-byte packet travels by value; nothing here owns heap memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet arrives at a transmitter's input and must be admitted to its
    /// queue (or dropped).
    Arrival {
        /// Transmitter the packet arrives at.
        tx: TxId,
        /// The packet.
        pkt: PackedPacket,
    },
    /// A packet finishes serializing out of a transmitter.
    Departure {
        /// Transmitter the packet leaves.
        tx: TxId,
        /// The packet.
        pkt: PackedPacket,
    },
    /// A packet reaches its destination host's protocol stack.
    HostDelivery {
        /// Destination host.
        host: HostId,
        /// The packet.
        pkt: PackedPacket,
    },
    /// A connection's retransmission timer fires.
    RtoTimer {
        /// Owning connection.
        conn: ConnId,
    },
    /// An application-scheduled wakeup.
    AppWakeup {
        /// Caller-chosen token.
        token: u64,
    },
}

/// A push lane: an ordering claim that every event pushed through it
/// carries a time no earlier than the lane's current tail. Allocated once
/// per monotone producer via [`EventQueue::alloc_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId(u32);

/// The template of a run-length-compressed injection burst: `count`
/// arrival events at one transmitter, whose packets differ only in their
/// stream offset (element `i` carries `pkt.seq + i·seq_stride`).
#[derive(Debug, Clone, Copy)]
pub struct RunTemplate {
    /// Transmitter every element arrives at (the route's injection point).
    pub tx: TxId,
    /// The first element's packet.
    pub pkt: PackedPacket,
    /// Stream-offset increment between consecutive elements (the segment
    /// length for a data burst).
    pub seq_stride: u64,
}

/// Freelist / ring terminator.
const NIL: u32 = u32::MAX;

/// Arity of the lane-head heap: shallow, and the keys of all four children
/// of a node sit in adjacent memory.
const D: usize = 4;

/// Event tags packed into the top bits of a node's payload word.
const TAG_ARRIVAL: u32 = 0;
const TAG_DEPARTURE: u32 = 1;
const TAG_DELIVERY: u32 = 2;
const TAG_TIMER: u32 = 3;
const TAG_WAKEUP: u32 = 4;
const TAG_RUN: u32 = 5;
/// Low 29 bits of the payload word: a slab/run handle or a connection
/// index, depending on the tag.
const TAG_SHIFT: u32 = 29;
const HANDLE_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// Wrap-safe push-order comparison: `a` precedes `b` iff the wrapping
/// distance from `b` to `a` is negative. Exact while fewer than 2³¹ events
/// are pending simultaneously.
#[inline]
fn seq_before(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// One queued event: fire time, global push order, and a tagged payload
/// handle. This — not a fat `Event` — is what every ring append, heap move
/// and pop touches, so it is pinned at 16 bytes.
#[derive(Debug, Clone, Copy)]
struct Node {
    at: SimTime,
    seq: u32,
    /// `tag << 29 | handle`; see the `TAG_*` constants.
    payload: u32,
}

const _: () = assert!(
    std::mem::size_of::<Node>() <= 16,
    "lane-ring nodes must stay within 16 bytes: every queued event moves through them"
);

impl Node {
    const EMPTY: Node = Node {
        at: SimTime::ZERO,
        seq: 0,
        payload: 0,
    };
}

/// Nodes per pooled lane chunk: a drained lane walks its events out of
/// contiguous blocks instead of chasing one link per node.
const LANE_CHUNK: usize = 16;

/// A fixed block of a lane's FIFO ring, consumed front to back. The fat
/// part of an event's payload (its packet and location) lives in the
/// *parallel* `payloads` array at the node's own index — written next to
/// the node at push, read next to it at pop — so there is no separate
/// slab to allocate from, free to, or cache-miss into: payload locality
/// is node locality by construction.
#[derive(Debug, Clone, Copy)]
struct LaneChunk {
    nodes: [Node; LANE_CHUNK],
    payloads: [Payload; LANE_CHUNK],
    /// Next unread slot.
    read: u16,
    /// Next unwritten slot.
    write: u16,
    /// Next chunk of the lane, or the freelist link while unused.
    next: u32,
}

/// A FIFO ring of pooled chunks. While a lane slot is free, `head` threads
/// the lane freelist.
#[derive(Debug, Clone, Copy)]
struct Lane {
    head: u32,
    tail: u32,
    /// Recycle the lane slot once it drains (see `push_once`).
    transient: bool,
}

/// A lane-head key in the d-ary heap.
#[derive(Debug, Clone, Copy)]
struct TopKey {
    at: SimTime,
    seq: u32,
    lane: u32,
}

const _: () = assert!(
    std::mem::size_of::<TopKey>() <= 16,
    "heap entries must stay within 16 bytes: every sift moves them"
);

impl TopKey {
    /// Min-heap order: earliest time first, global push order (`seq`)
    /// breaking ties so equal timestamps process FIFO (deterministic).
    #[inline]
    fn before(&self, other: &Self) -> bool {
        self.at < other.at || (self.at == other.at && seq_before(self.seq, other.seq))
    }
}

/// The fat part of one pending event: the packet plus its location
/// (transmitter or host index), or a wakeup token stored in the
/// placeholder packet's `seq` field. Timer and run nodes leave their
/// payload slot untouched (their whole payload fits the node's handle
/// bits or a run descriptor).
#[derive(Debug, Clone, Copy)]
struct Payload {
    pkt: PackedPacket,
    /// Arrival/Departure: transmitter index. Delivery: host index.
    /// Wakeup/timer/run: unused.
    loc: u32,
}

impl Payload {
    const EMPTY: Payload = Payload {
        pkt: PackedPacket::PLACEHOLDER,
        loc: 0,
    };
}

/// A pending run: the next unmaterialized element's packet plus the
/// remaining element count and strides. ~40 bytes for a whole burst.
#[derive(Debug, Clone, Copy)]
struct Run {
    /// Next element's packet; `seq` advances by `seq_stride` per pop.
    pkt: PackedPacket,
    /// Arrival transmitter of every element; freelist link while free.
    tx: u32,
    /// Elements not yet popped (> 0 while the run is queued).
    remaining: u32,
    /// Nanoseconds between consecutive elements' fire times.
    time_stride: u64,
    /// Stream-offset increment between consecutive elements' packets.
    seq_stride: u64,
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    chunks: Vec<LaneChunk>,
    free_chunk: u32,
    lanes: Vec<Lane>,
    free_lane: u32,
    runs: Vec<Run>,
    free_run: u32,
    /// Active lane heads, d-ary min-heap by `(at, seq)`.
    top: Vec<TopKey>,
    next_seq: u32,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        // Not derivable: the freelist heads must start at NIL, not 0.
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            chunks: Vec::new(),
            free_chunk: NIL,
            lanes: Vec::new(),
            free_lane: NIL,
            runs: Vec::new(),
            free_run: NIL,
            top: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Allocates a persistent lane for a monotone event producer.
    pub fn alloc_lane(&mut self) -> LaneId {
        LaneId(self.alloc_lane_slot(false))
    }

    fn alloc_lane_slot(&mut self, transient: bool) -> u32 {
        let lane = Lane {
            head: NIL,
            tail: NIL,
            transient,
        };
        if self.free_lane != NIL {
            let idx = self.free_lane;
            self.free_lane = self.lanes[idx as usize].head;
            self.lanes[idx as usize] = lane;
            idx
        } else {
            self.lanes.push(lane);
            (self.lanes.len() - 1) as u32
        }
    }

    fn alloc_chunk(&mut self) -> u32 {
        if self.free_chunk != NIL {
            let idx = self.free_chunk;
            let chunk = &mut self.chunks[idx as usize];
            self.free_chunk = chunk.next;
            // Reset metadata only; the stale nodes are dead data that the
            // ring append overwrites before any read can reach them.
            chunk.read = 0;
            chunk.write = 0;
            chunk.next = NIL;
            idx
        } else {
            self.chunks.push(LaneChunk {
                nodes: [Node::EMPTY; LANE_CHUNK],
                payloads: [Payload::EMPTY; LANE_CHUNK],
                read: 0,
                write: 0,
                next: NIL,
            });
            (self.chunks.len() - 1) as u32
        }
    }

    fn alloc_run(&mut self, run: Run) -> u32 {
        let idx = if self.free_run != NIL {
            let idx = self.free_run;
            self.free_run = self.runs[idx as usize].tx;
            self.runs[idx as usize] = run;
            idx
        } else {
            self.runs.push(run);
            (self.runs.len() - 1) as u32
        };
        assert!(idx <= HANDLE_MASK, "more than 2^29 pending runs");
        idx
    }

    /// Splits an event into its node payload word and its fat payload.
    /// Timers fit entirely in the word (the connection index rides the
    /// handle bits); everything else parks its packet and location in the
    /// node's parallel payload slot.
    fn split(event: Event) -> (u32, Payload) {
        match event {
            Event::Arrival { tx, pkt } => (
                TAG_ARRIVAL << TAG_SHIFT,
                Payload {
                    pkt,
                    loc: tx.index() as u32,
                },
            ),
            Event::Departure { tx, pkt } => (
                TAG_DEPARTURE << TAG_SHIFT,
                Payload {
                    pkt,
                    loc: tx.index() as u32,
                },
            ),
            Event::HostDelivery { host, pkt } => (
                TAG_DELIVERY << TAG_SHIFT,
                Payload {
                    pkt,
                    loc: host.index() as u32,
                },
            ),
            Event::RtoTimer { conn } => {
                let idx = conn.index() as u32;
                debug_assert!(idx <= HANDLE_MASK, "connection index overflows the handle");
                (TAG_TIMER << TAG_SHIFT | idx, Payload::EMPTY)
            }
            Event::AppWakeup { token } => {
                // The payload slot's packet field doubles as token
                // storage: a placeholder whose full-width `seq` carries it.
                let mut pkt = PackedPacket::PLACEHOLDER;
                pkt.seq = token;
                (TAG_WAKEUP << TAG_SHIFT, Payload { pkt, loc: 0 })
            }
        }
    }

    /// Reassembles the event behind a node's payload word and slot.
    fn assemble(word: u32, payload: Payload) -> Event {
        let Payload { pkt, loc } = payload;
        match word >> TAG_SHIFT {
            TAG_ARRIVAL => Event::Arrival {
                tx: TxId::from_index(loc as usize),
                pkt,
            },
            TAG_DEPARTURE => Event::Departure {
                tx: TxId::from_index(loc as usize),
                pkt,
            },
            TAG_DELIVERY => Event::HostDelivery {
                host: HostId::from_index(loc as usize),
                pkt,
            },
            TAG_TIMER => Event::RtoTimer {
                conn: ConnId::from_index((word & HANDLE_MASK) as usize),
            },
            TAG_WAKEUP => Event::AppWakeup { token: pkt.seq },
            _ => unreachable!("runs are materialized in pop, not assembled"),
        }
    }

    /// The fire time of the last entry queued on a lane (the lane's
    /// monotonicity floor). For a run node this is the *last* element's
    /// time, not the next one's.
    fn lane_tail_time(&self, lane: usize) -> SimTime {
        let tail = self.lanes[lane].tail;
        debug_assert_ne!(tail, NIL);
        let chunk = &self.chunks[tail as usize];
        debug_assert!(chunk.write > chunk.read, "tail chunks are never empty");
        let node = chunk.nodes[chunk.write as usize - 1];
        if node.payload >> TAG_SHIFT == TAG_RUN {
            let run = &self.runs[(node.payload & HANDLE_MASK) as usize];
            node.at + (run.remaining as u64 - 1) * run.time_stride
        } else {
            node.at
        }
    }

    /// Appends a prepared node and its fat payload to a lane's ring,
    /// keying the heap if the lane was empty.
    fn append(&mut self, lane: LaneId, node: Node, payload: Payload) {
        let tail = self.lanes[lane.0 as usize].tail;
        if tail == NIL {
            let idx = self.alloc_chunk();
            let chunk = &mut self.chunks[idx as usize];
            chunk.nodes[0] = node;
            chunk.payloads[0] = payload;
            chunk.write = 1;
            self.lanes[lane.0 as usize].head = idx;
            self.lanes[lane.0 as usize].tail = idx;
            self.top.push(TopKey {
                at: node.at,
                seq: node.seq,
                lane: lane.0,
            });
            self.sift_up(self.top.len() - 1);
        } else {
            debug_assert!(
                self.lane_tail_time(lane.0 as usize) <= node.at,
                "lane pushed out of order: {} after {}",
                node.at,
                self.lane_tail_time(lane.0 as usize)
            );
            let tail = if self.chunks[tail as usize].write as usize == LANE_CHUNK {
                let idx = self.alloc_chunk();
                self.chunks[tail as usize].next = idx;
                self.lanes[lane.0 as usize].tail = idx;
                idx
            } else {
                tail
            };
            let chunk = &mut self.chunks[tail as usize];
            let w = chunk.write as usize;
            chunk.nodes[w] = node;
            chunk.payloads[w] = payload;
            chunk.write += 1;
        }
    }

    /// Schedules `event` at time `at` on a lane.
    ///
    /// Lane discipline (debug-asserted): `at` must be no earlier than the
    /// last event still queued on the same lane.
    pub fn push(&mut self, lane: LaneId, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.len += 1;
        let (word, payload) = Self::split(event);
        self.append(
            lane,
            Node {
                at,
                seq,
                payload: word,
            },
            payload,
        );
    }

    /// Schedules a whole injection burst as one ring node: `count` arrival
    /// events at `template.tx`, element `i` firing at `base_at +
    /// i·time_stride` with packet stream offset advanced by
    /// `i·template.seq_stride`. Pops identically — event by event, byte by
    /// byte — to the `count` individual [`EventQueue::push`] calls it
    /// replaces (it reserves the same `count` consecutive seq values), but
    /// stores one ~40-byte descriptor instead of `count` nodes and slots.
    ///
    /// Lane discipline applies to the whole run: `base_at` must be no
    /// earlier than the lane's tail, and the next push to the lane must not
    /// precede the run's *last* element.
    pub fn push_run(
        &mut self,
        lane: LaneId,
        base_at: SimTime,
        time_stride: u64,
        count: u32,
        template: RunTemplate,
    ) {
        assert!(count > 0, "empty runs are not representable");
        if count == 1 {
            // A degenerate run is an ordinary event; skip the descriptor.
            self.push(
                lane,
                base_at,
                Event::Arrival {
                    tx: template.tx,
                    pkt: template.pkt,
                },
            );
            return;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(count);
        self.len += count as usize;
        let handle = self.alloc_run(Run {
            pkt: template.pkt,
            tx: template.tx.index() as u32,
            remaining: count,
            time_stride,
            seq_stride: template.seq_stride,
        });
        self.append(
            lane,
            Node {
                at: base_at,
                seq,
                payload: TAG_RUN << TAG_SHIFT | handle,
            },
            Payload::EMPTY,
        );
    }

    /// Schedules a single event at an arbitrary time: a transient lane that
    /// exists only while the event is pending. For producers with no
    /// monotone structure (wakeups, retransmission timers).
    pub fn push_once(&mut self, at: SimTime, event: Event) {
        let lane = LaneId(self.alloc_lane_slot(true));
        self.push(lane, at, event);
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let root = *self.top.first()?;
        let lane = root.lane as usize;
        let head = self.lanes[lane].head;
        let chunk = &self.chunks[head as usize];
        let node = chunk.nodes[chunk.read as usize];
        self.len -= 1;
        if node.payload >> TAG_SHIFT == TAG_RUN {
            let handle = (node.payload & HANDLE_MASK) as usize;
            let run = &mut self.runs[handle];
            let event = Event::Arrival {
                tx: TxId::from_index(run.tx as usize),
                pkt: run.pkt,
            };
            run.remaining -= 1;
            if run.remaining > 0 {
                // Materialize in place: the same ring node becomes the
                // run's next element, and the lane head re-keys the heap.
                run.pkt.seq = run.pkt.seq.wrapping_add(run.seq_stride);
                let stride = run.time_stride;
                let chunk = &mut self.chunks[head as usize];
                let n = &mut chunk.nodes[chunk.read as usize];
                n.at += stride;
                n.seq = n.seq.wrapping_add(1);
                self.top[0] = TopKey {
                    at: n.at,
                    seq: n.seq,
                    lane: root.lane,
                };
                self.sift_down(0);
                return Some((root.at, event));
            }
            // Run exhausted: recycle its descriptor and fall through to
            // consume the ring node (freelist threads through `tx`).
            self.runs[handle].tx = self.free_run;
            self.free_run = handle as u32;
            self.consume_head(root.lane);
            return Some((root.at, event));
        }
        let event = Self::assemble(node.payload, chunk.payloads[chunk.read as usize]);
        self.consume_head(root.lane);
        Some((root.at, event))
    }

    /// Consumes the head node of the heap-root lane, retiring drained
    /// chunks, re-keying the heap with the lane's next node or removing
    /// the lane if it drained.
    fn consume_head(&mut self, lane_u32: u32) {
        let lane = lane_u32 as usize;
        let head = self.lanes[lane].head;
        let chunk = &mut self.chunks[head as usize];
        chunk.read += 1;
        if chunk.read as usize == LANE_CHUNK
            || (head == self.lanes[lane].tail && chunk.read == chunk.write)
        {
            // Chunk consumed (or lane drained): retire it to the freelist.
            // A consumed *tail* chunk ends the lane; a consumed interior
            // chunk (always full) hands over to its successor.
            let next = if head == self.lanes[lane].tail {
                NIL
            } else {
                chunk.next
            };
            chunk.next = self.free_chunk;
            self.free_chunk = head;
            self.lanes[lane].head = next;
            if next == NIL {
                self.lanes[lane].tail = NIL;
            }
        }
        let head = self.lanes[lane].head;
        if head != NIL {
            // The lane's new head re-keys the heap root and sifts down.
            let chunk = &self.chunks[head as usize];
            let n = chunk.nodes[chunk.read as usize];
            self.top[0] = TopKey {
                at: n.at,
                seq: n.seq,
                lane: lane_u32,
            };
            self.sift_down(0);
        } else {
            // Lane drained: remove it from the heap.
            if self.lanes[lane].transient {
                // Thread the slot onto the lane freelist via `head`.
                self.lanes[lane].head = self.free_lane;
                self.free_lane = lane_u32;
            }
            let last = self.top.pop().expect("root exists");
            if !self.top.is_empty() {
                self.top[0] = last;
                self.sift_down(0);
            }
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.top.first().map(|k| k.at)
    }

    /// Number of pending events (run elements counted individually).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn sift_up(&mut self, mut i: usize) {
        let key = self.top[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if !key.before(&self.top[parent]) {
                break;
            }
            self.top[i] = self.top[parent];
            i = parent;
        }
        self.top[i] = key;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.top.len();
        let key = self.top[i];
        loop {
            let first = D * i + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            for child in (first + 1)..(first + D).min(len) {
                if self.top[child].before(&self.top[best]) {
                    best = child;
                }
            }
            if !self.top[best].before(&key) {
                break;
            }
            self.top[i] = self.top[best];
            i = best;
        }
        self.top[i] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_once(SimTime(30), Event::AppWakeup { token: 3 });
        q.push_once(SimTime(10), Event::AppWakeup { token: 1 });
        q.push_once(SimTime(20), Event::AppWakeup { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for token in 0..10 {
            q.push_once(SimTime(5), Event::AppWakeup { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_times_are_fifo_across_lanes() {
        // Interleave two monotone lanes and singletons at one timestamp:
        // pops must follow global push order.
        let mut q = EventQueue::new();
        let a = q.alloc_lane();
        let b = q.alloc_lane();
        q.push(a, SimTime(5), Event::AppWakeup { token: 0 });
        q.push(b, SimTime(5), Event::AppWakeup { token: 1 });
        q.push_once(SimTime(5), Event::AppWakeup { token: 2 });
        q.push(a, SimTime(5), Event::AppWakeup { token: 3 });
        q.push(b, SimTime(5), Event::AppWakeup { token: 4 });
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lanes_merge_in_global_time_order() {
        // Three monotone lanes with interleaved times plus out-of-order
        // singletons: the pop sequence must be globally sorted by
        // (time, push order).
        let mut q = EventQueue::new();
        let lanes: Vec<LaneId> = (0..3).map(|_| q.alloc_lane()).collect();
        let mut expected = Vec::new();
        let mut token = 0u64;
        for step in 0..50u64 {
            let lane = lanes[(step % 3) as usize];
            let at = SimTime(step / 3 * 7 + (step % 3));
            q.push(lane, at, Event::AppWakeup { token });
            expected.push((at, token));
            token += 1;
        }
        for step in (0..20u64).rev() {
            let at = SimTime(step * 9 + 1);
            q.push_once(at, Event::AppWakeup { token });
            expected.push((at, token));
            token += 1;
        }
        // Stable sort by time preserves push order among equal times,
        // matching the queue's seq tie-break.
        expected.sort_by_key(|&(at, _)| at);
        let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::AppWakeup { token } => (t, token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_push_pop_keeps_order_within_drain() {
        let mut q = EventQueue::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for round in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push_once(SimTime(x % 97), Event::AppWakeup { token: round });
            if round % 3 == 0 {
                q.pop().unwrap();
            }
        }
        let mut drained = Vec::new();
        while let Some((t, _)) = q.pop() {
            drained.push(t);
        }
        assert!(drained.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn chunks_slots_and_transient_lanes_recycle() {
        let mut q = EventQueue::new();
        for token in 0..64 {
            q.push_once(SimTime(token), Event::AppWakeup { token });
        }
        while q.pop().is_some() {}
        let chunk_high_water = q.chunks.len();
        let lane_high_water = q.lanes.len();
        assert_eq!(chunk_high_water, 64, "one chunk per concurrent singleton");
        // A steady push-one-pop-one cycle must not grow any arena.
        for token in 0..10_000 {
            q.push_once(SimTime(token), Event::AppWakeup { token });
            q.pop().unwrap();
        }
        assert_eq!(q.chunks.len(), chunk_high_water, "chunk churn must recycle");
        assert_eq!(q.lanes.len(), lane_high_water, "lane churn must recycle");
    }

    #[test]
    fn runs_recycle_their_descriptors() {
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        let template = RunTemplate {
            tx: TxId::from_index(0),
            pkt: PackedPacket::data(ConnId::from_index(0), 0, 100, false),
            seq_stride: 100,
        };
        q.push_run(lane, SimTime(0), 10, 8, template);
        while q.pop().is_some() {}
        let runs_high_water = q.runs.len();
        assert_eq!(runs_high_water, 1);
        for i in 0..1_000u64 {
            q.push_run(lane, SimTime(i * 1_000), 10, 8, template);
            while q.pop().is_some() {}
        }
        assert_eq!(q.runs.len(), runs_high_water, "run churn must recycle");
    }

    #[test]
    fn persistent_lane_push_is_queue_append() {
        // A monotone lane accumulating many pending events keeps exactly
        // one heap entry (its head) — the O(1)-push property the engine's
        // hot path relies on.
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        for i in 0..1_000u64 {
            q.push(lane, SimTime(i), Event::AppWakeup { token: i });
        }
        assert_eq!(q.len(), 1_000);
        assert_eq!(q.top.len(), 1, "one heap key per active lane");
        for i in 0..1_000u64 {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime(i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn run_pops_equal_individual_pushes() {
        // The core run-lane claim, in miniature: a run interleaved with
        // another lane and singletons pops exactly like the individual
        // pushes it replaces.
        let template = |seq| RunTemplate {
            tx: TxId::from_index(7),
            pkt: PackedPacket::data(ConnId::from_index(3), seq, 512, false),
            seq_stride: 512,
        };
        let mut compact = EventQueue::new();
        let mut reference = EventQueue::new();
        let (cl, rl) = (compact.alloc_lane(), reference.alloc_lane());
        let (co, ro) = (compact.alloc_lane(), reference.alloc_lane());
        compact.push_run(cl, SimTime(100), 10, 5, template(0));
        for i in 0..5u64 {
            reference.push(
                rl,
                SimTime(100 + 10 * i),
                Event::Arrival {
                    tx: TxId::from_index(7),
                    pkt: PackedPacket::data(ConnId::from_index(3), 512 * i, 512, false),
                },
            );
        }
        for (q, other_lane) in [(&mut compact, co), (&mut reference, ro)] {
            q.push(other_lane, SimTime(105), Event::AppWakeup { token: 1 });
            q.push(other_lane, SimTime(120), Event::AppWakeup { token: 2 });
            q.push_once(SimTime(100), Event::AppWakeup { token: 3 });
        }
        assert_eq!(compact.len(), reference.len());
        loop {
            let (a, b) = (compact.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn run_count_one_degenerates_to_push() {
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        let pkt = PackedPacket::data(ConnId::from_index(1), 42, 64, true);
        q.push_run(
            lane,
            SimTime(9),
            0,
            1,
            RunTemplate {
                tx: TxId::from_index(2),
                pkt,
                seq_stride: 64,
            },
        );
        assert_eq!(q.runs.len(), 0, "no descriptor for a single event");
        assert_eq!(
            q.pop(),
            Some((
                SimTime(9),
                Event::Arrival {
                    tx: TxId::from_index(2),
                    pkt,
                }
            ))
        );
    }

    #[test]
    fn zero_stride_run_is_fifo_against_later_pushes() {
        // An injection burst (stride 0) shares its timestamp with an event
        // pushed *after* the run: every run element must pop first (smaller
        // reserved seqs), exactly as k pushes would have.
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        q.push_run(
            lane,
            SimTime(5),
            0,
            3,
            RunTemplate {
                tx: TxId::from_index(0),
                pkt: PackedPacket::data(ConnId::from_index(0), 0, 8, false),
                seq_stride: 8,
            },
        );
        q.push_once(SimTime(5), Event::AppWakeup { token: 99 });
        let mut kinds = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, SimTime(5));
            kinds.push(matches!(e, Event::Arrival { .. }));
        }
        assert_eq!(kinds, vec![true, true, true, false]);
    }

    #[test]
    fn run_elements_carry_strided_stream_offsets() {
        let mut q = EventQueue::new();
        let lane = q.alloc_lane();
        q.push_run(
            lane,
            SimTime(0),
            1,
            4,
            RunTemplate {
                tx: TxId::from_index(0),
                pkt: PackedPacket::data(ConnId::from_index(0), 1_000, 250, false),
                seq_stride: 250,
            },
        );
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { pkt, .. } => pkt.seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![1_000, 1_250, 1_500, 1_750]);
    }

    #[test]
    fn seq_wraparound_keeps_fifo_order() {
        // Push the global seq counter to the wrap boundary: FIFO ordering
        // among equal timestamps must survive the u32 wrap because the
        // tie-break compares wrapping distance, not magnitude.
        let mut q = EventQueue::new();
        q.next_seq = u32::MAX - 2;
        for token in 0..6 {
            q.push_once(SimTime(1), Event::AppWakeup { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppWakeup { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push_once(SimTime(1), Event::AppWakeup { token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    /// Satellite guard: the hot-loop types' sizes, surfaced in test output
    /// (run `cargo test -p simnet layout -- --nocapture` to see them) and
    /// pinned by the `const` assertions next to each type.
    #[test]
    fn layout_sizes_are_compact() {
        use std::mem::size_of;
        let sizes = [
            ("PackedPacket", size_of::<PackedPacket>()),
            ("event::Node (lane-ring node)", size_of::<Node>()),
            ("event::TopKey (heap entry)", size_of::<TopKey>()),
            ("event::Run (burst descriptor)", size_of::<Run>()),
            ("event::Payload (parallel slot)", size_of::<Payload>()),
            (
                "event::LaneChunk (pooled ring block)",
                size_of::<LaneChunk>(),
            ),
            ("Event (pop-time view)", size_of::<Event>()),
        ];
        for (name, bytes) in sizes {
            println!("layout: {name} = {bytes} bytes");
        }
        assert_eq!(size_of::<PackedPacket>(), 16);
        assert_eq!(size_of::<Node>(), 16);
        assert_eq!(size_of::<TopKey>(), 16);
        assert!(size_of::<Run>() <= 40);
        assert!(size_of::<Payload>() <= 24);
    }
}
