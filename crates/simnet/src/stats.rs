//! Aggregate counters collected during a simulation run.

use serde::{Deserialize, Serialize};

/// Network-wide counters. Cheap to copy out after a run; used by tests to
/// assert on mechanisms (e.g. "the lossless fabric really dropped nothing")
/// and by experiments to report loss rates alongside completion times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Data segments injected by senders (including retransmissions).
    pub data_packets_sent: u64,
    /// Pure ACK packets injected by receivers.
    pub ack_packets_sent: u64,
    /// Data payload bytes injected (including retransmissions).
    pub data_bytes_sent: u64,
    /// Packets tail-dropped at exhausted buffer pools.
    pub packets_dropped: u64,
    /// Data segments re-sent after loss detection.
    pub retransmissions: u64,
    /// Retransmission-timeout events that actually retransmitted.
    pub timeouts: u64,
    /// Fast-retransmit events (triple duplicate ACK).
    pub fast_retransmits: u64,
    /// Application messages fully delivered.
    pub messages_delivered: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    // New counters are appended so serialized output stays a superset of
    // what older readers expect.
    /// ACK packets that reached their sender.
    pub acks_received: u64,
    /// Data segments that arrived above the next expected sequence (a
    /// reordering/loss gap at the receiver).
    pub ooo_segments: u64,
    /// Peak bytes queued at any bounded transmitter port (lossless
    /// "unbounded" ports skip occupancy accounting and never register).
    pub max_queue_depth: u64,
}

impl NetStats {
    /// Fraction of injected packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let total = self.data_packets_sent + self.ack_packets_sent;
        if total == 0 {
            0.0
        } else {
            self.packets_dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rate_handles_zero_traffic() {
        assert_eq!(NetStats::default().drop_rate(), 0.0);
    }

    #[test]
    fn drop_rate_is_a_fraction() {
        let s = NetStats {
            data_packets_sent: 90,
            ack_packets_sent: 10,
            packets_dropped: 25,
            ..Default::default()
        };
        assert!((s.drop_rate() - 0.25).abs() < 1e-12);
    }
}
