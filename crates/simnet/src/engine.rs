//! The discrete-event engine: owns the fabric state, the event queue and
//! every connection, and advances simulated time.
//!
//! # Hop model
//!
//! A packet traversing transmitter `tx` is (1) *admitted* against the
//! transmitter's buffer pool — tail-dropped if the pool is exhausted — then
//! (2) serialized after any packets already queued (`busy_until`), then
//! (3) propagated for the link latency, arriving either at the next
//! transmitter on the route or at the destination host. This is classic
//! store-and-forward output queueing: the same mechanism that makes a
//! commodity switch drop frames when a burst of simultaneous All-to-All
//! flows exhausts its shared packet memory.
//!
//! # Data representation
//!
//! The hot loop is memory-bound, so everything it moves is packed: packets
//! are 16-byte [`PackedPacket`]s (band and event-payload bytes scale with
//! this), queued events are 16-byte nodes (see [`crate::event`]), and a
//! zero-jitter injection burst of `k` same-size segments collapses into
//! one run node via [`EventQueue::push_run`]. Routes live in the topology's
//! interned arena; a packet names its route implicitly through its *flow*
//! (`conn·2 + direction`), resolved per hop through the engine's flat
//! `flow → RouteId` table.
//!
//! # Driving the simulator
//!
//! The embedding layer (simmpi) opens connections, calls [`Simulator::send`]
//! and consumes [`Notification`]s from [`Simulator::poll`], issuing new sends
//! as its protocol state machines advance. [`Simulator::schedule_wakeup`]
//! models host software overheads.

use crate::config::{SimConfig, TransportKind};
use crate::event::{Event, EventQueue, LaneId, RunTemplate};
use crate::guard::{GuardStop, RunGuard, GUARD_CHECK_INTERVAL};
use crate::ids::{ConnId, HostId, RouteId, TxId};
use crate::packet::{Notification, PackedPacket, PacketKind};
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::transport::{
    ConnCold, ConnHot, ConnView, Connection, SegmentRun, SendActions, TimerCmd,
};
use contention_obs::{NoopRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Freelist/band terminator for the pooled packet chunks.
const NIL: u32 = u32::MAX;

/// Packets per pooled chunk. A deep band (a NIC draining a send burst)
/// walks its packets out of contiguous memory ~`CHUNK` at a time instead
/// of chasing one pointer per packet through an interleaved arena — band
/// pops are where a large All-to-All spends its cache misses. With 16-byte
/// packed packets a chunk is 512 bytes of payload: eight cache lines.
const CHUNK: usize = 32;

/// A pooled ring segment: a fixed block of packets consumed front to back,
/// linked to the band's next block.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    pkts: [PackedPacket; CHUNK],
    /// Next unread slot.
    read: u16,
    /// Next unwritten slot.
    write: u16,
    /// Next chunk of the band, or the freelist link while unused.
    next: u32,
}

/// One shared arena of ring chunks for *every* transmitter band. Per-Tx
/// `VecDeque`s each kept (and grew) a private buffer; a fabric has
/// thousands of transmitters, so steady state reallocated constantly. The
/// pool grows to the simulation's true high-water mark once and then
/// recycles chunks through a freelist.
#[derive(Debug)]
struct PacketPool {
    chunks: Vec<Chunk>,
    free_head: u32,
}

/// A FIFO band over pooled chunks (head pops, tail pushes).
#[derive(Debug, Clone, Copy)]
struct Band {
    head: u32,
    tail: u32,
}

impl Default for Band {
    fn default() -> Self {
        Self {
            head: NIL,
            tail: NIL,
        }
    }
}

impl PacketPool {
    fn new() -> Self {
        Self {
            chunks: Vec::new(),
            free_head: NIL,
        }
    }

    fn alloc_chunk(&mut self) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let chunk = &mut self.chunks[idx as usize];
            self.free_head = chunk.next;
            // Reset metadata only; the stale packets are dead data that
            // push_back overwrites before pop_front can read them.
            chunk.read = 0;
            chunk.write = 0;
            chunk.next = NIL;
            idx
        } else {
            self.chunks.push(Chunk {
                pkts: [PackedPacket::PLACEHOLDER; CHUNK],
                read: 0,
                write: 0,
                next: NIL,
            });
            (self.chunks.len() - 1) as u32
        }
    }

    fn push_back(&mut self, band: &mut Band, pkt: PackedPacket) {
        if band.tail == NIL {
            let idx = self.alloc_chunk();
            band.head = idx;
            band.tail = idx;
        } else if self.chunks[band.tail as usize].write as usize == CHUNK {
            let idx = self.alloc_chunk();
            self.chunks[band.tail as usize].next = idx;
            band.tail = idx;
        }
        let chunk = &mut self.chunks[band.tail as usize];
        chunk.pkts[chunk.write as usize] = pkt;
        chunk.write += 1;
    }

    fn pop_front(&mut self, band: &mut Band) -> Option<PackedPacket> {
        if band.head == NIL {
            return None;
        }
        let chunk = &mut self.chunks[band.head as usize];
        if chunk.read == chunk.write {
            // Only possible when head == tail (a fully-read non-tail chunk
            // is retired eagerly below): the band is empty.
            debug_assert_eq!(band.head, band.tail);
            return None;
        }
        let pkt = chunk.pkts[chunk.read as usize];
        chunk.read += 1;
        if chunk.read as usize == CHUNK || (band.head == band.tail && chunk.read == chunk.write) {
            // Chunk consumed (or band drained): retire it to the freelist.
            let next = chunk.next;
            let retired = band.head;
            self.chunks[retired as usize].next = self.free_head;
            self.free_head = retired;
            band.head = next;
            if next == NIL {
                band.tail = NIL;
            }
        }
        Some(pkt)
    }
}

/// Per-transmitter packet bands: a control band (small packets — ACKs,
/// envelopes — which real host qdiscs and short device rings never bury
/// behind megabytes of bulk data) and a bulk FIFO. Control priority is
/// honoured only at host-owned transmitters; switches serve strict FIFO.
#[derive(Debug, Default, Clone, Copy)]
struct TxQueue {
    control: Band,
    bulk: Band,
}

/// A serialization slot: usually one per transmitter, but a host I/O bus
/// shares one slot between its two directions.
///
/// Members live inline: almost every slot serves exactly one transmitter
/// (a bus slot serves two), and `begin_service` runs twice per packet per
/// hop — a `Vec` would put a pointer chase and a heap allocation on the
/// hottest loop in the engine.
#[derive(Debug, Clone, Copy)]
struct SerializerState {
    busy: bool,
    members: [TxId; Self::MAX_MEMBERS],
    n_members: u8,
    rr_cursor: u8,
}

impl SerializerState {
    /// A slot is private (1 member) or a half-duplex bus pair (2).
    const MAX_MEMBERS: usize = 2;

    fn idle() -> Self {
        Self {
            busy: false,
            members: [TxId::from_index(0); Self::MAX_MEMBERS],
            n_members: 0,
            rr_cursor: 0,
        }
    }

    fn add_member(&mut self, tx: TxId) {
        assert!(
            (self.n_members as usize) < Self::MAX_MEMBERS,
            "a serializer slot serves at most a host bus pair"
        );
        self.members[self.n_members as usize] = tx;
        self.n_members += 1;
    }
}

/// The discrete-event network simulator.
///
/// The `R` parameter is the telemetry sink: the default
/// [`NoopRecorder`] advertises `ENABLED = false`, so every hook call
/// site below compiles away and the instrumented and uninstrumented
/// engines are the same machine code. Attach a recording implementation
/// with [`Simulator::with_recorder`].
pub struct Simulator<R: Recorder = NoopRecorder> {
    topo: Topology,
    config: SimConfig,
    time: SimTime,
    queue: EventQueue,
    /// Queue lane per transmitter: carries the arrivals/deliveries this
    /// transmitter's departures produce (monotone: pop time + fixed
    /// latency).
    tx_out_lane: Vec<LaneId>,
    /// Queue lane per serializer slot: carries its departure chain
    /// (monotone: `busy_until` only advances).
    ser_lane: Vec<LaneId>,
    /// Queue lanes per connection, (data, ack): injections are clamped
    /// monotone by `last_data_inject` / `last_ack_inject`.
    conn_lanes: Vec<(LaneId, LaneId)>,
    /// Interned route per flow (`conn·2` = forward/data, `conn·2 + 1` =
    /// reverse/ACK). Packets carry the flow word, not the route, so this
    /// flat table is the only per-hop indirection.
    flow_routes: Vec<RouteId>,
    serializers: Vec<SerializerState>,
    pkt_pool: PacketPool,
    tx_queues: Vec<TxQueue>,
    tx_host_owned: Vec<bool>,
    /// Transmitters whose pool and port caps are effectively infinite
    /// (host NICs, lossless fabrics): admission can never fail there, so
    /// the hot path skips occupancy accounting entirely.
    tx_unbounded: Vec<bool>,
    pool_occupancy: Vec<u64>,
    port_occupancy: Vec<u64>,
    pool_drops: Vec<u64>,
    /// Columnar connection state: the dense hot column (one 64-byte line
    /// per connection — what every delivery/ACK touches) …
    conn_hot: Vec<ConnHot>,
    /// … and the parallel cold column (identity, RTT estimation, timer and
    /// framing bookkeeping), touched only at protocol boundaries.
    conn_cold: Vec<ConnCold>,
    notifications: VecDeque<Notification>,
    stats: NetStats,
    rng: StdRng,
    recorder: R,
    /// Supervision limits polled every [`GUARD_CHECK_INTERVAL`] events.
    guard: RunGuard,
    /// Fast-path gate: false for the default unlimited guard, so the
    /// hot loop pays one predictable branch per event.
    guard_active: bool,
    /// `events_processed` when the guard was installed (budgets are
    /// relative to installation).
    guard_event_origin: u64,
    /// Simulated time when the guard was installed (the horizon is
    /// relative to installation).
    guard_time_origin: SimTime,
    /// Set once a guard limit trips; [`Simulator::step`] then refuses to
    /// advance until a new guard is installed or the stop is taken.
    stopped: Option<GuardStop>,
}

impl Simulator {
    /// Creates a simulator over a built topology with telemetry disabled
    /// (the zero-cost [`NoopRecorder`]).
    pub fn new(topo: Topology, config: SimConfig) -> Self {
        Self::with_recorder(topo, config, NoopRecorder)
    }
}

impl<R: Recorder> Simulator<R> {
    /// Creates a simulator that reports engine events to `recorder`.
    pub fn with_recorder(topo: Topology, config: SimConfig, recorder: R) -> Self {
        let n_serializers = topo.n_serializers;
        let n_tx = topo.tx_params.len();
        let n_pools = topo.pool_capacity.len();
        let n_hosts = topo.n_hosts;
        let mut serializers: Vec<SerializerState> = vec![SerializerState::idle(); n_serializers];
        let mut tx_host_owned = Vec::with_capacity(n_tx);
        let mut tx_unbounded = Vec::with_capacity(n_tx);
        // "Unbounded" = larger than any simulation could queue: a tail
        // drop at such a transmitter is arithmetically impossible, so its
        // occupancy is dead weight. Hosts and lossless fabrics qualify.
        const UNBOUNDED_BYTES: u64 = u64::MAX / 8;
        for (i, params) in topo.tx_params.iter().enumerate() {
            serializers[params.serializer as usize].add_member(TxId::from_index(i));
            tx_host_owned.push(params.pool.index() < n_hosts);
            tx_unbounded.push(
                topo.pool_capacity[params.pool.index()] >= UNBOUNDED_BYTES
                    && params.port_cap_bytes >= UNBOUNDED_BYTES,
            );
        }
        let tx_queues = vec![TxQueue::default(); n_tx];
        let mut queue = EventQueue::new();
        let tx_out_lane = (0..n_tx).map(|_| queue.alloc_lane()).collect();
        let ser_lane = (0..n_serializers).map(|_| queue.alloc_lane()).collect();
        Self {
            topo,
            config,
            time: SimTime::ZERO,
            queue,
            tx_out_lane,
            ser_lane,
            conn_lanes: Vec::new(),
            flow_routes: Vec::new(),
            serializers,
            pkt_pool: PacketPool::new(),
            tx_queues,
            tx_host_owned,
            tx_unbounded,
            port_occupancy: vec![0; n_tx],
            pool_occupancy: vec![0; n_pools],
            pool_drops: vec![0; n_pools],
            conn_hot: Vec::new(),
            conn_cold: Vec::new(),
            notifications: VecDeque::new(),
            stats: NetStats::default(),
            rng: StdRng::seed_from_u64(config.seed),
            recorder,
            guard: RunGuard::default(),
            guard_active: false,
            guard_event_origin: 0,
            guard_time_origin: SimTime::ZERO,
            stopped: None,
        }
    }

    /// The attached telemetry recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the recorder (e.g. to harvest a snapshot).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consumes the simulator, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Reports a queue push to the recorder (compiled out when `R` is the
    /// no-op recorder).
    #[inline]
    fn note_push(&mut self) {
        if R::ENABLED {
            let len = self.queue.len();
            self.recorder.on_event_push(len);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Per-pool tail-drop counts (indexed by pool id: hosts first, then
    /// switches in creation order).
    pub fn pool_drops(&self) -> &[u64] {
        &self.pool_drops
    }

    /// The topology this simulator runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of hosts in the fabric.
    pub fn n_hosts(&self) -> usize {
        self.topo.n_hosts
    }

    /// Number of events currently pending in the queue (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Opens a unidirectional connection `src → dst`.
    ///
    /// # Panics
    /// Panics if `src == dst` (self-messages never touch the network; the
    /// MPI layer handles them locally).
    pub fn open_connection(&mut self, src: HostId, dst: HostId, kind: TransportKind) -> ConnId {
        let id = ConnId::from_index(self.conn_hot.len());
        let fwd = self.topo.route_id(src, dst);
        let rev = self.topo.route_id(dst, src);
        self.conn_lanes
            .push((self.queue.alloc_lane(), self.queue.alloc_lane()));
        // Flow table rows in PackedPacket::flow_index order: forward
        // (data) on the even row, reverse (ACK) on the odd row.
        self.flow_routes.push(fwd);
        self.flow_routes.push(rev);
        let (hot, cold) = Connection::columns(id, src, dst, kind);
        self.conn_hot.push(hot);
        self.conn_cold.push(cold);
        id
    }

    /// The full hot+cold state-machine view of one connection.
    fn conn(&mut self, conn: ConnId) -> ConnView<'_> {
        ConnView {
            hot: &mut self.conn_hot[conn.index()],
            cold: &mut self.conn_cold[conn.index()],
        }
    }

    /// Queues `bytes` of application payload tagged `tag` on a connection.
    /// Completion is reported via [`Notification::Delivered`] (receiver) and
    /// [`Notification::SendDone`] (sender).
    pub fn send(&mut self, conn: ConnId, bytes: u64, tag: u64) {
        let now = self.time;
        let actions = self.conn(conn).on_app_send(bytes, tag, now);
        self.apply_send_actions(conn, actions);
    }

    /// Schedules [`Notification::Wakeup`] with `token` at absolute time `at`.
    pub fn schedule_wakeup(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.time, "wakeups cannot be scheduled in the past");
        self.queue.push_once(at, Event::AppWakeup { token });
        self.note_push();
    }

    /// Returns the next notification, advancing the simulation as needed.
    /// `None` means the simulation is fully drained.
    pub fn poll(&mut self) -> Option<Notification> {
        loop {
            if let Some(n) = self.notifications.pop_front() {
                return Some(n);
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Runs the simulation to completion, accumulating notifications (drain
    /// them with [`Simulator::poll`] afterwards if needed).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Processes one event. Returns false when the queue is empty — or
    /// when an installed [`RunGuard`] limit has tripped (disambiguate
    /// with [`Simulator::stop_reason`]).
    pub fn step(&mut self) -> bool {
        if self.guard_active && self.check_guard() {
            return false;
        }
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "time must be monotonic");
        self.time = at;
        self.stats.events_processed += 1;
        if R::ENABLED {
            let len = self.queue.len();
            self.recorder.on_event_pop(at.as_nanos(), len);
        }
        match event {
            Event::Arrival { tx, pkt } => self.handle_arrival(tx, pkt),
            Event::Departure { tx, pkt } => self.handle_departure(tx, pkt),
            Event::HostDelivery { host, pkt } => self.handle_delivery(host, pkt),
            Event::RtoTimer { conn } => self.handle_rto(conn),
            Event::AppWakeup { token } => {
                self.notifications.push_back(Notification::Wakeup {
                    token,
                    at: self.time,
                });
            }
        }
        true
    }

    fn wire_size(&self, pkt: PackedPacket) -> u64 {
        match pkt.kind() {
            PacketKind::Data => pkt.len() as u64 + self.config.header_bytes as u64,
            PacketKind::Ack => self.config.ack_bytes as u64,
        }
    }

    /// Wire size below which a packet rides the host-NIC control band.
    const CONTROL_BAND_WIRE: u64 = 256;

    fn handle_arrival(&mut self, tx: TxId, pkt: PackedPacket) {
        let wire = self.wire_size(pkt);
        let params = self.topo.tx_params[tx.index()];
        if !self.tx_unbounded[tx.index()] {
            let pool = params.pool.index();
            if self.pool_occupancy[pool] + wire > self.topo.pool_capacity[pool]
                || self.port_occupancy[tx.index()] + wire > params.port_cap_bytes
            {
                self.stats.packets_dropped += 1;
                self.pool_drops[pool] += 1;
                if R::ENABLED {
                    self.recorder
                        .on_drop(tx.index() as u32, self.time.as_nanos());
                }
                return;
            }
            self.pool_occupancy[pool] += wire;
            self.port_occupancy[tx.index()] += wire;
            if self.port_occupancy[tx.index()] > self.stats.max_queue_depth {
                self.stats.max_queue_depth = self.port_occupancy[tx.index()];
            }
        }
        if R::ENABLED {
            self.recorder.on_queue_enqueue(tx.index() as u32, wire);
        }
        let q = &mut self.tx_queues[tx.index()];
        if self.tx_host_owned[tx.index()] && wire <= Self::CONTROL_BAND_WIRE {
            self.pkt_pool.push_back(&mut q.control, pkt);
        } else {
            self.pkt_pool.push_back(&mut q.bulk, pkt);
        }
        let slot = params.serializer as usize;
        if !self.serializers[slot].busy {
            self.begin_service(slot);
        }
    }

    /// Starts serializing the next queued packet on a slot, if any.
    /// Control bands across the slot's member transmitters go first; bulk
    /// is served round-robin among members (one member for ordinary links,
    /// two for a shared host bus).
    fn begin_service(&mut self, slot: usize) {
        let Some((tx, pkt)) = self.pick(slot) else {
            self.serializers[slot].busy = false;
            return;
        };
        self.serializers[slot].busy = true;
        let params = self.topo.tx_params[tx.index()];
        let wire = self.wire_size(pkt);
        let serialization = (wire as f64 * params.ns_per_byte).ceil() as u64;
        if R::ENABLED {
            self.recorder.on_tx_busy(
                tx.index() as u32,
                self.time.as_nanos(),
                (self.time + serialization).as_nanos(),
                wire,
            );
        }
        self.queue.push(
            self.ser_lane[slot],
            self.time + serialization,
            Event::Departure { tx, pkt },
        );
        self.note_push();
    }

    /// Selects the next packet a slot should serialize. Control bands of
    /// the slot's members go first; bulk is served round-robin.
    fn pick(&mut self, slot: usize) -> Option<(TxId, PackedPacket)> {
        if self.serializers[slot].n_members == 1 {
            // Fast path: a private slot (every ordinary link) — one control
            // probe, one bulk probe, no round-robin bookkeeping.
            let tx = self.serializers[slot].members[0];
            let q = &mut self.tx_queues[tx.index()];
            match self.pkt_pool.pop_front(&mut q.control) {
                some @ Some(_) => some.map(|pkt| (tx, pkt)),
                None => self.pkt_pool.pop_front(&mut q.bulk).map(|pkt| (tx, pkt)),
            }
        } else {
            self.pick_shared(slot)
        }
    }

    /// Slow path of [`Simulator::pick`]: round-robin over the members of a
    /// shared slot (a host I/O bus pair), or an empty slot whose
    /// transmitter serializes elsewhere.
    fn pick_shared(&mut self, slot: usize) -> Option<(TxId, PackedPacket)> {
        let n = self.serializers[slot].n_members as usize;
        let cursor = self.serializers[slot].rr_cursor as usize;
        for i in 0..n {
            let idx = (cursor + i) % n;
            let tx = self.serializers[slot].members[idx];
            if let Some(pkt) = self
                .pkt_pool
                .pop_front(&mut self.tx_queues[tx.index()].control)
            {
                return Some((tx, pkt));
            }
        }
        for i in 0..n {
            let idx = (cursor + i) % n;
            let tx = self.serializers[slot].members[idx];
            if let Some(pkt) = self
                .pkt_pool
                .pop_front(&mut self.tx_queues[tx.index()].bulk)
            {
                self.serializers[slot].rr_cursor = ((idx + 1) % n) as u8;
                return Some((tx, pkt));
            }
        }
        None
    }

    fn handle_departure(&mut self, tx: TxId, pkt: PackedPacket) {
        let wire = self.wire_size(pkt);
        let params = self.topo.tx_params[tx.index()];
        if !self.tx_unbounded[tx.index()] {
            let pool = params.pool.index();
            debug_assert!(self.pool_occupancy[pool] >= wire);
            debug_assert!(self.port_occupancy[tx.index()] >= wire);
            self.pool_occupancy[pool] -= wire;
            self.port_occupancy[tx.index()] -= wire;
        }
        if R::ENABLED {
            self.recorder.on_queue_dequeue(tx.index() as u32, wire);
        }
        self.advance(tx, pkt, self.time + params.latency_ns);
        // Keep the wire busy: serve the next queued packet on this slot.
        self.begin_service(params.serializer as usize);
    }

    /// Moves a serialized packet to its next hop (or its destination
    /// host), arriving at `arrive_at`.
    fn advance(&mut self, tx: TxId, pkt: PackedPacket, arrive_at: SimTime) {
        // The packet's route: one flow-table row, then one flat slice.
        let route_id = self.flow_routes[pkt.flow_index()];
        let route = self.topo.route_slice(route_id);
        let lane = self.tx_out_lane[tx.index()];
        let hop = pkt.hop() as usize;
        if hop + 1 == route.len() {
            let host = self.topo.route_dst(route_id);
            self.queue
                .push(lane, arrive_at, Event::HostDelivery { host, pkt });
        } else {
            let next_tx = route[hop + 1];
            let mut pkt = pkt;
            pkt.advance_hop();
            self.queue
                .push(lane, arrive_at, Event::Arrival { tx: next_tx, pkt });
        }
        self.note_push();
    }

    fn handle_delivery(&mut self, host: HostId, pkt: PackedPacket) {
        let now = self.time;
        let conn = pkt.conn();
        match pkt.kind() {
            PacketKind::Data => {
                debug_assert_eq!(self.conn_cold[conn.index()].dst, host);
                // Steady-state deliveries (in-order, mid-message, nothing
                // buffered out of order) resolve against the hot line
                // alone; boundaries fall through to the full view.
                if let Some(ack) = self.conn_hot[conn.index()].on_data_fast(pkt.seq, pkt.len()) {
                    self.inject_ack(conn, ack);
                    return;
                }
                if pkt.seq > self.conn_hot[conn.index()].rcv_nxt {
                    // A gap: this segment arrived ahead of the next
                    // expected byte (the fast path above never sees one).
                    self.stats.ooo_segments += 1;
                }
                let recv = self.conn(conn).on_data(pkt.seq, pkt.len(), now);
                for tag in recv.delivered {
                    self.stats.messages_delivered += 1;
                    self.notifications
                        .push_back(Notification::Delivered { conn, tag, at: now });
                }
                if let Some(ack) = recv.ack {
                    self.inject_ack(conn, ack);
                }
            }
            PacketKind::Ack => {
                debug_assert_eq!(self.conn_cold[conn.index()].src, host);
                self.stats.acks_received += 1;
                let actions = self.conn(conn).on_ack(pkt.seq, now);
                if R::ENABLED {
                    let cwnd = self.conn_hot[conn.index()].cwnd_bytes();
                    self.recorder
                        .on_cwnd(conn.index() as u32, now.as_nanos(), cwnd);
                }
                self.apply_send_actions(conn, actions);
            }
        }
    }

    fn handle_rto(&mut self, conn: ConnId) {
        let now = self.time;
        let c = &mut self.conn_cold[conn.index()];
        c.timer_pushed = false;
        match c.timer_deadline {
            None => {}
            Some(deadline) if deadline > now => {
                // The deadline moved forward since this event was pushed
                // (ACKs restarted the timer); chase it with one event.
                c.timer_pushed = true;
                self.queue.push_once(deadline, Event::RtoTimer { conn });
                self.note_push();
            }
            Some(_) => {
                let actions = self.conn(conn).on_rto(now);
                self.apply_send_actions(conn, actions);
            }
        }
    }

    fn apply_send_actions(&mut self, conn: ConnId, actions: SendActions) {
        if actions.fast_retransmit {
            self.stats.fast_retransmits += 1;
            if R::ENABLED {
                self.recorder
                    .on_fast_retransmit(conn.index() as u32, self.time.as_nanos());
            }
        }
        if actions.timeout {
            self.stats.timeouts += 1;
            if R::ENABLED {
                self.recorder
                    .on_timeout(conn.index() as u32, self.time.as_nanos());
            }
        }
        for tag in actions.send_done {
            self.notifications.push_back(Notification::SendDone {
                conn,
                tag,
                at: self.time,
            });
        }
        for run in actions.segments {
            self.inject_data(conn, run);
        }
        self.set_timer(conn, actions.timer);
    }

    fn set_timer(&mut self, conn: ConnId, cmd: TimerCmd) {
        let tick_jitter = if self.config.rto_jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.config.rto_jitter_ns)
        };
        let c = &mut self.conn_cold[conn.index()];
        match cmd {
            TimerCmd::Keep => {}
            TimerCmd::Disarm => c.timer_deadline = None,
            TimerCmd::Arm(deadline) => {
                let deadline = deadline + tick_jitter;
                c.timer_deadline = Some(deadline);
                if !c.timer_pushed {
                    c.timer_pushed = true;
                    self.queue.push_once(deadline, Event::RtoTimer { conn });
                    self.note_push();
                }
                // If an event is already pushed (necessarily at an earlier
                // or equal time), it will chase the new deadline on fire.
            }
        }
    }

    fn jitter(&mut self) -> u64 {
        if self.config.injection_jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.config.injection_jitter_ns)
        }
    }

    /// Injects a run of data segments on a connection's forward route.
    ///
    /// With injection jitter disabled, the whole burst clamps to one
    /// timestamp and enters the queue as a single run node. With jitter
    /// enabled each segment draws its own offset — the per-segment RNG
    /// stream is part of the simulation's observable behavior, so the
    /// fallback path reproduces it draw for draw.
    fn inject_data(&mut self, conn: ConnId, run: SegmentRun) {
        debug_assert!(run.count > 0);
        self.stats.data_packets_sent += run.count as u64;
        self.stats.data_bytes_sent += run.total_bytes();
        if run.retransmit {
            self.stats.retransmissions += run.count as u64;
            if R::ENABLED {
                self.recorder
                    .on_retransmit(conn.index() as u32, self.time.as_nanos(), run.count);
            }
        }
        let flow = conn.index() * 2;
        let first_hop = self.topo.first_hop(self.flow_routes[flow]);
        let lane = self.conn_lanes[conn.index()].0;
        if self.config.injection_jitter_ns == 0 {
            let c = &mut self.conn_cold[conn.index()];
            let at = self.time.max(c.last_data_inject);
            c.last_data_inject = at;
            let template = RunTemplate {
                tx: first_hop,
                pkt: PackedPacket::data(conn, run.seq, run.len, run.retransmit),
                seq_stride: run.len as u64,
            };
            self.queue.push_run(lane, at, 0, run.count, template);
            self.note_push();
        } else {
            for (seq, len) in run.iter() {
                let jitter = self.jitter();
                let c = &mut self.conn_cold[conn.index()];
                let at = (self.time + jitter).max(c.last_data_inject);
                c.last_data_inject = at;
                let pkt = PackedPacket::data(conn, seq, len, run.retransmit);
                self.queue
                    .push(lane, at, Event::Arrival { tx: first_hop, pkt });
                self.note_push();
            }
        }
    }

    fn inject_ack(&mut self, conn: ConnId, ack: u64) {
        let jitter = self.jitter();
        let c = &mut self.conn_cold[conn.index()];
        let at = (self.time + jitter).max(c.last_ack_inject);
        c.last_ack_inject = at;
        let flow = conn.index() * 2 + 1;
        let first_hop = self.topo.first_hop(self.flow_routes[flow]);
        let pkt = PackedPacket::ack(conn, ack);
        self.stats.ack_packets_sent += 1;
        let lane = self.conn_lanes[conn.index()].1;
        self.queue
            .push(lane, at, Event::Arrival { tx: first_hop, pkt });
        self.note_push();
    }

    /// True when every connection has acknowledged all queued bytes.
    pub fn all_quiescent(&self) -> bool {
        self.conn_hot
            .iter()
            .zip(&self.conn_cold)
            .all(|(hot, cold)| hot.snd_una == cold.stream_len())
    }

    /// Installs supervision limits, replacing any previous guard and
    /// clearing a tripped stop. The event budget and simulated-time
    /// horizon are measured from this instant; the wall-clock deadline
    /// is absolute. Installing [`RunGuard::unlimited`] disables all
    /// checking (the default).
    pub fn set_guard(&mut self, guard: RunGuard) {
        self.guard_active = !guard.is_unlimited();
        self.guard_event_origin = self.stats.events_processed;
        self.guard_time_origin = self.time;
        self.stopped = None;
        self.guard = guard;
    }

    /// Why the last run stopped early, if a guard limit tripped.
    /// `None` after a normal drain.
    pub fn stop_reason(&self) -> Option<GuardStop> {
        self.stopped
    }

    /// Takes the stop reason, letting the simulation be stepped again
    /// (the guard re-trips at the next check if its limit still holds).
    pub fn take_stop(&mut self) -> Option<GuardStop> {
        self.stopped.take()
    }

    /// Guard preemption point: every [`GUARD_CHECK_INTERVAL`] processed
    /// events, evaluate the installed limits. Returns true when the run
    /// must stop.
    #[inline]
    fn check_guard(&mut self) -> bool {
        if self.stopped.is_some() {
            return true;
        }
        if self.stats.events_processed & (GUARD_CHECK_INTERVAL - 1) != 0 {
            return false;
        }
        let used = self.stats.events_processed - self.guard_event_origin;
        let elapsed = self.time.since(self.guard_time_origin);
        match self.guard.check(used, elapsed) {
            Some(stop) => {
                self.stopped = Some(stop);
                true
            }
            None => false,
        }
    }

    /// Connections with bytes queued but not yet acknowledged — the
    /// stall-detector diagnostic. On a drained, non-quiescent simulation
    /// (no pending events, [`Simulator::all_quiescent`] false) these are
    /// the connections whose in-flight data was tail-dropped with no
    /// retransmission timer to recover it: the GM-on-finite-buffer trap.
    pub fn blocked_connections(&self) -> Vec<BlockedConn> {
        self.conn_hot
            .iter()
            .zip(&self.conn_cold)
            .filter(|(hot, cold)| hot.snd_una < cold.stream_len())
            .map(|(hot, cold)| BlockedConn {
                conn: cold.id,
                src: cold.src,
                dst: cold.dst,
                unacked_bytes: cold.stream_len() - hot.snd_una,
            })
            .collect()
    }
}

/// One stalled connection in a [`Simulator::blocked_connections`]
/// diagnostic: queued bytes remain unacknowledged with nothing pending
/// to move them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedConn {
    /// The stalled connection.
    pub conn: ConnId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Bytes queued on the stream but never acknowledged.
    pub unacked_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmConfig, LinkConfig, SwitchConfig, TcpConfig};
    use crate::topology::TopologyBuilder;

    fn star_sim(
        n: usize,
        link: LinkConfig,
        sw: SwitchConfig,
        cfg: SimConfig,
    ) -> (Simulator, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let switch = b.add_switch(sw);
        for &h in &hosts {
            b.link_host(h, switch, link);
        }
        let topo = b.build(&cfg).unwrap();
        (Simulator::new(topo, cfg), hosts)
    }

    fn quiet_config() -> SimConfig {
        SimConfig {
            injection_jitter_ns: 0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn cancellation_latency_is_bounded_by_one_check_interval() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (mut sim, hosts) = star_sim(
            8,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        // Enough traffic to outlast the flag flip by far.
        for (i, &src) in hosts.iter().enumerate() {
            for &dst in &hosts {
                if src != dst {
                    let conn =
                        sim.open_connection(src, dst, TransportKind::Tcp(TcpConfig::default()));
                    sim.send(conn, 256 * 1024, i as u64);
                }
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        sim.set_guard(RunGuard::unlimited().with_cancel_flag(Arc::clone(&flag)));
        let mut flipped_at = None;
        while sim.step() {
            let done = sim.stats().events_processed;
            if done >= 1000 && flipped_at.is_none() {
                flag.store(true, Ordering::Relaxed);
                flipped_at = Some(done);
            }
        }
        let flipped_at = flipped_at.expect("simulation outlasted the flip point");
        assert_eq!(sim.stop_reason(), Some(GuardStop::Cancelled));
        assert!(
            sim.stats().events_processed - flipped_at <= GUARD_CHECK_INTERVAL,
            "cancellation latency {} events exceeds one check interval",
            sim.stats().events_processed - flipped_at
        );
        // A tripped guard pins the simulation: stepping stays refused.
        assert!(!sim.step());
    }

    #[test]
    fn event_budget_stops_within_one_check_interval() {
        let (mut sim, hosts) = star_sim(
            4,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        for &src in &hosts {
            for &dst in &hosts {
                if src != dst {
                    let conn =
                        sim.open_connection(src, dst, TransportKind::Tcp(TcpConfig::default()));
                    sim.send(conn, 1024 * 1024, 0);
                }
            }
        }
        sim.set_guard(RunGuard::unlimited().with_event_budget(10_000));
        sim.run_until_idle();
        assert!(matches!(
            sim.stop_reason(),
            Some(GuardStop::Budget { budget: 10_000 })
        ));
        assert!(sim.stats().events_processed >= 10_000);
        assert!(sim.stats().events_processed < 10_000 + GUARD_CHECK_INTERVAL);
    }

    #[test]
    fn unlimited_guard_changes_nothing() {
        let run = |guarded: bool| {
            let (mut sim, hosts) = star_sim(
                4,
                LinkConfig::gigabit_ethernet(),
                SwitchConfig::commodity_ethernet(),
                quiet_config(),
            );
            if guarded {
                sim.set_guard(RunGuard::unlimited());
            }
            for &src in &hosts {
                for &dst in &hosts {
                    if src != dst {
                        let conn =
                            sim.open_connection(src, dst, TransportKind::Tcp(TcpConfig::default()));
                        sim.send(conn, 64 * 1024, 0);
                    }
                }
            }
            sim.run_until_idle();
            (sim.now(), *sim.stats())
        };
        let (t0, s0) = run(false);
        let (t1, s1) = run(true);
        assert_eq!(t0, t1);
        assert_eq!(s0.events_processed, s1.events_processed);
        assert_eq!(s0.packets_dropped, s1.packets_dropped);
    }

    #[test]
    fn single_transfer_completes_and_is_delivered() {
        let (mut sim, hosts) = star_sim(
            2,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        let conn =
            sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        sim.send(conn, 1_000_000, 7);
        let mut delivered_at = None;
        let mut send_done_at = None;
        while let Some(n) = sim.poll() {
            match n {
                Notification::Delivered { tag, at, .. } => {
                    assert_eq!(tag, 7);
                    delivered_at = Some(at);
                }
                Notification::SendDone { tag, at, .. } => {
                    assert_eq!(tag, 7);
                    send_done_at = Some(at);
                }
                _ => {}
            }
        }
        let d = delivered_at.expect("message delivered");
        let s = send_done_at.expect("send completed");
        assert!(s >= d, "last ACK returns after last delivery");
        assert!(sim.all_quiescent());
        assert_eq!(sim.stats().messages_delivered, 1);
        assert_eq!(
            sim.stats().packets_dropped,
            0,
            "uncontended star must not drop"
        );
    }

    #[test]
    fn transfer_time_close_to_line_rate() {
        // 10 MB over GbE through one switch: two serialization hops at
        // 125 MB/s ≈ 80 ms dominated by the slower of the two (pipelined),
        // so expect ~80 ms plus protocol ramp-up, well under 160 ms.
        let (mut sim, hosts) = star_sim(
            2,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        let conn =
            sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        sim.send(conn, 10_000_000, 1);
        let mut done = SimTime::ZERO;
        while let Some(n) = sim.poll() {
            if let Notification::Delivered { at, .. } = n {
                done = at;
            }
        }
        let secs = done.as_secs_f64();
        let ideal = 10_000_000.0 / 125e6;
        assert!(secs > ideal, "cannot beat line rate: {secs} vs {ideal}");
        assert!(
            secs < ideal * 1.5,
            "should be near line rate: {secs} vs {ideal}"
        );
    }

    #[test]
    fn gm_transfer_is_lossless_and_fast() {
        let (mut sim, hosts) = star_sim(
            2,
            LinkConfig::myrinet_2000(),
            SwitchConfig::lossless_fabric(),
            quiet_config(),
        );
        let conn = sim.open_connection(hosts[0], hosts[1], TransportKind::Gm(GmConfig::default()));
        sim.send(conn, 10_000_000, 1);
        sim.run_until_idle();
        assert!(sim.all_quiescent());
        assert_eq!(sim.stats().packets_dropped, 0);
        assert_eq!(sim.stats().retransmissions, 0);
        assert_eq!(sim.stats().timeouts, 0);
    }

    #[test]
    fn tiny_switch_buffer_forces_drops_and_retransmissions() {
        // Many senders into one receiver (incast) with a small shared pool.
        let sw = SwitchConfig {
            shared_buffer_bytes: 32 * 1024,
            per_port_cap_bytes: 16 * 1024,
        };
        let (mut sim, hosts) = star_sim(9, LinkConfig::gigabit_ethernet(), sw, quiet_config());
        let sink = hosts[8];
        for &h in &hosts[..8] {
            let conn = sim.open_connection(h, sink, TransportKind::Tcp(TcpConfig::default()));
            sim.send(conn, 2_000_000, h.index() as u64);
        }
        sim.run_until_idle();
        assert!(sim.all_quiescent(), "TCP must recover from all losses");
        assert!(
            sim.stats().packets_dropped > 0,
            "incast must overflow the pool"
        );
        assert!(sim.stats().retransmissions > 0);
        assert_eq!(sim.stats().messages_delivered, 8);
    }

    #[test]
    fn wakeups_fire_in_order() {
        let (mut sim, _) = star_sim(
            2,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        sim.schedule_wakeup(SimTime(500), 2);
        sim.schedule_wakeup(SimTime(100), 1);
        let n1 = sim.poll().unwrap();
        let n2 = sim.poll().unwrap();
        assert_eq!(
            n1,
            Notification::Wakeup {
                token: 1,
                at: SimTime(100)
            }
        );
        assert_eq!(
            n2,
            Notification::Wakeup {
                token: 2,
                at: SimTime(500)
            }
        );
        assert!(sim.poll().is_none());
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed: u64| {
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let (mut sim, hosts) = star_sim(
                6,
                LinkConfig::gigabit_ethernet(),
                SwitchConfig {
                    shared_buffer_bytes: 64 * 1024,
                    per_port_cap_bytes: 32 * 1024,
                },
                cfg,
            );
            for i in 0..5 {
                let conn = sim.open_connection(
                    hosts[i],
                    hosts[5],
                    TransportKind::Tcp(TcpConfig::default()),
                );
                sim.send(conn, 500_000, i as u64);
            }
            sim.run_until_idle();
            (sim.now(), *sim.stats())
        };
        let (t1, s1) = run(1234);
        let (t2, s2) = run(1234);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        let (t3, _) = run(9999);
        // Different seed shifts jitter; times should differ (not a hard
        // guarantee, but astronomically likely with drops in play).
        assert_ne!(t1, t3);
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        // Both senders target the same receiver: its NIC downlink is the
        // bottleneck, so each flow should get roughly half the bandwidth.
        let (mut sim, hosts) = star_sim(
            3,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::lossless_fabric(),
            quiet_config(),
        );
        let c0 = sim.open_connection(hosts[0], hosts[2], TransportKind::Tcp(TcpConfig::default()));
        let c1 = sim.open_connection(hosts[1], hosts[2], TransportKind::Tcp(TcpConfig::default()));
        sim.send(c0, 4_000_000, 0);
        sim.send(c1, 4_000_000, 1);
        let mut times = Vec::new();
        while let Some(n) = sim.poll() {
            if let Notification::Delivered { at, .. } = n {
                times.push(at.as_secs_f64());
            }
        }
        assert_eq!(times.len(), 2);
        let ideal_shared = 8_000_000.0 / 125e6; // both flows through one downlink
        let last = times.iter().cloned().fold(0.0, f64::max);
        assert!(last > ideal_shared * 0.95, "{last} vs {ideal_shared}");
        assert!(last < ideal_shared * 1.6, "{last} vs {ideal_shared}");
    }

    #[test]
    fn messages_on_same_connection_deliver_in_order() {
        let (mut sim, hosts) = star_sim(
            2,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        let conn =
            sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        for tag in 0..5 {
            sim.send(conn, 100_000, tag);
        }
        let mut tags = Vec::new();
        while let Some(n) = sim.poll() {
            if let Notification::Delivered { tag, .. } = n {
                tags.push(tag);
            }
        }
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn io_bus_halves_full_duplex_throughput() {
        // Two hosts exchange 4 MB in both directions simultaneously.
        // Without a bus the transfers overlap fully (full duplex); with a
        // half-duplex bus at wire rate they serialize at each host, taking
        // roughly twice as long.
        let run = |with_bus: bool| {
            let mut b = TopologyBuilder::new();
            let hosts = b.add_hosts(2);
            let sw = b.add_switch(SwitchConfig::lossless_fabric());
            for &h in &hosts {
                b.link_host(h, sw, LinkConfig::myrinet_2000());
            }
            if with_bus {
                b.host_io_bus(250e6, 500);
            }
            let cfg = quiet_config();
            let mut sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
            let c0 =
                sim.open_connection(hosts[0], hosts[1], TransportKind::Gm(GmConfig::default()));
            let c1 =
                sim.open_connection(hosts[1], hosts[0], TransportKind::Gm(GmConfig::default()));
            sim.send(c0, 4_000_000, 0);
            sim.send(c1, 4_000_000, 1);
            let mut last = SimTime::ZERO;
            while let Some(n) = sim.poll() {
                if let Notification::Delivered { at, .. } = n {
                    last = last.max(at);
                }
            }
            assert_eq!(sim.stats().packets_dropped, 0);
            last.as_secs_f64()
        };
        let duplex = run(false);
        let half = run(true);
        let ratio = half / duplex;
        assert!(ratio > 1.7, "bus should nearly halve throughput: {ratio}");
        assert!(ratio < 2.3, "bus cannot worse-than-halve: {ratio}");
    }

    #[test]
    fn control_band_overtakes_bulk_at_host_nic() {
        // Host 0 has a deep bulk backlog to host 1. An ACK that host 0 owes
        // host 2 (for data received from host 2) must not wait behind it.
        let (mut sim, hosts) = star_sim(
            3,
            LinkConfig::fast_ethernet(),
            SwitchConfig::lossless_fabric(),
            quiet_config(),
        );
        let bulk =
            sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        let incoming =
            sim.open_connection(hosts[2], hosts[0], TransportKind::Tcp(TcpConfig::default()));
        // Fill host 0's NIC with bulk (window's worth ≈ 5 ms of FastE wire).
        sim.send(bulk, 4_000_000, 1);
        // A small message arrives from host 2; host 0's ACK must cross back
        // promptly so host 2's send can complete quickly.
        sim.send(incoming, 1_000, 2);
        let mut small_done = None;
        while let Some(n) = sim.poll() {
            if let Notification::SendDone { conn, at, .. } = n {
                if conn == incoming {
                    small_done = Some(at);
                }
            }
        }
        let t = small_done.expect("small transfer completes").as_secs_f64();
        // Without the control band the ACK would sit behind ~64 KiB+ of
        // bulk at 12.5 MB/s (≥ 5 ms). With it, the exchange is sub-ms.
        assert!(t < 2e-3, "ACK startled behind bulk: {t}s");
    }

    #[test]
    fn per_port_cap_protects_other_ports() {
        // Congest one output port of a shared-buffer switch; traffic to a
        // different port must still flow without drops.
        let sw = SwitchConfig {
            shared_buffer_bytes: 1024 * 1024,
            per_port_cap_bytes: 16 * 1024,
        };
        let (mut sim, hosts) = star_sim(4, LinkConfig::gigabit_ethernet(), sw, quiet_config());
        // Hosts 0 and 1 both blast host 2 (congests the switch→h2 port).
        for i in 0..2 {
            let c =
                sim.open_connection(hosts[i], hosts[2], TransportKind::Tcp(TcpConfig::default()));
            sim.send(c, 2_000_000, i as u64);
        }
        // Host 3 receives from host 2 — reverse direction, different port.
        let clean =
            sim.open_connection(hosts[2], hosts[3], TransportKind::Tcp(TcpConfig::default()));
        sim.send(clean, 2_000_000, 9);
        let mut clean_done = None;
        while let Some(n) = sim.poll() {
            if let Notification::Delivered { conn, at, tag } = n {
                if conn == clean {
                    assert_eq!(tag, 9);
                    clean_done = Some(at);
                }
            }
        }
        let t = clean_done.unwrap().as_secs_f64();
        let ideal = 2_000_000.0 / 125e6;
        assert!(t < ideal * 1.5, "uncongested port suffered: {t} vs {ideal}");
    }

    #[test]
    fn rto_jitter_desynchronizes_timeouts() {
        // With many synchronized losers, per-flow RTO deadlines must not
        // collapse onto one instant (the livelock real kernels avoid via
        // timer granularity). We assert indirectly: heavy incast still
        // completes in bounded virtual time.
        let sw = SwitchConfig {
            shared_buffer_bytes: 48 * 1024,
            per_port_cap_bytes: 24 * 1024,
        };
        let cfg = SimConfig::default(); // jitter enabled
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(13);
        let s = b.add_switch(sw);
        for &h in &hosts {
            b.link_host(h, s, LinkConfig::gigabit_ethernet());
        }
        let mut sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
        for i in 0..12 {
            let c = sim.open_connection(
                hosts[i],
                hosts[12],
                TransportKind::Tcp(TcpConfig::default()),
            );
            sim.send(c, 1_000_000, i as u64);
        }
        sim.run_until_idle();
        assert!(sim.all_quiescent());
        assert_eq!(sim.stats().messages_delivered, 12);
        // 12 MB through one GbE port ≈ 0.1 s ideal; allow generous stall
        // room but rule out the hours-long starvation spiral.
        assert!(sim.now().as_secs_f64() < 30.0, "took {}", sim.now());
    }

    #[test]
    fn stats_track_packets() {
        let (mut sim, hosts) = star_sim(
            2,
            LinkConfig::gigabit_ethernet(),
            SwitchConfig::commodity_ethernet(),
            quiet_config(),
        );
        let conn =
            sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        sim.send(conn, 14_600, 1); // exactly 10 MSS
        sim.run_until_idle();
        assert_eq!(sim.stats().data_packets_sent, 10);
        assert_eq!(sim.stats().data_bytes_sent, 14_600);
        assert_eq!(sim.stats().ack_packets_sent, 10, "ack per segment");
    }

    #[test]
    fn recording_recorder_observes_without_perturbing() {
        use contention_obs::{EngineRecorder, MarkKind, TelemetryConfig};
        // The same incast, once bare and once instrumented: identical
        // simulation outcome, and the recorder must have seen the drops,
        // link busy time and event flow the bare run only counts.
        let sw = SwitchConfig {
            shared_buffer_bytes: 32 * 1024,
            per_port_cap_bytes: 16 * 1024,
        };
        let build = || {
            let cfg = SimConfig::default();
            let mut b = TopologyBuilder::new();
            let hosts = b.add_hosts(5);
            let s = b.add_switch(sw);
            for &h in &hosts {
                b.link_host(h, s, LinkConfig::gigabit_ethernet());
            }
            (b.build(&cfg).unwrap(), cfg, hosts)
        };
        let drive = |sim: &mut Simulator<EngineRecorder>, hosts: &[HostId]| {
            for &h in &hosts[..4] {
                let c = sim.open_connection(h, hosts[4], TransportKind::Tcp(TcpConfig::default()));
                sim.send(c, 1_000_000, h.index() as u64);
            }
            sim.run_until_idle();
        };
        let (topo, cfg, hosts) = build();
        let mut bare = Simulator::new(topo, cfg);
        for &h in &hosts[..4] {
            let c = bare.open_connection(h, hosts[4], TransportKind::Tcp(TcpConfig::default()));
            bare.send(c, 1_000_000, h.index() as u64);
        }
        bare.run_until_idle();

        let (topo, cfg, hosts) = build();
        let mut sim =
            Simulator::with_recorder(topo, cfg, EngineRecorder::new(TelemetryConfig::default()));
        drive(&mut sim, &hosts);

        assert_eq!(sim.now(), bare.now(), "recorder must not perturb time");
        assert_eq!(*sim.stats(), *bare.stats());
        let t = sim.recorder_mut().take_telemetry();
        assert_eq!(t.events, sim.stats().events_processed);
        assert!(t.pushes > 0);
        assert!(t.links.iter().any(|l| l.busy_ns > 0));
        assert_eq!(
            t.links.iter().map(|l| l.drops).sum::<u64>(),
            sim.stats().packets_dropped
        );
        assert!(
            sim.stats().packets_dropped == 0 || t.marks.iter().any(|m| m.kind == MarkKind::Drop)
        );
        assert!(t.marks.iter().any(|m| m.kind == MarkKind::Cwnd));
        assert!(t.links.iter().any(|l| !l.samples.is_empty()));
        let s = sim.stats();
        assert!(s.acks_received > 0 && s.acks_received <= s.ack_packets_sent);
    }

    #[test]
    fn jittered_and_quiet_runs_agree_on_totals() {
        // The run-compressed (jitter 0) and per-segment (jitter on) inject
        // paths must account identically: same packets, same bytes.
        let totals = |jitter: u64| {
            let cfg = SimConfig {
                injection_jitter_ns: jitter,
                ..SimConfig::default()
            };
            let (mut sim, hosts) = star_sim(
                4,
                LinkConfig::myrinet_2000(),
                SwitchConfig::lossless_fabric(),
                cfg,
            );
            for src in 0..4 {
                for dst in 0..4 {
                    if src != dst {
                        let c = sim.open_connection(
                            hosts[src],
                            hosts[dst],
                            TransportKind::Gm(GmConfig::default()),
                        );
                        sim.send(c, 300_000, (src * 4 + dst) as u64);
                    }
                }
            }
            sim.run_until_idle();
            assert!(sim.all_quiescent());
            (
                sim.stats().data_packets_sent,
                sim.stats().data_bytes_sent,
                sim.stats().messages_delivered,
            )
        };
        assert_eq!(totals(0), totals(2_000));
    }
}
