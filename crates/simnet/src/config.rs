//! Configuration types: links, switches, transports.

use serde::{Deserialize, Serialize};

/// One physical link (both directions get the same parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Raw bandwidth in bytes per second (e.g. Fast Ethernet = 12.5e6).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way latency in nanoseconds: propagation plus the downstream
    /// device's forwarding cost.
    pub latency_ns: u64,
}

impl LinkConfig {
    /// Fast Ethernet: 100 Mb/s, ~30 µs one-way (NIC + switch forwarding).
    pub fn fast_ethernet() -> Self {
        Self {
            bandwidth_bytes_per_sec: 12.5e6,
            latency_ns: 30_000,
        }
    }

    /// Gigabit Ethernet: 1 Gb/s, ~25 µs one-way.
    pub fn gigabit_ethernet() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125e6,
            latency_ns: 25_000,
        }
    }

    /// Myrinet 2000: 2 Gb/s, ~5 µs one-way (cut-through fabric).
    pub fn myrinet_2000() -> Self {
        Self {
            bandwidth_bytes_per_sec: 250e6,
            latency_ns: 5_000,
        }
    }
}

/// A switch with a shared output-buffer pool.
///
/// Real commodity Ethernet switches share a small packet memory across
/// ports; when many bursts collide the pool exhausts and arriving frames are
/// tail-dropped. That drop is the contention mechanism the paper identifies
/// (§3, citing Grove: "contention originates mostly because of network
/// overload, which forces message drops on bottleneck devices").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Shared buffer pool in bytes across all output ports.
    pub shared_buffer_bytes: u64,
    /// Maximum bytes one output-port queue may take from the shared pool
    /// (the "dynamic threshold" of shared-memory switches). Without this
    /// cap a single congested uplink queue would absorb the whole pool and
    /// blackhole every other port of the switch.
    pub per_port_cap_bytes: u64,
}

impl SwitchConfig {
    /// A typical 2006-era commodity GbE switch: a few hundred KiB of shared
    /// packet memory, each port limited to a quarter of it.
    pub fn commodity_ethernet() -> Self {
        Self {
            shared_buffer_bytes: 512 * 1024,
            per_port_cap_bytes: 128 * 1024,
        }
    }

    /// An effectively lossless fabric (Myrinet crossbar with link-level
    /// backpressure): modeled as a buffer large enough never to drop; the
    /// transport's bounded window keeps real occupancy small.
    pub fn lossless_fabric() -> Self {
        Self {
            shared_buffer_bytes: u64::MAX / 2,
            per_port_cap_bytes: u64::MAX / 2,
        }
    }
}

/// TCP-like transport parameters (LAM-MPI over TCP on Linux 2.4/2.6-era
/// defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment payload in bytes.
    pub mss: u32,
    /// Receiver window / socket buffer in bytes (caps the congestion window).
    pub window_bytes: u64,
    /// Initial congestion window in segments.
    pub initial_cwnd_segments: u32,
    /// Minimum retransmission timeout in nanoseconds (Linux: 200 ms).
    pub min_rto_ns: u64,
    /// Maximum retransmission timeout in nanoseconds.
    pub max_rto_ns: u64,
    /// Initial RTO before any RTT sample, in nanoseconds.
    pub initial_rto_ns: u64,
    /// Number of duplicate ACKs triggering fast retransmit.
    pub dupack_threshold: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            mss: 1460,
            window_bytes: 256 * 1024,
            initial_cwnd_segments: 2,
            min_rto_ns: 200_000_000, // 200 ms
            max_rto_ns: 60_000_000_000,
            initial_rto_ns: 1_000_000_000, // 1 s (RFC 2988 era: 3 s; Linux: 1 s)
            dupack_threshold: 3,
        }
    }
}

/// GM-like transport parameters (Myrinet): reliable in hardware, no
/// congestion control, fixed window, larger MTU, no retransmission timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmConfig {
    /// Maximum packet payload (gm uses up to 4 KiB frames).
    pub mtu: u32,
    /// Fixed send window in bytes (pinned receive buffers).
    pub window_bytes: u64,
}

impl Default for GmConfig {
    fn default() -> Self {
        Self {
            mtu: 4096,
            window_bytes: 1024 * 1024,
        }
    }
}

/// Which transport a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportKind {
    /// Lossy network, TCP-like loss recovery and congestion control.
    Tcp(TcpConfig),
    /// Lossless network, fixed-window reliable transport.
    Gm(GmConfig),
}

impl TransportKind {
    /// Segment payload size.
    pub fn mtu(&self) -> u32 {
        match self {
            TransportKind::Tcp(c) => c.mss,
            TransportKind::Gm(c) => c.mtu,
        }
    }

    /// Window (max unacknowledged bytes in flight).
    pub fn window_bytes(&self) -> u64 {
        match self {
            TransportKind::Tcp(c) => c.window_bytes,
            TransportKind::Gm(c) => c.window_bytes,
        }
    }
}

/// Simulator-global knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Per-packet header overhead on the wire (Ethernet + IP + TCP ≈ 66 B
    /// with preamble and inter-frame gap amortized).
    pub header_bytes: u32,
    /// Wire size of a pure ACK.
    pub ack_bytes: u32,
    /// Uniform per-packet injection jitter upper bound in nanoseconds;
    /// breaks artificial phase-locking between symmetric senders.
    pub injection_jitter_ns: u64,
    /// Uniform jitter added to every retransmission-timer deadline,
    /// nanoseconds. Real kernels quantize RTO to timer ticks and fire it
    /// from softirq context, so two flows never time out in lockstep; with
    /// zero jitter here, simultaneous losers retransmit in perfect sync,
    /// collide again and spiral into synchronized exponential backoff — a
    /// livelock real networks do not exhibit.
    pub rto_jitter_ns: u64,
    /// RNG seed for jitter.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            header_bytes: 66,
            ack_bytes: 66,
            injection_jitter_ns: 2_000,
            rto_jitter_ns: 30_000_000,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_rates() {
        assert_eq!(LinkConfig::fast_ethernet().bandwidth_bytes_per_sec, 12.5e6);
        assert_eq!(
            LinkConfig::gigabit_ethernet().bandwidth_bytes_per_sec,
            125e6
        );
        assert_eq!(LinkConfig::myrinet_2000().bandwidth_bytes_per_sec, 250e6);
    }

    #[test]
    fn transport_accessors_dispatch() {
        let tcp = TransportKind::Tcp(TcpConfig::default());
        assert_eq!(tcp.mtu(), 1460);
        assert_eq!(tcp.window_bytes(), 256 * 1024);
        let gm = TransportKind::Gm(GmConfig::default());
        assert_eq!(gm.mtu(), 4096);
        assert_eq!(gm.window_bytes(), 1024 * 1024);
    }

    #[test]
    fn lossless_fabric_never_realistically_fills() {
        let c = SwitchConfig::lossless_fabric();
        assert!(c.shared_buffer_bytes > 1u64 << 60);
    }
}
