//! Packets and application-level notifications.

use crate::ids::{ConnId, RouteId};
use crate::time::SimTime;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment: bytes `[seq, seq + len)` of the connection's stream.
    Data,
    /// A cumulative acknowledgement up to byte `seq` (len is 0).
    Ack,
}

/// A packet in flight. Packets always belong to a connection and follow
/// either its forward route (data) or reverse route (ACKs).
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Owning connection.
    pub conn: ConnId,
    /// Interned route the packet follows (the connection's forward route
    /// for data, reverse route for ACKs), resolved once at injection.
    pub route: RouteId,
    /// Data: first stream byte carried. Ack: cumulative ack offset.
    pub seq: u64,
    /// Payload length in bytes (0 for ACKs).
    pub len: u32,
    /// Data or ACK (ACKs travel the reverse route).
    pub kind: PacketKind,
    /// Next hop index on the route (incremented as the packet advances).
    pub hop: u16,
    /// Whether this data segment is a retransmission (Karn's rule).
    pub retransmit: bool,
}

impl Packet {
    /// Filler for pooled buffers; never observed by the simulation.
    pub(crate) const PLACEHOLDER: Packet = Packet {
        conn: ConnId(0),
        route: RouteId(0),
        seq: 0,
        len: 0,
        kind: PacketKind::Data,
        hop: 0,
        retransmit: false,
    };
}

/// Events surfaced to the embedding application (the MPI layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Notification {
    /// A whole application message has been received, in order, at the
    /// destination host.
    Delivered {
        /// Connection the message traveled on.
        conn: ConnId,
        /// Application tag supplied at `send` time.
        tag: u64,
        /// Delivery completion time.
        at: SimTime,
    },
    /// Every byte of an application message has been acknowledged back to
    /// the sender (the send is complete in the blocking-MPI sense).
    SendDone {
        /// Connection the message traveled on.
        conn: ConnId,
        /// Application tag supplied at `send` time.
        tag: u64,
        /// Acknowledgement completion time.
        at: SimTime,
    },
    /// A wakeup previously scheduled by the application.
    Wakeup {
        /// Caller-chosen token identifying the wakeup.
        token: u64,
        /// Fire time.
        at: SimTime,
    },
}

impl Notification {
    /// The simulation time attached to the notification.
    pub fn time(&self) -> SimTime {
        match *self {
            Notification::Delivered { at, .. }
            | Notification::SendDone { at, .. }
            | Notification::Wakeup { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notification_time_accessor() {
        let n = Notification::Wakeup {
            token: 7,
            at: SimTime(42),
        };
        assert_eq!(n.time(), SimTime(42));
        let d = Notification::Delivered {
            conn: ConnId::from_index(0),
            tag: 1,
            at: SimTime(9),
        };
        assert_eq!(d.time(), SimTime(9));
    }
}
