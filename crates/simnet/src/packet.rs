//! Packets — packed and unpacked views — and application-level
//! notifications.
//!
//! # Why two representations
//!
//! The engine moves every in-flight packet through the event queue, the
//! transmitter bands and the serializer slots many times per hop, so the
//! stored form is a 16-byte [`PackedPacket`]: the stream offset stays a
//! full `u64`, while the owning connection and travel direction compress
//! into one *flow word* and `len`/`hop`/`retransmit` share one bitfield
//! word. [`Packet`] is the unpacked view — ergonomic named fields for
//! tests, diagnostics and anything off the hot path — connected to the
//! packed form by the lossless [`Packet::pack`]/[`PackedPacket::unpack`]
//! pair.
//!
//! A packet does not carry its route. The route is a pure function of
//! `(conn, kind)` — data follows the connection's forward route, ACKs the
//! reverse route — so the engine resolves it through a flat
//! `flow → RouteId` table indexed by [`PackedPacket::flow_index`], and the
//! packet itself stays at 16 bytes.

use crate::ids::ConnId;
use crate::time::SimTime;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment: bytes `[seq, seq + len)` of the connection's stream.
    Data,
    /// A cumulative acknowledgement up to byte `seq` (len is 0).
    Ack,
}

/// Payload length field width in `PackedPacket::meta`: 22 bits, so any
/// segment up to 4 MiB − 1 — far beyond every transport MTU — packs
/// losslessly.
pub const LEN_BITS: u32 = 22;
/// Hop field width: 9 bits, 512 hops — no sane fabric routes longer.
pub const HOP_BITS: u32 = 9;
/// Maximum packable payload length.
pub const MAX_LEN: u32 = (1 << LEN_BITS) - 1;
/// Maximum packable hop index.
pub const MAX_HOP: u16 = (1 << HOP_BITS) - 1;

const HOP_SHIFT: u32 = LEN_BITS;
const RETX_SHIFT: u32 = LEN_BITS + HOP_BITS;
const HOP_MASK: u32 = (MAX_HOP as u32) << HOP_SHIFT;

/// A packet in flight, in the engine's 16-byte storage layout.
///
/// * `seq` — full-width stream offset (data: first byte carried; ACK:
///   cumulative ack offset).
/// * `flow` — `conn·2 + direction`: the owning connection and whether the
///   packet travels the forward (data, even) or reverse (ACK, odd) route.
/// * `meta` — `retransmit:1 | hop:9 | len:22` bitfield.
///
/// The `const` assertion below makes any accidental regrowth (a new field,
/// a widened one) a compile error instead of a silent hot-loop slowdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedPacket {
    /// Data: first stream byte carried. Ack: cumulative ack offset.
    pub seq: u64,
    flow: u32,
    meta: u32,
}

const _: () = assert!(
    std::mem::size_of::<PackedPacket>() == 16,
    "PackedPacket must stay 16 bytes: bands, slab slots and event traffic scale with it"
);

impl PackedPacket {
    /// Filler for pooled buffers; never observed by the simulation.
    pub(crate) const PLACEHOLDER: PackedPacket = PackedPacket {
        seq: 0,
        flow: 0,
        meta: 0,
    };

    /// Packs a fresh data segment at hop 0.
    ///
    /// # Panics
    /// Panics if `len` exceeds [`MAX_LEN`] (no transport MTU comes close).
    pub fn data(conn: ConnId, seq: u64, len: u32, retransmit: bool) -> Self {
        assert!(
            len <= MAX_LEN,
            "segment length {len} overflows the bitfield"
        );
        Self {
            seq,
            flow: conn.index() as u32 * 2,
            meta: len | (retransmit as u32) << RETX_SHIFT,
        }
    }

    /// Packs a fresh cumulative ACK (len 0) at hop 0.
    pub fn ack(conn: ConnId, ack: u64) -> Self {
        Self {
            seq: ack,
            flow: conn.index() as u32 * 2 + 1,
            meta: 0,
        }
    }

    /// Owning connection.
    #[inline]
    pub fn conn(self) -> ConnId {
        ConnId::from_index((self.flow >> 1) as usize)
    }

    /// Index into the engine's `flow → route` table: `conn·2` for data
    /// (forward route), `conn·2 + 1` for ACKs (reverse route).
    #[inline]
    pub fn flow_index(self) -> usize {
        self.flow as usize
    }

    /// Data or ACK. Encoded as the flow word's parity: data rides the
    /// even (forward) flow, ACKs the odd (reverse) flow.
    #[inline]
    pub fn kind(self) -> PacketKind {
        if self.flow & 1 == 0 {
            PacketKind::Data
        } else {
            PacketKind::Ack
        }
    }

    /// Payload length in bytes (0 for ACKs). An "empty" packet is not a
    /// meaningful notion here — ACKs always have length 0 — hence no
    /// `is_empty` counterpart.
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u32 {
        self.meta & MAX_LEN
    }

    /// Next hop index on the route.
    #[inline]
    pub fn hop(self) -> u16 {
        ((self.meta & HOP_MASK) >> HOP_SHIFT) as u16
    }

    /// Whether this data segment is a retransmission (Karn's rule).
    #[inline]
    pub fn retransmit(self) -> bool {
        self.meta >> RETX_SHIFT != 0
    }

    /// Advances the packet one hop.
    ///
    /// # Panics
    /// Debug-panics past [`MAX_HOP`]; release wraps into the adjacent
    /// field, which the topology builder's route lengths make unreachable.
    #[inline]
    pub fn advance_hop(&mut self) {
        debug_assert!(self.hop() < MAX_HOP, "route longer than {MAX_HOP} hops");
        self.meta += 1 << HOP_SHIFT;
    }

    /// The unpacked view (diagnostics, tests, property checks).
    pub fn unpack(self) -> Packet {
        Packet {
            conn: self.conn(),
            seq: self.seq,
            len: self.len(),
            kind: self.kind(),
            hop: self.hop(),
            retransmit: self.retransmit(),
        }
    }
}

/// The unpacked view of a [`PackedPacket`]: one named field per logical
/// component. Everything the engine stores or moves uses the packed form;
/// this view exists for construction off the hot path and for asserting
/// the pack/unpack round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Owning connection.
    pub conn: ConnId,
    /// Data: first stream byte carried. Ack: cumulative ack offset.
    pub seq: u64,
    /// Payload length in bytes (0 for ACKs).
    pub len: u32,
    /// Data or ACK (ACKs travel the reverse route).
    pub kind: PacketKind,
    /// Next hop index on the route (incremented as the packet advances).
    pub hop: u16,
    /// Whether this data segment is a retransmission (Karn's rule).
    pub retransmit: bool,
}

impl Packet {
    /// Packs into the 16-byte storage layout. Lossless for every packet
    /// within the documented field ranges ([`MAX_LEN`], [`MAX_HOP`], ACKs
    /// carry `len == 0` and `retransmit == false`).
    ///
    /// # Panics
    /// Panics if `len` or `hop` overflow their bitfields, or if an ACK
    /// carries a payload or a retransmit flag (unrepresentable: both are
    /// meaningful for data only).
    pub fn pack(self) -> PackedPacket {
        assert!(self.len <= MAX_LEN, "len {} overflows", self.len);
        assert!(self.hop <= MAX_HOP, "hop {} overflows", self.hop);
        if self.kind == PacketKind::Ack {
            assert!(
                self.len == 0 && !self.retransmit,
                "ACKs carry no payload and are never retransmissions"
            );
        }
        let mut p = match self.kind {
            PacketKind::Data => PackedPacket::data(self.conn, self.seq, self.len, self.retransmit),
            PacketKind::Ack => PackedPacket::ack(self.conn, self.seq),
        };
        p.meta |= (self.hop as u32) << HOP_SHIFT;
        p
    }
}

/// Events surfaced to the embedding application (the MPI layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Notification {
    /// A whole application message has been received, in order, at the
    /// destination host.
    Delivered {
        /// Connection the message traveled on.
        conn: ConnId,
        /// Application tag supplied at `send` time.
        tag: u64,
        /// Delivery completion time.
        at: SimTime,
    },
    /// Every byte of an application message has been acknowledged back to
    /// the sender (the send is complete in the blocking-MPI sense).
    SendDone {
        /// Connection the message traveled on.
        conn: ConnId,
        /// Application tag supplied at `send` time.
        tag: u64,
        /// Acknowledgement completion time.
        at: SimTime,
    },
    /// A wakeup previously scheduled by the application.
    Wakeup {
        /// Caller-chosen token identifying the wakeup.
        token: u64,
        /// Fire time.
        at: SimTime,
    },
}

impl Notification {
    /// The simulation time attached to the notification.
    pub fn time(&self) -> SimTime {
        match *self {
            Notification::Delivered { at, .. }
            | Notification::SendDone { at, .. }
            | Notification::Wakeup { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notification_time_accessor() {
        let n = Notification::Wakeup {
            token: 7,
            at: SimTime(42),
        };
        assert_eq!(n.time(), SimTime(42));
        let d = Notification::Delivered {
            conn: ConnId::from_index(0),
            tag: 1,
            at: SimTime(9),
        };
        assert_eq!(d.time(), SimTime(9));
    }

    #[test]
    fn data_accessors_roundtrip() {
        let mut p = PackedPacket::data(ConnId::from_index(77), 123_456_789, 1460, true);
        assert_eq!(p.conn().index(), 77);
        assert_eq!(p.flow_index(), 154);
        assert_eq!(p.kind(), PacketKind::Data);
        assert_eq!(p.len(), 1460);
        assert_eq!(p.hop(), 0);
        assert!(p.retransmit());
        p.advance_hop();
        p.advance_hop();
        assert_eq!(p.hop(), 2);
        assert_eq!(p.len(), 1460, "hop bump must not leak into len");
        assert!(p.retransmit(), "hop bump must not leak into retransmit");
    }

    #[test]
    fn ack_accessors_roundtrip() {
        let p = PackedPacket::ack(ConnId::from_index(3), u64::MAX);
        assert_eq!(p.conn().index(), 3);
        assert_eq!(p.flow_index(), 7);
        assert_eq!(p.kind(), PacketKind::Ack);
        assert_eq!(p.len(), 0);
        assert_eq!(p.seq, u64::MAX);
        assert!(!p.retransmit());
    }

    #[test]
    fn pack_unpack_roundtrips_extremes() {
        for pkt in [
            Packet {
                conn: ConnId::from_index(0),
                seq: 0,
                len: 0,
                kind: PacketKind::Data,
                hop: 0,
                retransmit: false,
            },
            Packet {
                conn: ConnId::from_index((u32::MAX / 2 - 1) as usize),
                seq: u64::MAX,
                len: MAX_LEN,
                kind: PacketKind::Data,
                hop: MAX_HOP,
                retransmit: true,
            },
            Packet {
                conn: ConnId::from_index(9),
                seq: 1 << 40,
                len: 0,
                kind: PacketKind::Ack,
                hop: 5,
                retransmit: false,
            },
        ] {
            assert_eq!(pkt.pack().unpack(), pkt);
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_len_is_rejected() {
        let _ = PackedPacket::data(ConnId::from_index(0), 0, MAX_LEN + 1, false);
    }
}
