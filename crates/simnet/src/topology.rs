//! Topology construction and static routing.
//!
//! A topology is a bipartite-ish graph of hosts and switches joined by
//! full-duplex links. Each link direction becomes one *transmitter*
//! ([`TxParams`]): the serialization point with a queue charged against a
//! buffer pool (the sending host's NIC buffer, or the sending switch's
//! shared memory).
//!
//! Routing is computed once at build time: shortest path by hop count.
//! Equal-cost choices are resolved by the builder's [`RoutingPolicy`]:
//! deterministic per-flow ECMP hashing by default (parallel uplinks and
//! fat-tree cores load-balance the way switch hashing would), or
//! dimension-ordered (e-cube) selection for mesh/torus fabrics whose
//! generators supply per-switch coordinates.

use crate::config::{LinkConfig, SimConfig, SwitchConfig};
use crate::ids::{HostId, PoolId, RouteId, SwitchId, TxId};

/// How the builder resolves equal-cost next-hop choices when several
/// shortest paths exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Deterministic per-flow hashing over equal-cost next hops — the
    /// classic ECMP spread (the default, and the only sane choice for
    /// trees and fat-trees).
    #[default]
    EcmpShortest,
    /// Dimension-ordered (e-cube) routing: among equal-cost next hops,
    /// correct the lowest-indexed mismatched coordinate dimension first.
    /// Requires [`TopologyBuilder::set_switch_coords`]; switches without
    /// coordinates (and host-side hops) fall back to ECMP hashing. On an
    /// even-sized ring's exact midpoint both wrap directions are minimal
    /// and the tie resolves to link-creation order.
    DimensionOrdered,
}

/// Where a transmitter's packets land after the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Delivered to a host's protocol stack.
    Host(HostId),
    /// Forwarded by a switch.
    Switch(SwitchId),
    /// Forwarded by a host's internal I/O bus stage.
    Bus(HostId),
}

/// Static parameters of one transmitter (one direction of one link).
#[derive(Debug, Clone, Copy)]
pub struct TxParams {
    /// Serialization cost: nanoseconds per byte (1e9 / bandwidth).
    pub ns_per_byte: f64,
    /// One-way latency added after serialization, in nanoseconds.
    pub latency_ns: u64,
    /// Buffer pool this transmitter's queue is charged against.
    pub pool: PoolId,
    /// Cap on this transmitter's own queue within the pool (per-port
    /// dynamic threshold on switches; effectively unbounded on hosts).
    pub port_cap_bytes: u64,
    /// Serialization slot. Normally private to the transmitter, but a
    /// host's I/O-bus transmitters share one slot in both directions,
    /// modeling a DMA engine that cannot overlap send and receive at full
    /// rate (the practical violation of 1-port *full-duplex* on Myrinet
    /// hosts).
    pub serializer: u32,
    /// Receiving end of the wire.
    pub to: Endpoint,
}

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A host has no link at all.
    DisconnectedHost(HostId),
    /// No path exists between two hosts.
    Unreachable(HostId, HostId),
    /// A link references a host or switch id that was never created.
    UnknownNode,
    /// The topology has no hosts.
    Empty,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DisconnectedHost(h) => write!(f, "host {h} has no link"),
            TopologyError::Unreachable(a, b) => write!(f, "no path between {a} and {b}"),
            TopologyError::UnknownNode => write!(f, "link references an unknown node"),
            TopologyError::Empty => write!(f, "topology has no hosts"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One interned route: a span of the shared route arena plus the host the
/// route terminates at.
#[derive(Debug, Clone, Copy)]
struct RouteSpan {
    start: u32,
    len: u32,
    dst: HostId,
}

/// The built network fabric handed to the engine.
///
/// Routes are *interned*: every host-pair path lives in one flat `TxId`
/// arena and is addressed by a [`RouteId`]. Packets carry the handle, so
/// the per-hop cost in the engine is a single slice index — no `Arc`
/// clone, no `src·n_hosts + dst` table lookup.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of hosts.
    pub n_hosts: usize,
    /// Static transmitter parameters, indexed by [`TxId`].
    pub tx_params: Vec<TxParams>,
    /// Buffer-pool capacities in bytes, indexed by [`PoolId`].
    pub pool_capacity: Vec<u64>,
    /// Number of serialization slots (see [`TxParams::serializer`]).
    pub n_serializers: usize,
    /// All routes' hops, back to back.
    route_arena: Vec<TxId>,
    /// Arena spans, indexed by [`RouteId`].
    route_spans: Vec<RouteSpan>,
    /// `src·n_hosts + dst` → route id (`u32::MAX` on the diagonal).
    route_ids: Vec<u32>,
}

impl Topology {
    /// The interned handle of the route from `src` to `dst`. Resolved once
    /// when a connection opens; packets then carry the handle.
    ///
    /// # Panics
    /// Panics if `src == dst`; self-routes do not exist.
    pub fn route_id(&self, src: HostId, dst: HostId) -> RouteId {
        assert_ne!(src, dst, "no route from a host to itself");
        RouteId::from_index(self.route_ids[src.index() * self.n_hosts + dst.index()] as usize)
    }

    /// The hops of an interned route.
    #[inline]
    pub fn route_slice(&self, id: RouteId) -> &[TxId] {
        let span = self.route_spans[id.index()];
        &self.route_arena[span.start as usize..(span.start + span.len) as usize]
    }

    /// The host an interned route terminates at.
    #[inline]
    pub fn route_dst(&self, id: RouteId) -> HostId {
        self.route_spans[id.index()].dst
    }

    /// First transmitter of an interned route (the injection point).
    #[inline]
    pub fn first_hop(&self, id: RouteId) -> TxId {
        self.route_arena[self.route_spans[id.index()].start as usize]
    }

    /// The forward route (sequence of transmitters) from `src` to `dst`.
    ///
    /// # Panics
    /// Panics if `src == dst`; self-routes do not exist.
    pub fn route(&self, src: HostId, dst: HostId) -> &[TxId] {
        self.route_slice(self.route_id(src, dst))
    }

    /// Number of hops (transmitters) between two hosts.
    pub fn hop_count(&self, src: HostId, dst: HostId) -> usize {
        self.route(src, dst).len()
    }
}

#[derive(Debug, Clone, Copy)]
enum Node {
    Host(HostId),
    Switch(SwitchId),
    Bus(usize),
}

struct LinkSpec {
    a: Node,
    b: Node,
    config: LinkConfig,
}

/// Builder for [`Topology`].
pub struct TopologyBuilder {
    hosts: usize,
    switches: Vec<SwitchConfig>,
    links: Vec<LinkSpec>,
    host_bus: Option<(f64, u64)>,
    routing: RoutingPolicy,
    /// Per-switch coordinates (parallel to `switches`) for
    /// dimension-ordered routing; empty unless a mesh/torus generator
    /// supplied them.
    switch_coords: Vec<[u16; 3]>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            hosts: 0,
            switches: Vec::new(),
            links: Vec::new(),
            host_bus: None,
            routing: RoutingPolicy::default(),
            switch_coords: Vec::new(),
        }
    }

    /// Selects the equal-cost tie-breaking policy (default: ECMP hashing).
    pub fn set_routing(&mut self, policy: RoutingPolicy) {
        self.routing = policy;
    }

    /// Supplies one `[x, y, z]` coordinate per switch (creation order) for
    /// [`RoutingPolicy::DimensionOrdered`]. Unused dimensions stay 0.
    ///
    /// # Panics
    /// Panics if the coordinate count does not match the switch count at
    /// build time.
    pub fn set_switch_coords(&mut self, coords: Vec<[u16; 3]>) {
        self.switch_coords = coords;
    }

    /// Inserts a shared-serializer I/O bus stage between every host and its
    /// NIC: send and receive traffic of a host contend for one serializer
    /// of `bandwidth_bytes_per_sec`, adding `latency_ns` per traversal.
    /// Models a host DMA engine that cannot overlap both directions at full
    /// rate (Myrinet/gm-era hosts).
    pub fn host_io_bus(&mut self, bandwidth_bytes_per_sec: f64, latency_ns: u64) {
        assert!(bandwidth_bytes_per_sec > 0.0);
        self.host_bus = Some((bandwidth_bytes_per_sec, latency_ns));
    }

    /// Adds one host and returns its id.
    pub fn add_host(&mut self) -> HostId {
        let id = HostId::from_index(self.hosts);
        self.hosts += 1;
        id
    }

    /// Adds `count` hosts and returns their ids.
    pub fn add_hosts(&mut self, count: usize) -> Vec<HostId> {
        (0..count).map(|_| self.add_host()).collect()
    }

    /// Adds a switch with the given buffering.
    pub fn add_switch(&mut self, config: SwitchConfig) -> SwitchId {
        let id = SwitchId::from_index(self.switches.len());
        self.switches.push(config);
        id
    }

    /// Connects a host to a switch with a full-duplex link.
    pub fn link_host(&mut self, host: HostId, switch: SwitchId, config: LinkConfig) {
        self.links.push(LinkSpec {
            a: Node::Host(host),
            b: Node::Switch(switch),
            config,
        });
    }

    /// Connects two switches. Call repeatedly for parallel uplinks; flows
    /// are spread across them deterministically.
    pub fn link_switches(&mut self, a: SwitchId, b: SwitchId, config: LinkConfig) {
        self.links.push(LinkSpec {
            a: Node::Switch(a),
            b: Node::Switch(b),
            config,
        });
    }

    /// Builds the fabric: creates transmitters and pools, verifies
    /// connectivity, and computes all host-pair routes.
    pub fn build(self, _sim: &SimConfig) -> Result<Topology, TopologyError> {
        if self.hosts == 0 {
            return Err(TopologyError::Empty);
        }
        let n_hosts = self.hosts;
        let n_switches = self.switches.len();
        let has_bus = self.host_bus.is_some();
        let n_bus = if has_bus { n_hosts } else { 0 };
        let n_nodes = n_hosts + n_switches + n_bus;
        let node_idx = |n: Node| -> usize {
            match n {
                Node::Host(h) => h.index(),
                Node::Switch(s) => n_hosts + s.index(),
                Node::Bus(h) => n_hosts + n_switches + h,
            }
        };
        // Pool ownership: a bus stage's queues live in its host.
        let pool_of = |n: Node| -> usize {
            match n {
                Node::Host(h) => h.index(),
                Node::Switch(s) => n_hosts + s.index(),
                Node::Bus(h) => h,
            }
        };
        let port_cap_of = |n: Node| -> u64 {
            match n {
                Node::Switch(s) => self.switches[s.index()].per_port_cap_bytes,
                Node::Host(_) | Node::Bus(_) => u64::MAX / 2,
            }
        };

        // Pools: one per host NIC, then one per switch. Host NIC queues are
        // unbounded: a sender self-paces through its transport window, so
        // its own NIC never tail-drops; contention loss happens at switches.
        let mut pool_capacity = Vec::with_capacity(n_hosts + n_switches);
        for _ in 0..n_hosts {
            pool_capacity.push(u64::MAX / 2);
        }
        for sw in &self.switches {
            pool_capacity.push(sw.shared_buffer_bytes);
        }

        // With an I/O bus, every declared host↔switch link attaches to the
        // host's bus node instead, and one shared-serializer bus link joins
        // host to bus node.
        struct Edge {
            a: Node,
            b: Node,
            config: LinkConfig,
            shared_serializer: bool,
        }
        let mut edges: Vec<Edge> = Vec::with_capacity(self.links.len() + n_bus);
        for link in &self.links {
            let remap = |n: Node| match n {
                Node::Host(h) if has_bus => Node::Bus(h.index()),
                other => other,
            };
            edges.push(Edge {
                a: remap(link.a),
                b: remap(link.b),
                config: link.config,
                shared_serializer: false,
            });
        }
        if let Some((bus_bw, bus_latency)) = self.host_bus {
            for h in 0..n_hosts {
                edges.push(Edge {
                    a: Node::Host(HostId::from_index(h)),
                    b: Node::Bus(h),
                    config: LinkConfig {
                        bandwidth_bytes_per_sec: bus_bw,
                        latency_ns: bus_latency,
                    },
                    shared_serializer: true,
                });
            }
        }

        // Transmitters + adjacency.
        let mut tx_params: Vec<TxParams> = Vec::with_capacity(edges.len() * 2);
        let mut adjacency: Vec<Vec<(TxId, usize)>> = vec![Vec::new(); n_nodes];
        for edge in &edges {
            let (ai, bi) = (node_idx(edge.a), node_idx(edge.b));
            if ai >= n_nodes || bi >= n_nodes {
                return Err(TopologyError::UnknownNode);
            }
            let endpoint = |n: Node| match n {
                Node::Host(h) => Endpoint::Host(h),
                Node::Switch(s) => Endpoint::Switch(s),
                Node::Bus(h) => Endpoint::Bus(HostId::from_index(h)),
            };
            let ns_per_byte = 1e9 / edge.config.bandwidth_bytes_per_sec;
            let first_tx_index = tx_params.len() as u32;
            for (k, (from, to_node)) in [(edge.a, edge.b), (edge.b, edge.a)].into_iter().enumerate()
            {
                let (from_i, to_i) = (node_idx(from), node_idx(to_node));
                let tx = TxId::from_index(tx_params.len());
                let serializer = if edge.shared_serializer && k == 1 {
                    first_tx_index
                } else {
                    tx_params.len() as u32
                };
                tx_params.push(TxParams {
                    ns_per_byte,
                    latency_ns: edge.config.latency_ns,
                    pool: PoolId::from_index(pool_of(from)),
                    port_cap_bytes: port_cap_of(from),
                    serializer,
                    to: endpoint(to_node),
                });
                adjacency[from_i].push((tx, to_i));
            }
        }
        let n_serializers = tx_params.len();

        for (h, adj) in adjacency.iter().take(n_hosts).enumerate() {
            if adj.is_empty() {
                return Err(TopologyError::DisconnectedHost(HostId::from_index(h)));
            }
        }

        if self.routing == RoutingPolicy::DimensionOrdered || !self.switch_coords.is_empty() {
            assert_eq!(
                self.switch_coords.len(),
                n_switches,
                "dimension-ordered routing needs one coordinate per switch"
            );
        }
        // Coordinate of a node, if it is a switch with one.
        let coord_of = |n: usize| -> Option<[u16; 3]> {
            (n >= n_hosts && n < n_hosts + n_switches)
                .then(|| self.switch_coords.get(n - n_hosts).copied())
                .flatten()
        };

        // BFS distance-to-destination per destination host, then greedy
        // next-hop walks with hashed tie-breaking. Routes intern into one
        // flat arena so the engine can address them by `RouteId`.
        let mut route_arena: Vec<TxId> = Vec::new();
        let mut route_spans: Vec<RouteSpan> = Vec::with_capacity(n_hosts * (n_hosts - 1));
        let mut route_ids: Vec<u32> = vec![u32::MAX; n_hosts * n_hosts];
        let mut dist = vec![u32::MAX; n_nodes];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..n_hosts {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dst] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &(_, v) in &adjacency[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for src in 0..n_hosts {
                if src == dst {
                    continue;
                }
                if dist[src] == u32::MAX {
                    return Err(TopologyError::Unreachable(
                        HostId::from_index(src),
                        HostId::from_index(dst),
                    ));
                }
                let start = route_arena.len() as u32;
                let mut at = src;
                while at != dst {
                    let candidates: Vec<&(TxId, usize)> = adjacency[at]
                        .iter()
                        .filter(|&&(_, v)| dist[v] + 1 == dist[at])
                        .collect();
                    debug_assert!(!candidates.is_empty(), "BFS guarantees progress");
                    let dor_pick = || -> Option<&(TxId, usize)> {
                        if self.routing != RoutingPolicy::DimensionOrdered {
                            return None;
                        }
                        let a = coord_of(at)?;
                        // Correct the lowest mismatched dimension first
                        // (BFS already restricted candidates to minimal
                        // moves); creation order breaks exact-midpoint
                        // wrap ties. Hops off the coordinate grid (the
                        // final descent into a host) sort after every
                        // real dimension.
                        candidates.iter().copied().min_by_key(|&&(tx, v)| {
                            let dim = match coord_of(v) {
                                Some(c) => (0..3).find(|&d| a[d] != c[d]).unwrap_or(3),
                                None => 3,
                            };
                            (dim, tx.index())
                        })
                    };
                    let &(tx, next) = match dor_pick() {
                        Some(pick) => pick,
                        None => {
                            // ECMP-style deterministic spreading over
                            // equal-cost next hops and parallel links.
                            let h = fxhash(src as u64, dst as u64, at as u64);
                            candidates[(h % candidates.len() as u64) as usize]
                        }
                    };
                    route_arena.push(tx);
                    at = next;
                }
                route_ids[src * n_hosts + dst] = route_spans.len() as u32;
                route_spans.push(RouteSpan {
                    start,
                    len: route_arena.len() as u32 - start,
                    dst: HostId::from_index(dst),
                });
            }
        }

        Ok(Topology {
            n_hosts,
            tx_params,
            pool_capacity,
            n_serializers,
            route_arena,
            route_spans,
            route_ids,
        })
    }
}

/// Small deterministic mixing hash (FNV/xorshift blend) for ECMP decisions.
fn fxhash(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(c.wrapping_mul(0x1656_67B1_9E37_79F9));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> (Topology, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        (b.build(&SimConfig::default()).unwrap(), hosts)
    }

    #[test]
    fn star_routes_are_two_hops() {
        let (topo, hosts) = star(4);
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    assert_eq!(topo.hop_count(a, b), 2, "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn first_hop_is_charged_to_source_nic_pool() {
        let (topo, hosts) = star(3);
        let route = topo.route(hosts[0], hosts[2]);
        let first = topo.tx_params[route[0].index()];
        assert_eq!(first.pool.index(), hosts[0].index());
        let second = topo.tx_params[route[1].index()];
        // Switch pool comes after the host pools.
        assert_eq!(second.pool.index(), 3);
        assert_eq!(second.to, Endpoint::Host(hosts[2]));
    }

    #[test]
    fn two_tier_tree_routes_through_core() {
        // Two edge switches with 10 hosts each, joined via a core switch.
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(20);
        let edge0 = b.add_switch(SwitchConfig::commodity_ethernet());
        let edge1 = b.add_switch(SwitchConfig::commodity_ethernet());
        let core = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts[..10] {
            b.link_host(h, edge0, LinkConfig::fast_ethernet());
        }
        for &h in &hosts[10..] {
            b.link_host(h, edge1, LinkConfig::fast_ethernet());
        }
        b.link_switches(edge0, core, LinkConfig::gigabit_ethernet());
        b.link_switches(edge1, core, LinkConfig::gigabit_ethernet());
        let topo = b.build(&SimConfig::default()).unwrap();
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 2); // same edge
        assert_eq!(topo.hop_count(hosts[0], hosts[15]), 4); // via core
    }

    #[test]
    fn parallel_uplinks_are_spread() {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(8);
        let edge0 = b.add_switch(SwitchConfig::commodity_ethernet());
        let edge1 = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts[..4] {
            b.link_host(h, edge0, LinkConfig::gigabit_ethernet());
        }
        for &h in &hosts[4..] {
            b.link_host(h, edge1, LinkConfig::gigabit_ethernet());
        }
        b.link_switches(edge0, edge1, LinkConfig::gigabit_ethernet());
        b.link_switches(edge0, edge1, LinkConfig::gigabit_ethernet());
        let topo = b.build(&SimConfig::default()).unwrap();
        // Cross-tree flows should not all use the same uplink transmitter.
        let used: std::collections::HashSet<TxId> = hosts[..4]
            .iter()
            .flat_map(|&a| hosts[4..].iter().map(move |&b| (a, b)))
            .map(|(a, b)| topo.route(a, b)[1])
            .collect();
        assert!(used.len() >= 2, "ECMP should spread across parallel links");
    }

    #[test]
    fn disconnected_host_is_an_error() {
        let mut b = TopologyBuilder::new();
        let _lonely = b.add_host();
        assert_eq!(
            b.build(&SimConfig::default()).unwrap_err(),
            TopologyError::DisconnectedHost(HostId::from_index(0))
        );
    }

    #[test]
    fn partitioned_fabric_is_an_error() {
        let mut b = TopologyBuilder::new();
        let h = b.add_hosts(2);
        let s0 = b.add_switch(SwitchConfig::commodity_ethernet());
        let s1 = b.add_switch(SwitchConfig::commodity_ethernet());
        b.link_host(h[0], s0, LinkConfig::gigabit_ethernet());
        b.link_host(h[1], s1, LinkConfig::gigabit_ethernet());
        assert!(matches!(
            b.build(&SimConfig::default()),
            Err(TopologyError::Unreachable(..))
        ));
    }

    #[test]
    fn empty_topology_is_an_error() {
        assert_eq!(
            TopologyBuilder::new()
                .build(&SimConfig::default())
                .unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    #[should_panic(expected = "no route from a host to itself")]
    fn self_route_panics() {
        let (topo, hosts) = star(2);
        let _ = topo.route(hosts[0], hosts[0]);
    }

    #[test]
    fn io_bus_adds_two_hops_and_shares_a_serializer() {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(2);
        let sw = b.add_switch(SwitchConfig::lossless_fabric());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::myrinet_2000());
        }
        b.host_io_bus(250e6, 500);
        let topo = b.build(&SimConfig::default()).unwrap();
        // host → bus → switch → bus' → host': 4 transmitters.
        assert_eq!(topo.hop_count(hosts[0], hosts[1]), 4);
        let fwd = topo.route(hosts[0], hosts[1]);
        let rev = topo.route(hosts[1], hosts[0]);
        // Host 0's outbound bus hop and its inbound bus hop (last hop of
        // the reverse route) share one serializer.
        let out_slot = topo.tx_params[fwd[0].index()].serializer;
        let in_slot = topo.tx_params[rev[3].index()].serializer;
        assert_eq!(out_slot, in_slot, "bus is half-duplex");
        // The wire hops do not share.
        assert_ne!(
            topo.tx_params[fwd[1].index()].serializer,
            topo.tx_params[rev[2].index()].serializer
        );
        assert_eq!(topo.tx_params[fwd[3].index()].to, Endpoint::Host(hosts[1]));
    }

    #[test]
    fn routes_are_stable_across_builds() {
        let (t1, hosts) = star(5);
        let (t2, _) = star(5);
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    assert_eq!(t1.route(a, b), t2.route(a, b));
                }
            }
        }
    }
}
