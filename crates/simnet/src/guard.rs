//! Run supervision: preemption limits checked inside the event loops.
//!
//! A [`RunGuard`] carries the limits a supervised run must respect — a
//! wall-clock deadline, a simulated-time horizon, an event (or, in the
//! fluid tier, rate-recompute) budget, and a shared cancellation flag.
//! The engines ([`Simulator`](crate::engine::Simulator) and
//! [`FluidSim`](crate::fluid::FluidSim)) poll the installed guard at
//! cheap preemption points — every [`GUARD_CHECK_INTERVAL`] events in the
//! packet engine, once per advance iteration in the fluid engine — and
//! stop with a [`GuardStop`] reason instead of running on. An unlimited
//! guard (the default) costs one branch per event and changes no
//! behavior, which is what keeps every unsupervised run byte-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Events between guard checks in the packet engine (a power of two so
/// the check is a mask test on the event counter). Cancellation latency
/// is bounded by this many events.
pub const GUARD_CHECK_INTERVAL: u64 = 4096;

/// Why a supervised run stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardStop {
    /// The wall-clock deadline passed.
    Deadline,
    /// Simulated time crossed the configured horizon.
    Horizon {
        /// The horizon that was crossed, in simulated nanoseconds past
        /// the instant the guard was installed.
        horizon_ns: u64,
    },
    /// The event budget (packet tier) or rate-recompute budget (fluid
    /// tier) ran out.
    Budget {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The shared cancellation flag was raised.
    Cancelled,
}

impl std::fmt::Display for GuardStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardStop::Deadline => write!(f, "wall-clock deadline exceeded"),
            GuardStop::Horizon { horizon_ns } => {
                write!(f, "simulated-time horizon exceeded ({horizon_ns} ns)")
            }
            GuardStop::Budget { budget } => write!(f, "event budget exhausted ({budget} events)"),
            GuardStop::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Supervision limits for one run. All limits default to *unlimited*;
/// an unlimited guard never trips and adds no observable behavior.
///
/// Budgets and the horizon are measured from the instant the guard is
/// installed (`set_guard`), so one installation spans a whole cell —
/// warmup and every repetition included. The deadline is an absolute
/// [`Instant`].
#[derive(Debug, Clone, Default)]
pub struct RunGuard {
    pub(crate) deadline: Option<Instant>,
    pub(crate) horizon_ns: Option<u64>,
    pub(crate) event_budget: Option<u64>,
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

impl RunGuard {
    /// A guard with no limits: never trips, costs one branch per event.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Stops the run once wall-clock time reaches `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops the run once simulated time advances `horizon_ns` past the
    /// installation instant.
    pub fn with_horizon_ns(mut self, horizon_ns: u64) -> Self {
        self.horizon_ns = Some(horizon_ns);
        self
    }

    /// Stops the run after `budget` processed events (packet tier) or
    /// rate recomputations (fluid tier).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Stops the run once `flag` reads true (a shared cancellation
    /// token; the engine only ever reads it).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no limit is set: the engines skip all checking.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.horizon_ns.is_none()
            && self.event_budget.is_none()
            && self.cancel.is_none()
    }

    /// Evaluates every limit against the caller's progress counters.
    /// `events_used` is events (or recomputes) consumed since the guard
    /// was installed; `sim_elapsed_ns` is simulated time elapsed since
    /// installation. Check order is fixed — cancellation, deadline,
    /// budget, horizon — so a run that trips several limits at once
    /// reports deterministically.
    pub(crate) fn check(&self, events_used: u64, sim_elapsed_ns: u64) -> Option<GuardStop> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(GuardStop::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(GuardStop::Deadline);
            }
        }
        if let Some(budget) = self.event_budget {
            if events_used >= budget {
                return Some(GuardStop::Budget { budget });
            }
        }
        if let Some(horizon_ns) = self.horizon_ns {
            if sim_elapsed_ns >= horizon_ns {
                return Some(GuardStop::Horizon { horizon_ns });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = RunGuard::unlimited();
        assert!(g.is_unlimited());
        assert_eq!(g.check(u64::MAX, u64::MAX), None);
    }

    #[test]
    fn each_limit_trips_with_its_own_reason() {
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(
            RunGuard::unlimited().with_deadline(past).check(0, 0),
            Some(GuardStop::Deadline)
        );
        assert_eq!(
            RunGuard::unlimited().with_event_budget(10).check(10, 0),
            Some(GuardStop::Budget { budget: 10 })
        );
        assert_eq!(
            RunGuard::unlimited().with_event_budget(10).check(9, 0),
            None
        );
        assert_eq!(
            RunGuard::unlimited().with_horizon_ns(500).check(0, 500),
            Some(GuardStop::Horizon { horizon_ns: 500 })
        );
        let flag = Arc::new(AtomicBool::new(false));
        let g = RunGuard::unlimited().with_cancel_flag(Arc::clone(&flag));
        assert_eq!(g.check(0, 0), None);
        flag.store(true, Ordering::Relaxed);
        assert_eq!(g.check(0, 0), Some(GuardStop::Cancelled));
    }

    #[test]
    fn cancellation_outranks_other_tripped_limits() {
        let flag = Arc::new(AtomicBool::new(true));
        let g = RunGuard::unlimited()
            .with_event_budget(1)
            .with_cancel_flag(flag);
        assert_eq!(g.check(100, 0), Some(GuardStop::Cancelled));
    }
}
