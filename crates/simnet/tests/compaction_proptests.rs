//! Property tests for the compact hot-loop representation: the
//! `Packet` ↔ `PackedPacket` encoding must be lossless across the full
//! documented field ranges, and a run-compressed injection burst must pop
//! exactly like the individual pushes it replaces, however lanes and pops
//! interleave.

use proptest::prelude::*;
use simnet::event::{Event, EventQueue, RunTemplate};
use simnet::ids::{ConnId, TxId};
use simnet::packet::{PackedPacket, Packet, PacketKind, MAX_HOP, MAX_LEN};
use simnet::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lossless round-trip across the full packable ranges. `conn` stops
    /// at 2³¹ − 1 because the flow word is `conn·2 + direction`.
    #[test]
    fn packed_packet_roundtrips(
        conn in 0u32..=(u32::MAX >> 1),
        seq in any::<u64>(),
        len in 0u32..=MAX_LEN,
        hop in 0u16..=MAX_HOP,
        flags in 0u8..4,
    ) {
        let is_ack = flags & 1 != 0;
        let pkt = Packet {
            conn: ConnId::new(conn as usize),
            seq,
            // ACKs carry no payload and are never retransmissions; any
            // other combination is unrepresentable by construction.
            len: if is_ack { 0 } else { len },
            kind: if is_ack { PacketKind::Ack } else { PacketKind::Data },
            hop,
            retransmit: !is_ack && flags & 2 != 0,
        };
        let packed = pkt.pack();
        prop_assert_eq!(packed.unpack(), pkt);
        // The accessors must agree with the unpacked view field by field.
        prop_assert_eq!(packed.conn(), pkt.conn);
        prop_assert_eq!(packed.seq, pkt.seq);
        prop_assert_eq!(packed.len(), pkt.len);
        prop_assert_eq!(packed.kind(), pkt.kind);
        prop_assert_eq!(packed.hop(), pkt.hop);
        prop_assert_eq!(packed.retransmit(), pkt.retransmit);
        prop_assert_eq!(
            packed.flow_index(),
            conn as usize * 2 + is_ack as usize,
            "flow rows must interleave forward/reverse per connection"
        );
    }

    /// Hop advancement touches nothing but the hop field.
    #[test]
    fn advance_hop_is_isolated(
        conn in 0u32..=(u32::MAX >> 1),
        seq in any::<u64>(),
        len in 0u32..=MAX_LEN,
        retransmit in any::<bool>(),
        hops in 0u16..MAX_HOP,
    ) {
        let mut p = PackedPacket::data(ConnId::new(conn as usize), seq, len, retransmit);
        for expect in 1..=hops {
            p.advance_hop();
            prop_assert_eq!(p.hop(), expect);
        }
        prop_assert_eq!(p.len(), len);
        prop_assert_eq!(p.seq, seq);
        prop_assert_eq!(p.retransmit(), retransmit);
        prop_assert_eq!(p.conn().index(), conn as usize);
    }

    /// `push_run` pops identically to the equivalent individual `push`
    /// calls: a compact queue (runs) and a reference queue (expanded
    /// pushes) driven through one randomized schedule of run pushes,
    /// singleton pushes and interleaved pops must agree on every popped
    /// `(time, event)` — including pops that land mid-run.
    #[test]
    fn push_run_pops_like_individual_pushes(
        ops in prop::collection::vec(
            (any::<u8>(), 0u64..5_000, 1u32..9, 0u64..80),
            1..80,
        ),
    ) {
        const N_LANES: usize = 3;
        let mut compact = EventQueue::new();
        let mut reference = EventQueue::new();
        let c_lanes: Vec<_> = (0..N_LANES).map(|_| compact.alloc_lane()).collect();
        let r_lanes: Vec<_> = (0..N_LANES).map(|_| reference.alloc_lane()).collect();
        // Per-lane monotonicity floors (the engine's `last_*_inject` role).
        let mut floor = [0u64; N_LANES];
        let mut stream_seq = 0u64;
        for (sel, dt, count, stride) in ops {
            let lane = sel as usize % N_LANES;
            let at = floor[lane] + dt;
            match sel / 86 {
                0 => {
                    // A run of `count` same-size segments.
                    let len = 64 * (1 + (sel as u32 & 3));
                    let template = RunTemplate {
                        tx: TxId::new(lane),
                        pkt: PackedPacket::data(
                            ConnId::new(lane),
                            stream_seq,
                            len,
                            sel & 8 != 0,
                        ),
                        seq_stride: len as u64,
                    };
                    compact.push_run(
                        c_lanes[lane],
                        SimTime(at),
                        stride,
                        count,
                        template,
                    );
                    for i in 0..count as u64 {
                        reference.push(
                            r_lanes[lane],
                            SimTime(at + i * stride),
                            Event::Arrival {
                                tx: template.tx,
                                pkt: PackedPacket::data(
                                    ConnId::new(lane),
                                    stream_seq + i * len as u64,
                                    len,
                                    sel & 8 != 0,
                                ),
                            },
                        );
                    }
                    floor[lane] = at + (count as u64 - 1) * stride;
                    stream_seq += count as u64 * len as u64;
                }
                1 => {
                    // A singleton event on the same lane discipline.
                    let ev = Event::AppWakeup { token: stream_seq };
                    compact.push(c_lanes[lane], SimTime(at), ev);
                    reference.push(r_lanes[lane], SimTime(at), ev);
                    floor[lane] = at;
                    stream_seq += 1;
                }
                _ => {
                    // Interleaved pops: `count` of them, possibly landing
                    // mid-run in the compact queue.
                    for _ in 0..count {
                        prop_assert_eq!(compact.pop(), reference.pop());
                    }
                }
            }
            prop_assert_eq!(compact.len(), reference.len());
        }
        // Drain both and compare the tails.
        loop {
            let (a, b) = (compact.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
