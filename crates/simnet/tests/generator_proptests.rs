//! Property-based tests of the topology generators: every generated
//! fabric must be a valid routable topology with the structural invariants
//! its parameters promise.

use proptest::prelude::*;
use simnet::generate::{
    dragonfly, fat_tree, torus, two_level_tree, DragonflyParams, FatTreeParams, Placement,
    TorusParams, TreeParams,
};
use simnet::ids::HostId;
use simnet::prelude::*;
use simnet::topology::Endpoint;

fn gbe() -> LinkConfig {
    LinkConfig::gigabit_ethernet()
}

fn sw() -> SwitchConfig {
    SwitchConfig::commodity_ethernet()
}

/// Sum of link bandwidths (bytes/sec) of all transmitters owned by pool
/// `pool` whose packets land on `to`.
fn bandwidth_into(topo: &Topology, pool: usize, to: Endpoint) -> f64 {
    topo.tx_params
        .iter()
        .filter(|tx| tx.pool.index() == pool && tx.to == to)
        .map(|tx| 1e9 / tx.ns_per_byte)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fat-trees for k ∈ {2, 4} and 2–8 hosts per edge: every pair routes,
    /// route lengths are symmetric, and hop counts land exactly in the
    /// {2, 4, 6} classes the tree depth dictates.
    #[test]
    fn fat_tree_routes_respect_depth_classes(
        k_half in 1usize..3,       // k ∈ {2, 4}
        hosts_per_edge in 2usize..9,
        seed in 0u64..100,
    ) {
        let k = 2 * k_half;
        let p = FatTreeParams { k, hosts_per_edge, link: gbe(), switch: sw() };
        let g = fat_tree(&p);
        prop_assert_eq!(g.capacity(), k * (k / 2) * hosts_per_edge);
        prop_assert_eq!(g.edge_switches.len(), k * k / 2);
        prop_assert_eq!(g.agg_switches.len(), k * k / 2);
        prop_assert_eq!(g.core_switches.len(), (k / 2) * (k / 2));
        let hosts = g.hosts.clone();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let topo = g.builder.build(&cfg).unwrap();
        let edge_of = |h: HostId| h.index() / hosts_per_edge;
        let pod_of = |h: HostId| edge_of(h) / (k / 2);
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let fwd = topo.hop_count(a, b);
                let rev = topo.hop_count(b, a);
                prop_assert_eq!(fwd, rev, "asymmetric {} vs {}", a, b);
                let expected = if edge_of(a) == edge_of(b) {
                    2
                } else if pod_of(a) == pod_of(b) {
                    4
                } else {
                    6
                };
                prop_assert_eq!(fwd, expected, "{} -> {}", a, b);
            }
        }
    }

    /// Two-level trees: valid for any leaf/host/uplink mix, hop counts in
    /// {2, 4}, and the generated uplink capacity implements exactly the
    /// requested oversubscription ratio.
    #[test]
    fn tree_oversubscription_matches_spec(
        leaves in 2usize..6,
        hosts_per_leaf in 2usize..9,
        uplinks_per_leaf in 1usize..4,
        oversub_x4 in 2u32..33,    // ratio ∈ [0.5, 8.25) in 0.25 steps
        seed in 0u64..100,
    ) {
        let oversubscription = oversub_x4 as f64 / 4.0;
        let p = TreeParams {
            leaves,
            hosts_per_leaf,
            edge_link: gbe(),
            uplinks_per_leaf,
            oversubscription,
            uplink_latency_ns: 10_000,
            edge_switch: sw(),
            core_switch: sw(),
        };
        let g = two_level_tree(&p);
        let hosts = g.hosts.clone();
        let n_hosts = hosts.len();
        let core = *g.core_switches.first().unwrap();
        let leaf_switches = g.edge_switches.clone();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let topo = g.builder.build(&cfg).unwrap();

        // Hop classes and symmetry.
        let leaf_of = |h: HostId| h.index() / hosts_per_leaf;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let fwd = topo.hop_count(a, b);
                prop_assert_eq!(fwd, topo.hop_count(b, a));
                let expected = if leaf_of(a) == leaf_of(b) { 2 } else { 4 };
                prop_assert_eq!(fwd, expected, "{} -> {}", a, b);
            }
        }

        // Reconstruct the ratio from the built fabric: per leaf, host-link
        // bandwidth into the leaf over uplink bandwidth into the core.
        for (li, leaf) in leaf_switches.iter().enumerate() {
            let leaf_pool = n_hosts + leaf.index();
            let up = bandwidth_into(&topo, leaf_pool, Endpoint::Switch(core));
            let down: f64 = hosts[li * hosts_per_leaf..(li + 1) * hosts_per_leaf]
                .iter()
                .map(|h| bandwidth_into(&topo, h.index(), Endpoint::Switch(*leaf)))
                .sum();
            let measured = down / up;
            prop_assert!(
                (measured - oversubscription).abs() < 1e-6 * oversubscription,
                "leaf {}: measured {} vs spec {}",
                li,
                measured,
                oversubscription
            );
        }
    }

    /// Tori of any shape up to 5×4×3 with 1–3 hosts per switch: every
    /// host pair routes, and the dimension-ordered hop count is exactly
    /// `2 + Σ ring distances` — the e-cube minimal route, never a detour.
    #[test]
    fn torus_routes_have_exact_ecube_hop_counts(
        nx in 1usize..6,
        ny in 1usize..5,
        nz in 1usize..4,
        hosts_per_switch in 1usize..4,
        seed in 0u64..100,
    ) {
        prop_assume!(nx * ny * nz >= 2);
        let p = TorusParams {
            dims: [nx, ny, nz],
            hosts_per_switch,
            link: gbe(),
            switch: sw(),
        };
        let g = torus(&p);
        prop_assert_eq!(g.capacity(), nx * ny * nz * hosts_per_switch);
        let hosts = g.hosts.clone();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        // Connectivity: build() errors on any unreachable pair, so a
        // successful build *is* the route-between-every-pair proof.
        let topo = g.builder.build(&cfg).unwrap();
        let coord_of = |h: HostId| {
            let s = h.index() / hosts_per_switch;
            [s % nx, (s / nx) % ny, s / (nx * ny)]
        };
        let ring = |a: usize, b: usize, n: usize| {
            let d = (a as i64 - b as i64).unsigned_abs() as usize % n;
            d.min(n - d)
        };
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let (ca, cb) = (coord_of(a), coord_of(b));
                let dist: usize = (0..3)
                    .map(|d| ring(ca[d], cb[d], [nx, ny, nz][d]))
                    .sum();
                let expected = if dist == 0 { 2 } else { 2 + dist };
                prop_assert_eq!(topo.hop_count(a, b), expected, "{} -> {}", a, b);
                prop_assert_eq!(topo.hop_count(b, a), expected, "symmetry {} {}", a, b);
            }
        }
    }

    /// Dragonflies: every pair routes; hop counts stay within the
    /// host + local + global + local + host minimal-path envelope; and
    /// the global-link budget is exactly one per group pair.
    #[test]
    fn dragonfly_is_connected_with_minimal_path_envelope(
        groups in 1usize..6,
        routers in 1usize..5,
        hosts_per_router in 1usize..4,
        seed in 0u64..100,
    ) {
        prop_assume!(groups * routers >= 2);
        let p = DragonflyParams {
            groups,
            routers_per_group: routers,
            hosts_per_router,
            host_link: gbe(),
            local_link: gbe(),
            global_link: gbe(),
            switch: sw(),
        };
        let g = dragonfly(&p);
        prop_assert_eq!(g.capacity(), groups * routers * hosts_per_router);
        prop_assert_eq!(g.edge_switches.len(), groups * routers);
        let hosts = g.hosts.clone();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let topo = g.builder.build(&cfg).unwrap();
        let router_of = |h: HostId| h.index() / hosts_per_router;
        let group_of = |h: HostId| router_of(h) / routers;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let hops = topo.hop_count(a, b);
                let bound = if router_of(a) == router_of(b) {
                    2
                } else if group_of(a) == group_of(b) {
                    3
                } else {
                    5
                };
                prop_assert!(
                    hops >= 2 && hops <= bound,
                    "{} -> {}: {} hops exceeds the minimal-path bound {}",
                    a, b, hops, bound
                );
            }
        }
    }

    /// Pack and seeded-random placements are partial permutations of the
    /// fabric (no duplicate host, exactly n picks); pack is group-major
    /// and random is seed-reproducible.
    #[test]
    fn pack_and_random_placements_are_partial_permutations(
        leaves in 2usize..6,
        hosts_per_leaf in 2usize..9,
        take_fraction in 1usize..5,
        seed in 0u64..1000,
    ) {
        let p = TreeParams {
            leaves,
            hosts_per_leaf,
            edge_link: gbe(),
            uplinks_per_leaf: 1,
            oversubscription: 2.0,
            uplink_latency_ns: 0,
            edge_switch: sw(),
            core_switch: sw(),
        };
        let g = two_level_tree(&p);
        let n = (g.capacity() * take_fraction / 4).clamp(1, g.capacity());
        for placement in [Placement::Pack, Placement::RandomSeeded] {
            let picked = placement.place(&g, n, seed);
            prop_assert_eq!(picked.len(), n, "{}", placement.name());
            let mut seen = std::collections::HashSet::new();
            for h in &picked {
                prop_assert!(
                    seen.insert(*h),
                    "{}: duplicate host {}",
                    placement.name(),
                    h
                );
                prop_assert!(h.index() < g.capacity(), "host outside fabric");
            }
        }
        // Pack fills leaf k completely before touching leaf k+1.
        let packed = Placement::Pack.place(&g, n, seed);
        for (i, h) in packed.iter().enumerate() {
            prop_assert_eq!(h.index(), g.hosts[i].index(), "pack is group-major");
        }
        // Random placement reproduces per seed and reacts to it.
        let again = Placement::RandomSeeded.place(&g, n, seed);
        prop_assert_eq!(&Placement::RandomSeeded.place(&g, n, seed), &again);
    }

    /// Scattered placement covers the first n hosts without repetition and
    /// spreads across leaves like the presets' round-robin.
    #[test]
    fn scattered_placement_is_a_partial_permutation(
        leaves in 2usize..6,
        hosts_per_leaf in 2usize..9,
        take_fraction in 1usize..5,
    ) {
        let p = TreeParams {
            leaves,
            hosts_per_leaf,
            edge_link: gbe(),
            uplinks_per_leaf: 1,
            oversubscription: 2.0,
            uplink_latency_ns: 0,
            edge_switch: sw(),
            core_switch: sw(),
        };
        let g = two_level_tree(&p);
        let n = (g.capacity() * take_fraction / 4).clamp(1, g.capacity());
        let picked = g.scattered_hosts(n);
        prop_assert_eq!(picked.len(), n);
        let mut seen = std::collections::HashSet::new();
        for h in &picked {
            prop_assert!(seen.insert(*h), "duplicate host {}", h);
        }
        // The first `leaves` picks are all on distinct leaves.
        let distinct_leaves: std::collections::HashSet<usize> = picked
            .iter()
            .take(leaves)
            .map(|h| h.index() / hosts_per_leaf)
            .collect();
        prop_assert_eq!(distinct_leaves.len(), picked.len().min(leaves));
    }
}
