//! Property-based tests of the fluid max-min fair-sharing engine:
//!
//! * on a randomized single-bottleneck topology (an incast star), the
//!   simulated completion instants must equal the analytic water-filling
//!   schedule of max-min fair shares;
//! * under a randomized flow start/finish churn sequence, simulated time
//!   must advance monotonically and every serializer slot must conserve
//!   capacity (sum of flow rates ≤ link capacity at all times), audited
//!   through the `on_tx_busy` recorder samples the fluid drain emits.

use proptest::prelude::*;
use simnet::fluid::FluidSim;
use simnet::obs::Recorder;
use simnet::prelude::*;

/// `n` hosts around one switch, every link at `bandwidth` bytes/sec.
fn star(n: usize, bandwidth: f64) -> (Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let sw = b.add_switch(SwitchConfig::commodity_ethernet());
    for &h in &hosts {
        b.link_host(
            h,
            sw,
            LinkConfig {
                bandwidth_bytes_per_sec: bandwidth,
                latency_ns: 1_000,
            },
        );
    }
    let cfg = SimConfig::default();
    (b.build(&cfg).expect("star builds"), hosts)
}

/// Recorder that audits capacity conservation: every utilization sample
/// must fit under its transmitter's line rate (with rounding slack for
/// the integer-nanosecond sample edges).
struct CapacityAudit {
    /// Bytes/sec per transmitter.
    cap: Vec<f64>,
    violations: Vec<String>,
}

impl Recorder for CapacityAudit {
    fn on_tx_busy(&mut self, tx: u32, from_ns: u64, until_ns: u64, wire_bytes: u64) {
        let dt_ns = until_ns.saturating_sub(from_ns) as f64;
        let limit = self.cap[tx as usize] * (dt_ns + 2.0) / 1e9 + 1.0;
        if wire_bytes as f64 > limit {
            self.violations.push(format!(
                "tx {tx}: {wire_bytes} bytes in [{from_ns}, {until_ns}]ns exceeds {limit:.1}"
            ));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incast onto one host: the receiver's downlink is the single
    /// bottleneck, so max-min fair sharing degenerates to the analytic
    /// water-filling schedule — k active flows each get C/k, and each
    /// finish lifts the survivors' share. The simulated completion of
    /// every flow must match that closed form.
    #[test]
    fn single_bottleneck_shares_equal_the_analytic_fair_share(
        sizes_kib in proptest::collection::vec(1u64..16_384, 1..9),
        cap_mb in 1u64..100,
    ) {
        let capacity = cap_mb as f64 * 1e6;
        let senders = sizes_kib.len();
        let (topo, hosts) = star(senders + 1, capacity);
        let mut sim = FluidSim::new(&topo);
        for (i, &kib) in sizes_kib.iter().enumerate() {
            sim.start_flow(hosts[i + 1], hosts[0], kib * 1024, i as u64);
        }
        let completions = sim.run_to_completion();
        prop_assert_eq!(completions.len(), senders);

        // Analytic water-filling over the sorted sizes: the j-th finisher
        // (0-based, b_0 ≤ b_1 ≤ …) completes at
        //   t_j = t_{j-1} + (b_j − b_{j-1}) · (k − j) / C.
        let mut sorted: Vec<(usize, u64)> = sizes_kib
            .iter()
            .map(|&k| k * 1024)
            .enumerate()
            .collect();
        sorted.sort_by_key(|&(i, b)| (b, i));
        let mut analytic_ns = vec![0.0f64; senders];
        let mut t = 0.0f64;
        let mut prev_bytes = 0.0f64;
        for (j, &(flow, bytes)) in sorted.iter().enumerate() {
            let active = (senders - j) as f64;
            t += (bytes as f64 - prev_bytes) * active / capacity * 1e9;
            prev_bytes = bytes as f64;
            analytic_ns[flow] = t;
        }
        for c in &completions {
            let expect = analytic_ns[c.tag as usize];
            let got = c.at.0 as f64;
            // Slack: one nanosecond of clock rounding plus the 1-byte
            // finish-coalescing tolerance at the fair share.
            let slack = 2.0 + (senders as f64 / capacity) * 1e9 + expect * 1e-9;
            prop_assert!(
                (got - expect).abs() <= slack,
                "flow {}: simulated {got}ns vs analytic {expect}ns (slack {slack}ns)",
                c.tag
            );
        }
    }

    /// A randomized churn sequence (staggered starts, interleaved
    /// finishes, random src→dst pairs): the clock never moves backwards,
    /// completions are reported in non-decreasing order, every flow
    /// finishes, and no serializer slot ever carries more than its
    /// capacity (conservation of the max-min shares).
    #[test]
    fn churn_keeps_time_monotone_and_conserves_capacity(
        flows in proptest::collection::vec(
            (0usize..6, 1usize..6, 1u64..4_096, 0u64..2_000_000),
            1..12,
        ),
        cap_mb in 1u64..100,
    ) {
        let capacity = cap_mb as f64 * 1e6;
        let n = 7;
        let (topo, hosts) = star(n, capacity);
        let audit = CapacityAudit {
            cap: topo.tx_params.iter().map(|tx| 1e9 / tx.ns_per_byte).collect(),
            violations: Vec::new(),
        };
        let mut sim = FluidSim::with_recorder(&topo, audit);

        // Cumulative gaps give a sorted start schedule by construction.
        let mut at_ns = 0.0f64;
        let mut started = 0usize;
        let mut finished = 0usize;
        let mut last_completion = 0.0f64;
        let mut buf = Vec::new();
        for (tag, &(src, dst_off, kib, gap_ns)) in flows.iter().enumerate() {
            at_ns += gap_ns as f64;
            let before = sim.now_ns();
            sim.advance_to(at_ns, &mut buf);
            prop_assert!(sim.now_ns() >= before, "clock moved backwards");
            prop_assert!(sim.now_ns() <= at_ns + 1e-6);
            for c in buf.drain(..) {
                let t = c.at.0 as f64;
                prop_assert!(
                    t + 2.0 >= last_completion,
                    "completion at {t}ns after one at {last_completion}ns"
                );
                last_completion = last_completion.max(t);
                finished += 1;
            }
            let dst = (src + dst_off) % n;
            sim.start_flow(hosts[src], hosts[dst], kib * 1024, tag as u64);
            started += 1;
        }
        for c in sim.run_to_completion() {
            let t = c.at.0 as f64;
            prop_assert!(t + 2.0 >= last_completion);
            last_completion = last_completion.max(t);
            finished += 1;
        }
        prop_assert_eq!(finished, started, "every flow completes exactly once");
        prop_assert_eq!(sim.active_flows(), 0);
        let audit = sim.into_recorder();
        prop_assert!(
            audit.violations.is_empty(),
            "capacity conservation violated: {:?}",
            audit.violations
        );
    }
}
