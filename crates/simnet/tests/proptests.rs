//! Property-based tests of the network simulator: conservation, ordering
//! and determinism over randomized topologies and traffic.

use proptest::prelude::*;
use simnet::prelude::*;

/// A random one- or two-switch topology with `n` hosts.
fn build_topology(n: usize, two_tier: bool, buffer_kb: u64, seed: u64) -> (Simulator, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let sw_cfg = SwitchConfig {
        shared_buffer_bytes: buffer_kb * 1024,
        per_port_cap_bytes: (buffer_kb * 1024 / 2).max(4096),
    };
    if two_tier && n >= 4 {
        let e0 = b.add_switch(sw_cfg);
        let e1 = b.add_switch(sw_cfg);
        let core = b.add_switch(sw_cfg);
        for (i, &h) in hosts.iter().enumerate() {
            b.link_host(
                h,
                if i % 2 == 0 { e0 } else { e1 },
                LinkConfig::gigabit_ethernet(),
            );
        }
        b.link_switches(e0, core, LinkConfig::gigabit_ethernet());
        b.link_switches(e1, core, LinkConfig::gigabit_ethernet());
    } else {
        let sw = b.add_switch(sw_cfg);
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
    }
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let topo = b.build(&cfg).unwrap();
    (Simulator::new(topo, cfg), hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every queued message is delivered exactly once and acknowledged,
    /// regardless of topology, buffer size or traffic mix — TCP recovers
    /// every loss the fabric inflicts.
    #[test]
    fn all_messages_delivered_exactly_once(
        n in 2usize..8,
        two_tier in any::<bool>(),
        buffer_kb in 16u64..256,
        msgs in prop::collection::vec((0usize..8, 0usize..8, 1u64..200_000), 1..12),
        seed in 0u64..1000,
    ) {
        let (mut sim, hosts) = build_topology(n, two_tier, buffer_kb, seed);
        let mut sent = 0u64;
        let mut conns = std::collections::HashMap::new();
        for (tag, &(s, d, bytes)) in msgs.iter().enumerate() {
            let (s, d) = (s % n, d % n);
            if s == d { continue; }
            let conn = *conns.entry((s, d)).or_insert_with(|| {
                sim.open_connection(hosts[s], hosts[d], TransportKind::Tcp(TcpConfig::default()))
            });
            sim.send(conn, bytes, tag as u64);
            sent += 1;
        }
        let mut delivered = std::collections::HashSet::new();
        let mut send_done = 0u64;
        while let Some(note) = sim.poll() {
            match note {
                Notification::Delivered { conn, tag, .. } => {
                    prop_assert!(delivered.insert((conn, tag)), "duplicate delivery");
                }
                Notification::SendDone { .. } => send_done += 1,
                Notification::Wakeup { .. } => {}
            }
        }
        prop_assert_eq!(delivered.len() as u64, sent);
        prop_assert_eq!(send_done, sent);
        prop_assert!(sim.all_quiescent());
    }

    /// Messages on one connection deliver in the order they were sent.
    #[test]
    fn per_connection_order_is_preserved(
        bytes in prop::collection::vec(1u64..100_000, 2..10),
        buffer_kb in 16u64..128,
        seed in 0u64..1000,
    ) {
        let (mut sim, hosts) = build_topology(2, false, buffer_kb, seed);
        let conn = sim.open_connection(hosts[0], hosts[1], TransportKind::Tcp(TcpConfig::default()));
        for (tag, &b) in bytes.iter().enumerate() {
            sim.send(conn, b, tag as u64);
        }
        let mut tags = Vec::new();
        while let Some(note) = sim.poll() {
            if let Notification::Delivered { tag, .. } = note {
                tags.push(tag);
            }
        }
        let expected: Vec<u64> = (0..bytes.len() as u64).collect();
        prop_assert_eq!(tags, expected);
    }

    /// The lossless GM transport never drops, never retransmits, and its
    /// transfer time is bounded below by the wire serialization time.
    #[test]
    fn gm_is_lossless_and_respects_physics(
        bytes in 10_000u64..2_000_000,
        n in 2usize..6,
        seed in 0u64..1000,
    ) {
        let (mut sim, hosts) = build_topology(n, false, 1_000_000, seed);
        let conn = sim.open_connection(hosts[0], hosts[1], TransportKind::Gm(GmConfig::default()));
        sim.send(conn, bytes, 1);
        let mut done = SimTime::ZERO;
        while let Some(note) = sim.poll() {
            if let Notification::Delivered { at, .. } = note {
                done = at;
            }
        }
        prop_assert_eq!(sim.stats().packets_dropped, 0);
        prop_assert_eq!(sim.stats().retransmissions, 0);
        let wire_floor = bytes as f64 / 125e6;
        prop_assert!(done.as_secs_f64() > wire_floor, "{} vs {}", done.as_secs_f64(), wire_floor);
    }

    /// Bit-exact determinism: identical seeds and traffic give identical
    /// final clocks and counters, on any topology.
    #[test]
    fn seeded_runs_are_bit_identical(
        n in 2usize..7,
        two_tier in any::<bool>(),
        buffer_kb in 16u64..128,
        seed in 0u64..1000,
        msgs in prop::collection::vec((0usize..7, 0usize..7, 1u64..300_000), 1..8),
    ) {
        let run = || {
            let (mut sim, hosts) = build_topology(n, two_tier, buffer_kb, seed);
            let mut conns = std::collections::HashMap::new();
            for (tag, &(s, d, bytes)) in msgs.iter().enumerate() {
                let (s, d) = (s % n, d % n);
                if s == d { continue; }
                let conn = *conns.entry((s, d)).or_insert_with(|| {
                    sim.open_connection(hosts[s], hosts[d], TransportKind::Tcp(TcpConfig::default()))
                });
                sim.send(conn, bytes, tag as u64);
            }
            sim.run_until_idle();
            (sim.now(), *sim.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// Conservation under loss: data bytes delivered equal data bytes
    /// queued (drops only cost retransmissions, never corruption).
    #[test]
    fn byte_conservation_under_heavy_loss(
        senders in 2usize..6,
        bytes in 50_000u64..500_000,
        seed in 0u64..100,
    ) {
        // Tiny buffers force drops (incast).
        let (mut sim, hosts) = build_topology(senders + 1, false, 16, seed);
        for s in 0..senders {
            let conn = sim.open_connection(
                hosts[s],
                hosts[senders],
                TransportKind::Tcp(TcpConfig::default()),
            );
            sim.send(conn, bytes, s as u64);
        }
        let mut delivered = 0u64;
        while let Some(note) = sim.poll() {
            if let Notification::Delivered { .. } = note {
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, senders as u64);
        prop_assert!(sim.all_quiescent());
        // Retransmissions mean more bytes sent than the payload total.
        let payload_total = senders as u64 * bytes;
        prop_assert!(sim.stats().data_bytes_sent >= payload_total);
    }
}
