//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--full] [--seed N] [--out DIR] [all | figN | params ...]
//! ```
//!
//! Each experiment prints its tables and ASCII charts and writes one CSV
//! per table under `--out` (default `results/`). `--full` runs the paper's
//! grid sizes; the default quick profile is sized for a small machine.

use contention_lab::experiments::{by_id, registry, Experiment, Profile, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro [--full] [--seed N] [--out DIR] [all | <experiment-id> ...]");
    eprintln!("experiments:");
    for e in registry() {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
    std::process::exit(2);
}

fn main() {
    let mut profile = Profile::default();
    let mut chosen: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => profile.scale = Scale::Full,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                profile.seed = v;
            }
            "--out" => {
                let Some(v) = args.next() else { usage() };
                profile.out_dir = PathBuf::from(v);
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => chosen.push(other.to_string()),
        }
    }
    if chosen.is_empty() || chosen.iter().any(|c| c == "all") {
        chosen = registry().iter().map(|e| e.id.to_string()).collect();
    }

    let experiments: Vec<Experiment> = chosen
        .iter()
        .map(|id| by_id(id).unwrap_or_else(|| usage()))
        .collect();

    println!(
        "reproducing {} experiment(s), scale={:?}, seed={}, out={}",
        experiments.len(),
        profile.scale,
        profile.seed,
        profile.out_dir.display()
    );
    for e in experiments {
        let t0 = Instant::now();
        println!("\n=== {} — {} ===", e.id, e.title);
        println!("paper: {}", e.paper_claim);
        let output = (e.run)(&profile);
        for table in &output.tables {
            let path = profile.out_dir.join(format!("{}.csv", e.id));
            match table.write_csv(&path) {
                Ok(()) => println!("[csv written to {}]", path.display()),
                Err(err) => eprintln!("[csv write failed: {err}]"),
            }
            println!("{}", table.to_aligned());
        }
        for chart in &output.charts {
            println!("{chart}");
        }
        for note in &output.notes {
            println!("note: {note}");
        }
        println!("[{} done in {:.1}s]", e.id, t0.elapsed().as_secs_f64());
    }
}
