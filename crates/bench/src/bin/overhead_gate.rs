//! CI gate on the telemetry tax (see `crates/obs`): the engine's hot
//! path must stay fast with the default no-op recorder, and a recording
//! recorder must stay cheap.
//!
//! Three checks, all on the first `engine_hotpath` case (8 hosts, TCP,
//! 64 KiB all-to-all — the most event-dense regime per byte):
//!
//! 1. **No-op regression** — the engine with `NoopRecorder` (the default
//!    every simulation runs with) against the tracked
//!    `BENCH_engine.json` median. The recorder hooks are compiled behind
//!    `R::ENABLED`, so this holds the zero-cost-when-disabled claim to a
//!    number. This is the one check that compares across *time* (current
//!    run vs. when the snapshot was captured), so its tolerance must
//!    absorb machine-speed drift between those two moments — shared CI
//!    boxes have been observed swinging ±25% between epochs minutes
//!    apart. Tolerance: `--noop-pct` / `OVERHEAD_GATE_NOOP_PCT`
//!    (default 10: catches real hot-path regressions, which land well
//!    above that, without tripping on epoch drift; the tight
//!    single-digit claims live in the per-run ratio checks below).
//! 2. **Recording overhead** — `EngineRecorder` against `NoopRecorder`.
//!    Recording costs ~15-20% on this most-event-dense case (two
//!    histogram updates plus link accounting per event); tolerance:
//!    `--recording-pct` / `OVERHEAD_GATE_RECORDING_PCT` (default 25, the
//!    measured tax plus CI headroom).
//! 3. **Guard overhead** — the engine with the supervision guard a
//!    `Session` installs by default (a cancel-flag-only `RunGuard`,
//!    polled at the preemption point every `GUARD_CHECK_INTERVAL`
//!    events) against the unguarded engine. Tolerance: `--guard-pct` /
//!    `OVERHEAD_GATE_GUARD_PCT` (default 2).
//!
//! Checks 2 and 3 are ratios between two configurations measured in this
//! process; their two sides are sampled *interleaved* in one loop so
//! machine-speed drift over the sampling window cancels out of the
//! ratio. Only the interleaving makes a single-digit tolerance
//! trustworthy on a box whose speed oscillates between epochs.
//!
//! All comparisons use the minimum over the sample iterations: on a
//! noisy CI box the minimum estimates the true cost far more stably than
//! a mean, and a *regression* can only raise it.
//!
//! ```text
//! cargo run --release -p contention-bench --bin overhead_gate [-- --snapshot PATH]
//! ```
//!
//! Exits 0 when all checks pass, 1 otherwise (or if the snapshot is
//! missing/unreadable). Run in release: a debug engine is ~20× slower
//! and the snapshot was captured in release.

use contention_bench::hotpath::{build_alltoall, cases, drive_alltoall};
use simnet::guard::RunGuard;
use simnet::obs::{EngineRecorder, NoopRecorder, Recorder, TelemetryConfig};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

const WARMUP_ITERS: usize = 3;
/// Iterations per side of each interleaved pair. The ratio tolerances
/// (2% guard, 25% recording) sit close to the box's per-iteration
/// jitter, and each extra pair costs only ~5 ms, so buying down the
/// variance of the two minimums is cheap.
const SAMPLE_ITERS: usize = 40;

/// One timed build-and-drive of the gate case with the given recorder
/// and (optionally) the cancel-flag-only guard a `Session` installs.
fn one_iter<R: Recorder>(recorder: R, guarded: bool) -> u64 {
    let case = &cases()[0];
    let (mut sim, conns) = build_alltoall(case, recorder);
    if guarded {
        sim.set_guard(RunGuard::unlimited().with_cancel_flag(Arc::new(AtomicBool::new(false))));
    }
    let start = Instant::now();
    drive_alltoall(case, &mut sim, &conns);
    start.elapsed().as_nanos() as u64
}

/// Interleaved pair measurement for the ratio checks. The two sides
/// alternate within one loop, so each back-to-back pair shares machine
/// state (~5 ms apart) and its `b/a` ratio is immune to both slow drift
/// and one-off bursts hitting the other pairs; the *median* of the
/// per-pair ratios then discards the pairs a burst did land inside.
/// A min-vs-min ratio is not robust here: one lucky iteration on a
/// single side skews it by the full jitter magnitude.
/// Returns `(min_a, min_b, median_ratio)`.
fn measure_pair(a: impl Fn() -> u64, b: impl Fn() -> u64) -> (u64, u64, f64) {
    for _ in 0..WARMUP_ITERS {
        a();
        b();
    }
    let (mut best_a, mut best_b) = (u64::MAX, u64::MAX);
    let mut ratios = Vec::with_capacity(SAMPLE_ITERS);
    for _ in 0..SAMPLE_ITERS {
        let (na, nb) = (a(), b());
        best_a = best_a.min(na);
        best_b = best_b.min(nb);
        ratios.push(nb as f64 / na as f64);
    }
    ratios.sort_by(|x, y| x.total_cmp(y));
    let mid = SAMPLE_ITERS / 2;
    let median = if SAMPLE_ITERS.is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    (best_a, best_b, median)
}

/// The snapshot's `median_ns` for a benchmark name, scanned from the
/// save-json format (`{"name": …, "median_ns": …}` entries).
fn snapshot_median_ns(json: &str, bench: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{bench}\"");
    let entry = &json[json.find(&needle)? + needle.len()..];
    let entry = &entry[entry.find("\"median_ns\":")? + "\"median_ns\":".len()..];
    let digits: String = entry
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn tolerance_pct(flag: &str, env: &str, args: &[String], default: f64) -> f64 {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if let Some(v) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let snapshot_path = args
        .iter()
        .position(|a| a == "--snapshot")
        .and_then(|pos| args.get(pos + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let noop_pct = tolerance_pct("--noop-pct", "OVERHEAD_GATE_NOOP_PCT", &args, 10.0);
    let recording_pct = tolerance_pct(
        "--recording-pct",
        "OVERHEAD_GATE_RECORDING_PCT",
        &args,
        25.0,
    );
    let guard_pct = tolerance_pct("--guard-pct", "OVERHEAD_GATE_GUARD_PCT", &args, 2.0);
    if cfg!(debug_assertions) {
        eprintln!("overhead_gate: warning: debug build; the snapshot check will not be meaningful");
    }

    let bench = format!("engine_hotpath/{}", cases()[0].name);
    let snapshot = match std::fs::read_to_string(&snapshot_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("overhead_gate: cannot read {snapshot_path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let Some(snapshot_ns) = snapshot_median_ns(&snapshot, &bench) else {
        eprintln!("overhead_gate: {snapshot_path} has no median_ns for {bench}");
        return std::process::ExitCode::FAILURE;
    };

    let (noop_ns, recording_ns, recording_ratio) = measure_pair(
        || one_iter(NoopRecorder, false),
        || one_iter(EngineRecorder::new(TelemetryConfig::default()), false),
    );
    let (unguarded_ns, guarded_ns, guard_ratio) = measure_pair(
        || one_iter(NoopRecorder, false),
        || one_iter(NoopRecorder, true),
    );

    let noop_vs_snapshot = noop_ns as f64 / snapshot_ns as f64 - 1.0;
    let recording_vs_noop = recording_ratio - 1.0;
    let guarded_vs_unguarded = guard_ratio - 1.0;
    println!("overhead_gate: case {bench}");
    println!("  snapshot median:  {snapshot_ns} ns");
    println!(
        "  noop recorder:    {noop_ns} ns  ({:+.2}% vs snapshot, tolerance {noop_pct}%)",
        noop_vs_snapshot * 100.0
    );
    println!(
        "  engine recorder:  {recording_ns} ns  ({:+.2}% vs noop, median of per-pair ratios, tolerance {recording_pct}%)",
        recording_vs_noop * 100.0
    );
    println!("  unguarded engine: {unguarded_ns} ns  (guard-pair baseline, interleaved)",);
    println!(
        "  session guard:    {guarded_ns} ns  ({:+.2}% vs unguarded, median of per-pair ratios, tolerance {guard_pct}%)",
        guarded_vs_unguarded * 100.0
    );

    let mut ok = true;
    if noop_vs_snapshot * 100.0 > noop_pct {
        eprintln!("overhead_gate: FAIL: no-op recorder hot path regressed past the snapshot");
        ok = false;
    }
    if recording_vs_noop * 100.0 > recording_pct {
        eprintln!("overhead_gate: FAIL: recording telemetry costs more than the budget");
        ok = false;
    }
    if guarded_vs_unguarded * 100.0 > guard_pct {
        eprintln!("overhead_gate: FAIL: supervision guard costs more than the budget");
        ok = false;
    }
    if ok {
        println!("overhead_gate: OK");
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
