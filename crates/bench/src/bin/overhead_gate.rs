//! CI gate on the telemetry tax (see `crates/obs`): the engine's hot
//! path must stay fast with the default no-op recorder, and a recording
//! recorder must stay cheap.
//!
//! Two checks, both on the first `engine_hotpath` case (8 hosts, TCP,
//! 64 KiB all-to-all — the most event-dense regime per byte):
//!
//! 1. **No-op regression** — the engine with `NoopRecorder` (the default
//!    every simulation runs with) against the tracked
//!    `BENCH_engine.json` median. The recorder hooks are compiled behind
//!    `R::ENABLED`, so this holds the zero-cost-when-disabled claim to a
//!    number. Tolerance: `--noop-pct` / `OVERHEAD_GATE_NOOP_PCT`
//!    (default 2).
//! 2. **Recording overhead** — `EngineRecorder` against `NoopRecorder`,
//!    measured back-to-back in this process so machine speed cancels
//!    out. Recording costs ~15% on this most-event-dense case (two
//!    histogram updates plus link accounting per event); tolerance:
//!    `--recording-pct` / `OVERHEAD_GATE_RECORDING_PCT` (default 25, the
//!    measured tax plus CI headroom).
//!
//! Both comparisons use the minimum over the sample iterations: on a
//! noisy CI box the minimum estimates the true cost far more stably than
//! a mean, and a *regression* can only raise it.
//!
//! ```text
//! cargo run --release -p contention-bench --bin overhead_gate [-- --snapshot PATH]
//! ```
//!
//! Exits 0 when both checks pass, 1 otherwise (or if the snapshot is
//! missing/unreadable). Run in release: a debug engine is ~20× slower
//! and the snapshot was captured in release.

use contention_bench::hotpath::{build_alltoall, cases, drive_alltoall};
use simnet::obs::{EngineRecorder, NoopRecorder, Recorder, TelemetryConfig};
use std::time::Instant;

const WARMUP_ITERS: usize = 3;
const SAMPLE_ITERS: usize = 15;

/// Minimum wall-clock nanoseconds per iteration over the sample runs.
fn measure<R: Recorder, F: Fn() -> R>(make_recorder: F) -> u64 {
    let case = &cases()[0];
    for _ in 0..WARMUP_ITERS {
        let (mut sim, conns) = build_alltoall(case, make_recorder());
        drive_alltoall(case, &mut sim, &conns);
    }
    let mut best = u64::MAX;
    for _ in 0..SAMPLE_ITERS {
        let (mut sim, conns) = build_alltoall(case, make_recorder());
        let start = Instant::now();
        drive_alltoall(case, &mut sim, &conns);
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// The snapshot's `median_ns` for a benchmark name, scanned from the
/// save-json format (`{"name": …, "median_ns": …}` entries).
fn snapshot_median_ns(json: &str, bench: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{bench}\"");
    let entry = &json[json.find(&needle)? + needle.len()..];
    let entry = &entry[entry.find("\"median_ns\":")? + "\"median_ns\":".len()..];
    let digits: String = entry
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn tolerance_pct(flag: &str, env: &str, args: &[String], default: f64) -> f64 {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if let Some(v) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let snapshot_path = args
        .iter()
        .position(|a| a == "--snapshot")
        .and_then(|pos| args.get(pos + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let noop_pct = tolerance_pct("--noop-pct", "OVERHEAD_GATE_NOOP_PCT", &args, 2.0);
    let recording_pct = tolerance_pct(
        "--recording-pct",
        "OVERHEAD_GATE_RECORDING_PCT",
        &args,
        25.0,
    );
    if cfg!(debug_assertions) {
        eprintln!("overhead_gate: warning: debug build; the snapshot check will not be meaningful");
    }

    let bench = format!("engine_hotpath/{}", cases()[0].name);
    let snapshot = match std::fs::read_to_string(&snapshot_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("overhead_gate: cannot read {snapshot_path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let Some(snapshot_ns) = snapshot_median_ns(&snapshot, &bench) else {
        eprintln!("overhead_gate: {snapshot_path} has no median_ns for {bench}");
        return std::process::ExitCode::FAILURE;
    };

    let noop_ns = measure(|| NoopRecorder);
    let recording_ns = measure(|| EngineRecorder::new(TelemetryConfig::default()));

    let noop_vs_snapshot = noop_ns as f64 / snapshot_ns as f64 - 1.0;
    let recording_vs_noop = recording_ns as f64 / noop_ns as f64 - 1.0;
    println!("overhead_gate: case {bench}");
    println!("  snapshot median:  {snapshot_ns} ns");
    println!(
        "  noop recorder:    {noop_ns} ns  ({:+.2}% vs snapshot, tolerance {noop_pct}%)",
        noop_vs_snapshot * 100.0
    );
    println!(
        "  engine recorder:  {recording_ns} ns  ({:+.2}% vs noop, tolerance {recording_pct}%)",
        recording_vs_noop * 100.0
    );

    let mut ok = true;
    if noop_vs_snapshot * 100.0 > noop_pct {
        eprintln!("overhead_gate: FAIL: no-op recorder hot path regressed past the snapshot");
        ok = false;
    }
    if recording_vs_noop * 100.0 > recording_pct {
        eprintln!("overhead_gate: FAIL: recording telemetry costs more than the budget");
        ok = false;
    }
    if ok {
        println!("overhead_gate: OK");
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
