//! # contention-bench
//!
//! Benchmark targets (Criterion) and the `repro` binary that regenerates
//! every table and figure of the paper. See `benches/` for:
//!
//! * `engine` — event-engine throughput under lossless bulk, lossy incast
//!   and GM transfers;
//! * `engine_hotpath` — the tracked hot-path benchmark whose results are
//!   snapshotted in `BENCH_engine.json` (see [`hotpath`]);
//! * `alltoall_algos` — the algorithm ablation (Direct Exchange blocking vs
//!   nonblocking vs Bruck/pairwise/ring) and the eager-threshold ablation;
//! * `model_fit` — Hockney/signature/GLS fitting costs (the "small
//!   overhead" the paper advertises);
//! * `figures` — one reduced-scale benchmark per paper figure.
//!
//! Run `cargo run --release -p contention-bench --bin repro -- all` to
//! regenerate the paper's data series at quick scale, or `--full` for the
//! paper's grids.

pub mod hotpath {
    //! The `engine_hotpath` benchmark's case grid and the authoritative
    //! list of benchmark ids the `BENCH_engine.json` snapshot must carry.
    //!
    //! The bench target and the snapshot-freshness test
    //! (`tests/snapshot_freshness.rs`) both read this module, so renaming
    //! or adding a benchmark without refreshing the snapshot fails CI
    //! instead of silently rotting the README's numbers.

    use simnet::prelude::*;

    /// The fabric an `engine_hotpath` case runs on. Everything is built
    /// lossless so runs measure pure forwarding cost, not loss recovery.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fabric {
        /// `hosts` hosts on one switch (the historical grid).
        Star,
        /// `x·y` switches, dimension-ordered routing; hosts spread evenly.
        Torus2d {
            /// Ring length along x.
            x: usize,
            /// Ring length along y.
            y: usize,
        },
        /// `groups · routers` routers, minimal-path routing.
        Dragonfly {
            /// Group count.
            groups: usize,
            /// Routers per group.
            routers: usize,
        },
    }

    /// One cell of the engine hot-path grid.
    pub struct Case {
        /// Benchmark id within the `engine_hotpath` group.
        pub name: &'static str,
        /// Fabric shape.
        pub fabric: Fabric,
        /// Total host count.
        pub hosts: usize,
        /// Per-pair message size of the all-to-all round.
        pub message_bytes: u64,
        /// Transport under test (fixes the MTU regime).
        pub transport: TransportKind,
    }

    /// Two MTU regimes bracket the engine's per-event overhead: 1460-byte
    /// TCP segments (many small events) and 4096-byte GM frames (fewer,
    /// larger ones). Host counts 8–64 scale the event-queue depth and the
    /// number of live transmitter bands. The torus and dragonfly cases
    /// exercise multi-hop forwarding (4–5 transmitters per packet instead
    /// of the star's 2) through the same hot path.
    pub fn cases() -> Vec<Case> {
        let tcp = TransportKind::Tcp(TcpConfig::default()); // 1460 B MSS
        let gm = TransportKind::Gm(GmConfig::default()); // 4096 B MTU
        vec![
            Case {
                name: "tcp_mtu1460_8hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 8,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "tcp_mtu1460_32hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_32hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "gm_mtu4096_64hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 64,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "tcp_mtu1460_torus4x4_32hosts_64KiB",
                fabric: Fabric::Torus2d { x: 4, y: 4 },
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_dragonfly4x4_32hosts_256KiB",
                fabric: Fabric::Dragonfly {
                    groups: 4,
                    routers: 4,
                },
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
        ]
    }

    /// Benchmark ids of the `queue_burst` group (event-queue structure in
    /// isolation), in declaration order.
    pub const QUEUE_BURST_BENCHES: &[&str] =
        &["lane_queue", "lane_queue_runs", "binary_heap_reference"];

    /// Every benchmark id the `BENCH_engine.json` snapshot must name —
    /// exactly these, no more, no fewer.
    pub fn expected_snapshot_names() -> Vec<String> {
        cases()
            .iter()
            .map(|c| format!("engine_hotpath/{}", c.name))
            .chain(
                QUEUE_BURST_BENCHES
                    .iter()
                    .map(|b| format!("queue_burst/{b}")),
            )
            .collect()
    }
}
