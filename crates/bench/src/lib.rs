//! # contention-bench
//!
//! Benchmark targets (Criterion) and the `repro` binary that regenerates
//! every table and figure of the paper. See `benches/` for:
//!
//! * `engine` — event-engine throughput under lossless bulk, lossy incast
//!   and GM transfers;
//! * `alltoall_algos` — the algorithm ablation (Direct Exchange blocking vs
//!   nonblocking vs Bruck/pairwise/ring) and the eager-threshold ablation;
//! * `model_fit` — Hockney/signature/GLS fitting costs (the "small
//!   overhead" the paper advertises);
//! * `figures` — one reduced-scale benchmark per paper figure.
//!
//! Run `cargo run --release -p contention-bench --bin repro -- all` to
//! regenerate the paper's data series at quick scale, or `--full` for the
//! paper's grids.
