//! # contention-bench
//!
//! Benchmark targets (Criterion) and the `repro` binary that regenerates
//! every table and figure of the paper. See `benches/` for:
//!
//! * `engine` — event-engine throughput under lossless bulk, lossy incast
//!   and GM transfers;
//! * `engine_hotpath` — the tracked hot-path benchmark whose results are
//!   snapshotted in `BENCH_engine.json` (see [`hotpath`]);
//! * `alltoall_algos` — the algorithm ablation (Direct Exchange blocking vs
//!   nonblocking vs Bruck/pairwise/ring) and the eager-threshold ablation;
//! * `model_fit` — Hockney/signature/GLS fitting costs (the "small
//!   overhead" the paper advertises);
//! * `figures` — one reduced-scale benchmark per paper figure.
//!
//! Run `cargo run --release -p contention-bench --bin repro -- all` to
//! regenerate the paper's data series at quick scale, or `--full` for the
//! paper's grids.

pub mod hotpath {
    //! The `engine_hotpath` benchmark's case grid and the authoritative
    //! list of benchmark ids the `BENCH_engine.json` snapshot must carry.
    //!
    //! The bench target and the snapshot-freshness test
    //! (`tests/snapshot_freshness.rs`) both read this module, so renaming
    //! or adding a benchmark without refreshing the snapshot fails CI
    //! instead of silently rotting the README's numbers.

    use simnet::prelude::*;

    /// The fabric an `engine_hotpath` case runs on. Everything is built
    /// lossless so runs measure pure forwarding cost, not loss recovery.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fabric {
        /// `hosts` hosts on one switch (the historical grid).
        Star,
        /// `x·y` switches, dimension-ordered routing; hosts spread evenly.
        Torus2d {
            /// Ring length along x.
            x: usize,
            /// Ring length along y.
            y: usize,
        },
        /// `groups · routers` routers, minimal-path routing.
        Dragonfly {
            /// Group count.
            groups: usize,
            /// Routers per group.
            routers: usize,
        },
        /// Three-level `k`-ary fat-tree, ECMP routing (the fluid tier's
        /// capacity-planning scale).
        FatTree {
            /// Arity.
            k: usize,
            /// Hosts per edge switch.
            hosts_per_edge: usize,
        },
    }

    /// One cell of the engine hot-path grid.
    pub struct Case {
        /// Benchmark id within the `engine_hotpath` group.
        pub name: &'static str,
        /// Fabric shape.
        pub fabric: Fabric,
        /// Total host count.
        pub hosts: usize,
        /// Per-pair message size of the all-to-all round.
        pub message_bytes: u64,
        /// Transport under test (fixes the MTU regime).
        pub transport: TransportKind,
    }

    /// Two MTU regimes bracket the engine's per-event overhead: 1460-byte
    /// TCP segments (many small events) and 4096-byte GM frames (fewer,
    /// larger ones). Host counts 8–64 scale the event-queue depth and the
    /// number of live transmitter bands. The torus and dragonfly cases
    /// exercise multi-hop forwarding (4–5 transmitters per packet instead
    /// of the star's 2) through the same hot path.
    pub fn cases() -> Vec<Case> {
        let tcp = TransportKind::Tcp(TcpConfig::default()); // 1460 B MSS
        let gm = TransportKind::Gm(GmConfig::default()); // 4096 B MTU
        vec![
            Case {
                name: "tcp_mtu1460_8hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 8,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "tcp_mtu1460_32hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_32hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "gm_mtu4096_64hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 64,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "tcp_mtu1460_torus4x4_32hosts_64KiB",
                fabric: Fabric::Torus2d { x: 4, y: 4 },
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_dragonfly4x4_32hosts_256KiB",
                fabric: Fabric::Dragonfly {
                    groups: 4,
                    routers: 4,
                },
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
        ]
    }

    /// Benchmark ids of the `queue_burst` group (event-queue structure in
    /// isolation), in declaration order.
    pub const QUEUE_BURST_BENCHES: &[&str] =
        &["lane_queue", "lane_queue_runs", "binary_heap_reference"];

    /// Benchmark ids of the `recorder_overhead` group: the first hot-path
    /// case run with the default no-op recorder (the exact engine every
    /// other benchmark measures) and with a recording `EngineRecorder`
    /// attached. Their ratio is the live telemetry tax; the `overhead_gate`
    /// binary holds both within tolerance in CI.
    pub const RECORDER_OVERHEAD_BENCHES: &[&str] =
        &["noop_tcp_8hosts_64KiB", "recording_tcp_8hosts_64KiB"];

    /// Benchmark ids of the `daemon_overhead` group: the same trimmed
    /// incast cell (4 hosts, 16 KiB) run directly through a `Session`
    /// and round-tripped through an in-process `ctnd` daemon (HTTP
    /// submit → event stream → report fetch). Their difference is the
    /// daemon's serving tax — queueing, HTTP framing and registry
    /// bookkeeping — which must stay small next to the simulation
    /// itself. Both sides run with a pre-warmed calibration cache so the
    /// comparison measures serving, not fitting.
    pub const DAEMON_OVERHEAD_BENCHES: &[&str] = &[
        "direct_session_incast4_16KiB",
        "daemon_roundtrip_incast4_16KiB",
    ];

    /// Benchmark ids of the `guard_overhead` group: the first hot-path
    /// case run with no guard installed and with the supervision guard a
    /// `Session` wires by default (a cancel-flag-only `RunGuard`, polled
    /// every `GUARD_CHECK_INTERVAL` events). Their ratio is the
    /// preemption-point tax; the `overhead_gate` binary holds it within
    /// tolerance in CI.
    pub const GUARD_OVERHEAD_BENCHES: &[&str] =
        &["unguarded_tcp_8hosts_64KiB", "guarded_tcp_8hosts_64KiB"];

    /// One cell of the `fluid_vs_packet` grid: a full all-to-all (or the
    /// packet baseline of the same workload) whose throughput is reported
    /// in packet-engine event-equivalents (see [`event_equivalents`]).
    pub struct FluidCase {
        /// Benchmark id within the `fluid_vs_packet` group.
        pub name: &'static str,
        /// Fabric shape.
        pub fabric: Fabric,
        /// Total host count.
        pub hosts: usize,
        /// Per-pair message size of the all-to-all round.
        pub message_bytes: u64,
        /// MTU used for the event-equivalent denominator (1460 = TCP MSS).
        pub mtu: u64,
        /// Criterion samples; the million-flow fat-tree needs fewer.
        pub sample_size: usize,
    }

    /// The `fluid_vs_packet` grid. The star-32 pair is like-for-like —
    /// identical fabric, flows and denominator, packet engine vs fluid
    /// solver — so their ratio is the per-workload speedup. The 1024-host
    /// fat-tree is the capacity-planning scale only the fluid tier can
    /// run (1 046 529 concurrent flows); the packet engine extrapolates to
    /// hours there.
    pub fn fluid_cases() -> Vec<FluidCase> {
        vec![
            FluidCase {
                name: "fluid_tcp_star32_64KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 64 * 1024,
                mtu: 1460,
                sample_size: 10,
            },
            FluidCase {
                name: "fluid_tcp_fattree1024_1MiB",
                fabric: Fabric::FatTree {
                    k: 16,
                    hosts_per_edge: 8,
                },
                hosts: 1024,
                message_bytes: 1 << 20,
                mtu: 1460,
                sample_size: 3,
            },
        ]
    }

    /// Packet-engine baseline of the `fluid_vs_packet` group: the same
    /// star-32 workload as `fluid_tcp_star32_64KiB`, timed through the
    /// packet engine with the same event-equivalent denominator.
    pub const FLUID_VS_PACKET_BASELINE: &str = "packet_tcp_star32_64KiB";

    /// Every benchmark id the `BENCH_engine.json` snapshot must name —
    /// exactly these, no more, no fewer.
    pub fn expected_snapshot_names() -> Vec<String> {
        cases()
            .iter()
            .map(|c| format!("engine_hotpath/{}", c.name))
            .chain(
                QUEUE_BURST_BENCHES
                    .iter()
                    .map(|b| format!("queue_burst/{b}")),
            )
            .chain(
                RECORDER_OVERHEAD_BENCHES
                    .iter()
                    .map(|b| format!("recorder_overhead/{b}")),
            )
            .chain(
                GUARD_OVERHEAD_BENCHES
                    .iter()
                    .map(|b| format!("guard_overhead/{b}")),
            )
            .chain(
                DAEMON_OVERHEAD_BENCHES
                    .iter()
                    .map(|b| format!("daemon_overhead/{b}")),
            )
            .chain(std::iter::once(format!(
                "fluid_vs_packet/{FLUID_VS_PACKET_BASELINE}"
            )))
            .chain(
                fluid_cases()
                    .iter()
                    .map(|c| format!("fluid_vs_packet/{}", c.name)),
            )
            .collect()
    }

    /// Build a case fabric: gigabit links, lossless switches, all-pairs
    /// routes resolved. Shared by the packet benchmarks (via
    /// [`build_alltoall`]) and the fluid tier of `fluid_vs_packet`, so
    /// both engines run over byte-identical topologies.
    pub fn build_fabric(fabric: Fabric, n_hosts: usize) -> (Topology, Vec<HostId>) {
        use simnet::generate::{dragonfly, fat_tree, torus_2d, DragonflyParams, FatTreeParams};
        let link = LinkConfig::gigabit_ethernet();
        let lossless = SwitchConfig::lossless_fabric();
        let (builder, hosts) = match fabric {
            Fabric::Star => {
                let mut b = TopologyBuilder::new();
                let hosts = b.add_hosts(n_hosts);
                let sw = b.add_switch(lossless);
                for &h in &hosts {
                    b.link_host(h, sw, link);
                }
                (b, hosts)
            }
            Fabric::Torus2d { x, y } => {
                assert_eq!(n_hosts % (x * y), 0, "hosts must fill the torus evenly");
                let g = torus_2d(x, y, n_hosts / (x * y), link, lossless);
                (g.builder, g.hosts)
            }
            Fabric::Dragonfly { groups, routers } => {
                assert_eq!(n_hosts % (groups * routers), 0);
                let g = dragonfly(&DragonflyParams {
                    groups,
                    routers_per_group: routers,
                    hosts_per_router: n_hosts / (groups * routers),
                    host_link: link,
                    local_link: link,
                    global_link: link,
                    switch: lossless,
                });
                (g.builder, g.hosts)
            }
            Fabric::FatTree { k, hosts_per_edge } => {
                let g = fat_tree(&FatTreeParams {
                    k,
                    hosts_per_edge,
                    link,
                    switch: lossless,
                });
                assert_eq!(g.hosts.len(), n_hosts, "fat-tree host count mismatch");
                (g.builder, g.hosts)
            }
        };
        let hosts_out = hosts;
        (builder.build(&SimConfig::default()).unwrap(), hosts_out)
    }

    /// Packet-engine event-equivalents of a full all-to-all: each
    /// MTU-sized packet crosses every transmitter on its route plus a
    /// final delivery, so one packet ≈ `hops + 1` engine events. Acks,
    /// window clocking and timers are ignored — the packet engine does
    /// strictly more work per packet than this counts, so speedup ratios
    /// quoted against this denominator are conservative.
    pub fn event_equivalents(
        topo: &Topology,
        hosts: &[HostId],
        mtu: u64,
        message_bytes: u64,
    ) -> u64 {
        let packets = message_bytes.div_ceil(mtu);
        let mut total = 0u64;
        for &src in hosts {
            for &dst in hosts {
                if src != dst {
                    total += packets * (topo.hop_count(src, dst) as u64 + 1);
                }
            }
        }
        total
    }

    /// One timed iteration of a fluid case: start the full all-to-all on a
    /// fresh solver over the prebuilt topology and run it dry. Uses the
    /// same 1% finish-coalescing window as the scenario tier's fluid
    /// backend, so the benchmark times what `ctnsim` ships.
    pub fn drive_fluid(case: &FluidCase, topo: &Topology, hosts: &[HostId]) -> usize {
        let mut sim = simnet::fluid::FluidSim::new(topo);
        sim.set_finish_window(1e-2);
        let mut tag = 0u64;
        for &src in hosts {
            for &dst in hosts {
                if src != dst {
                    sim.start_flow(src, dst, case.message_bytes, tag);
                    tag += 1;
                }
            }
        }
        let done = sim.run_to_completion();
        assert_eq!(
            done.len(),
            hosts.len() * (hosts.len() - 1),
            "{}: unfinished fluid flows",
            case.name
        );
        done.len()
    }

    /// A primed simulator on the case's lossless fabric with `recorder`
    /// attached, one connection per ordered host pair. Shared by the
    /// `engine_hotpath` benchmark and the `overhead_gate` binary so both
    /// time exactly the same workload.
    pub fn build_alltoall<R: simnet::obs::Recorder>(
        case: &Case,
        recorder: R,
    ) -> (Simulator<R>, Vec<ConnId>) {
        let (topology, hosts) = build_fabric(case.fabric, case.hosts);
        let mut sim = Simulator::with_recorder(topology, SimConfig::default(), recorder);
        let mut conns = Vec::with_capacity(case.hosts * (case.hosts - 1));
        for &src in &hosts {
            for &dst in &hosts {
                if src != dst {
                    conns.push(sim.open_connection(src, dst, case.transport));
                }
            }
        }
        (sim, conns)
    }

    /// One timed iteration of a case: inject the full all-to-all, run to
    /// idle, return events processed. The workload every `engine_hotpath`
    /// and `recorder_overhead` sample times.
    pub fn drive_alltoall<R: simnet::obs::Recorder>(
        case: &Case,
        sim: &mut Simulator<R>,
        conns: &[ConnId],
    ) -> u64 {
        for (i, conn) in conns.iter().enumerate() {
            sim.send(*conn, case.message_bytes, i as u64);
        }
        sim.run_until_idle();
        assert!(sim.all_quiescent(), "{}: unfinished traffic", case.name);
        sim.stats().events_processed
    }
}
