//! # contention-bench
//!
//! Benchmark targets (Criterion) and the `repro` binary that regenerates
//! every table and figure of the paper. See `benches/` for:
//!
//! * `engine` — event-engine throughput under lossless bulk, lossy incast
//!   and GM transfers;
//! * `engine_hotpath` — the tracked hot-path benchmark whose results are
//!   snapshotted in `BENCH_engine.json` (see [`hotpath`]);
//! * `alltoall_algos` — the algorithm ablation (Direct Exchange blocking vs
//!   nonblocking vs Bruck/pairwise/ring) and the eager-threshold ablation;
//! * `model_fit` — Hockney/signature/GLS fitting costs (the "small
//!   overhead" the paper advertises);
//! * `figures` — one reduced-scale benchmark per paper figure.
//!
//! Run `cargo run --release -p contention-bench --bin repro -- all` to
//! regenerate the paper's data series at quick scale, or `--full` for the
//! paper's grids.

pub mod hotpath {
    //! The `engine_hotpath` benchmark's case grid and the authoritative
    //! list of benchmark ids the `BENCH_engine.json` snapshot must carry.
    //!
    //! The bench target and the snapshot-freshness test
    //! (`tests/snapshot_freshness.rs`) both read this module, so renaming
    //! or adding a benchmark without refreshing the snapshot fails CI
    //! instead of silently rotting the README's numbers.

    use simnet::prelude::*;

    /// The fabric an `engine_hotpath` case runs on. Everything is built
    /// lossless so runs measure pure forwarding cost, not loss recovery.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fabric {
        /// `hosts` hosts on one switch (the historical grid).
        Star,
        /// `x·y` switches, dimension-ordered routing; hosts spread evenly.
        Torus2d {
            /// Ring length along x.
            x: usize,
            /// Ring length along y.
            y: usize,
        },
        /// `groups · routers` routers, minimal-path routing.
        Dragonfly {
            /// Group count.
            groups: usize,
            /// Routers per group.
            routers: usize,
        },
    }

    /// One cell of the engine hot-path grid.
    pub struct Case {
        /// Benchmark id within the `engine_hotpath` group.
        pub name: &'static str,
        /// Fabric shape.
        pub fabric: Fabric,
        /// Total host count.
        pub hosts: usize,
        /// Per-pair message size of the all-to-all round.
        pub message_bytes: u64,
        /// Transport under test (fixes the MTU regime).
        pub transport: TransportKind,
    }

    /// Two MTU regimes bracket the engine's per-event overhead: 1460-byte
    /// TCP segments (many small events) and 4096-byte GM frames (fewer,
    /// larger ones). Host counts 8–64 scale the event-queue depth and the
    /// number of live transmitter bands. The torus and dragonfly cases
    /// exercise multi-hop forwarding (4–5 transmitters per packet instead
    /// of the star's 2) through the same hot path.
    pub fn cases() -> Vec<Case> {
        let tcp = TransportKind::Tcp(TcpConfig::default()); // 1460 B MSS
        let gm = TransportKind::Gm(GmConfig::default()); // 4096 B MTU
        vec![
            Case {
                name: "tcp_mtu1460_8hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 8,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "tcp_mtu1460_32hosts_64KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_32hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "gm_mtu4096_64hosts_256KiB",
                fabric: Fabric::Star,
                hosts: 64,
                message_bytes: 256 * 1024,
                transport: gm,
            },
            Case {
                name: "tcp_mtu1460_torus4x4_32hosts_64KiB",
                fabric: Fabric::Torus2d { x: 4, y: 4 },
                hosts: 32,
                message_bytes: 64 * 1024,
                transport: tcp,
            },
            Case {
                name: "gm_mtu4096_dragonfly4x4_32hosts_256KiB",
                fabric: Fabric::Dragonfly {
                    groups: 4,
                    routers: 4,
                },
                hosts: 32,
                message_bytes: 256 * 1024,
                transport: gm,
            },
        ]
    }

    /// Benchmark ids of the `queue_burst` group (event-queue structure in
    /// isolation), in declaration order.
    pub const QUEUE_BURST_BENCHES: &[&str] =
        &["lane_queue", "lane_queue_runs", "binary_heap_reference"];

    /// Benchmark ids of the `recorder_overhead` group: the first hot-path
    /// case run with the default no-op recorder (the exact engine every
    /// other benchmark measures) and with a recording `EngineRecorder`
    /// attached. Their ratio is the live telemetry tax; the `overhead_gate`
    /// binary holds both within tolerance in CI.
    pub const RECORDER_OVERHEAD_BENCHES: &[&str] =
        &["noop_tcp_8hosts_64KiB", "recording_tcp_8hosts_64KiB"];

    /// Every benchmark id the `BENCH_engine.json` snapshot must name —
    /// exactly these, no more, no fewer.
    pub fn expected_snapshot_names() -> Vec<String> {
        cases()
            .iter()
            .map(|c| format!("engine_hotpath/{}", c.name))
            .chain(
                QUEUE_BURST_BENCHES
                    .iter()
                    .map(|b| format!("queue_burst/{b}")),
            )
            .chain(
                RECORDER_OVERHEAD_BENCHES
                    .iter()
                    .map(|b| format!("recorder_overhead/{b}")),
            )
            .collect()
    }

    /// A primed simulator on the case's lossless fabric with `recorder`
    /// attached, one connection per ordered host pair. Shared by the
    /// `engine_hotpath` benchmark and the `overhead_gate` binary so both
    /// time exactly the same workload.
    pub fn build_alltoall<R: simnet::obs::Recorder>(
        case: &Case,
        recorder: R,
    ) -> (Simulator<R>, Vec<ConnId>) {
        use simnet::generate::{dragonfly, torus_2d, DragonflyParams};
        let link = LinkConfig::gigabit_ethernet();
        let lossless = SwitchConfig::lossless_fabric();
        let (builder, hosts) = match case.fabric {
            Fabric::Star => {
                let mut b = TopologyBuilder::new();
                let hosts = b.add_hosts(case.hosts);
                let sw = b.add_switch(lossless);
                for &h in &hosts {
                    b.link_host(h, sw, link);
                }
                (b, hosts)
            }
            Fabric::Torus2d { x, y } => {
                assert_eq!(case.hosts % (x * y), 0, "hosts must fill the torus evenly");
                let g = torus_2d(x, y, case.hosts / (x * y), link, lossless);
                (g.builder, g.hosts)
            }
            Fabric::Dragonfly { groups, routers } => {
                assert_eq!(case.hosts % (groups * routers), 0);
                let g = dragonfly(&DragonflyParams {
                    groups,
                    routers_per_group: routers,
                    hosts_per_router: case.hosts / (groups * routers),
                    host_link: link,
                    local_link: link,
                    global_link: link,
                    switch: lossless,
                });
                (g.builder, g.hosts)
            }
        };
        let cfg = SimConfig::default();
        let mut sim = Simulator::with_recorder(builder.build(&cfg).unwrap(), cfg, recorder);
        let mut conns = Vec::with_capacity(case.hosts * (case.hosts - 1));
        for &src in &hosts {
            for &dst in &hosts {
                if src != dst {
                    conns.push(sim.open_connection(src, dst, case.transport));
                }
            }
        }
        (sim, conns)
    }

    /// One timed iteration of a case: inject the full all-to-all, run to
    /// idle, return events processed. The workload every `engine_hotpath`
    /// and `recorder_overhead` sample times.
    pub fn drive_alltoall<R: simnet::obs::Recorder>(
        case: &Case,
        sim: &mut Simulator<R>,
        conns: &[ConnId],
    ) -> u64 {
        for (i, conn) in conns.iter().enumerate() {
            sim.send(*conn, case.message_bytes, i as u64);
        }
        sim.run_until_idle();
        assert!(sim.all_quiescent(), "{}: unfinished traffic", case.name);
        sim.stats().events_processed
    }
}
