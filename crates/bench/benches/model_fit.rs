//! Microbenchmarks of the modeling layer: Hockney fits, signature fits
//! with breakpoint search, GLS solves and predictions. These are the
//! "small overhead" the paper advertises for its approach — fitting is
//! microseconds, not cluster-hours.

use contention_model::prelude::*;
use contention_stats::matrix::Matrix;
use contention_stats::regression::{gls, ols};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn synth_samples(n: usize, gamma: f64, delta: f64, cut: u64) -> (HockneyParams, Vec<(u64, f64)>) {
    let h = HockneyParams::new(50e-6, 8.5e-9);
    let sizes: Vec<u64> = (1..=12).map(|i| i * 96 * 1024).collect();
    let samples = sizes
        .iter()
        .map(|&m| {
            let t = (n - 1) as f64 * (h.p2p_time(m) * gamma + if m >= cut { delta } else { 0.0 });
            (m, t)
        })
        .collect();
    (h, samples)
}

fn bench_fits(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit");
    let (h, samples) = synth_samples(40, 4.36, 4.93e-3, 8192);

    group.bench_function("signature_fit_12pts", |b| {
        b.iter(|| ContentionSignature::fit(black_box(h), 40, black_box(&samples)).unwrap())
    });

    let pingpong: Vec<(u64, f64)> = (1..=8)
        .map(|i| {
            let s = i * 128 * 1024;
            (s, h.p2p_time(s))
        })
        .collect();
    group.bench_function("hockney_fit_8pts", |b| {
        b.iter(|| HockneyParams::fit(black_box(&pingpong)).unwrap())
    });

    let sig = ContentionSignature::fit(h, 40, &samples).unwrap();
    group.bench_function("signature_predict", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 4..64 {
                acc += sig.predict(n, 512 * 1024);
            }
            acc
        })
    });

    group.bench_function("ols_16x3", |b| {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![1.0, i as f64, (i * i) as f64])
            .collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..16).map(|i| 1.0 + 2.0 * i as f64).collect();
        b.iter(|| ols(black_box(&design), black_box(&y)).unwrap())
    });

    group.bench_function("gls_16x3", |b| {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![1.0, i as f64, (i * i) as f64])
            .collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..16).map(|i| 1.0 + 2.0 * i as f64).collect();
        let mut sigma = Matrix::identity(16);
        for i in 0..16 {
            for j in 0..16 {
                sigma[(i, j)] = 0.3f64.powi((i as i32 - j as i32).abs()) * 1.5;
            }
        }
        b.iter(|| gls(black_box(&design), black_box(&y), black_box(&sigma)).unwrap())
    });

    group.bench_function("med_lower_bound_64", |b| {
        let params = HockneyParams::new(50e-6, 8.5e-9);
        b.iter(|| {
            let med = Med::uniform_alltoall(64, 65_536);
            med.time_lower_bound(black_box(&params))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fits);
criterion_main!(benches);
