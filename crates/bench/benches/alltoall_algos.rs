//! Ablation: All-to-All algorithm comparison under contention (simulated
//! completion time, reported via custom measurement of the simulated
//! clock), plus wall-time cost of simulating each algorithm.
//!
//! The design-choice ablation DESIGN.md calls out: blocking sendrecv
//! rounds vs post-all nonblocking, and the related-work algorithms.

use contention_lab::presets::ClusterPreset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simmpi::prelude::*;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoall_sim_cost");
    group.sample_size(10);
    let n = 8;
    let m = 64 * 1024;
    for preset in [ClusterPreset::gigabit_ethernet(), ClusterPreset::myrinet()] {
        for algo in AllToAllAlgorithm::all() {
            group.bench_with_input(
                BenchmarkId::new(preset.name, algo.name()),
                &(preset, algo),
                |b, (preset, algo)| {
                    b.iter(|| {
                        let mut world = preset.build_world(n, 42);
                        alltoall_times(&mut world, *algo, m, 0, 1)[0]
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_eager_threshold_ablation(c: &mut Criterion) {
    // How the eager/rendezvous threshold moves the small-message regime:
    // simulate an 8-rank All-to-All at 16 KiB under different thresholds.
    let mut group = c.benchmark_group("eager_threshold");
    group.sample_size(10);
    for threshold in [1024u64, 8 * 1024, 64 * 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                let mut preset = ClusterPreset::gigabit_ethernet();
                preset.mpi.eager_threshold = threshold;
                b.iter(|| {
                    let mut world = preset.build_world(8, 42);
                    alltoall_times(
                        &mut world,
                        AllToAllAlgorithm::DirectExchangeNonblocking,
                        16 * 1024,
                        0,
                        1,
                    )[0]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_eager_threshold_ablation);
criterion_main!(benches);
