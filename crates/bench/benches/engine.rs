//! Microbenchmarks of the discrete-event engine: event throughput under a
//! lossless bulk transfer and under a lossy incast.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simnet::prelude::*;

fn star(n: usize, sw: SwitchConfig) -> (Simulator, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let s = b.add_switch(sw);
    for &h in &hosts {
        b.link_host(h, s, LinkConfig::gigabit_ethernet());
    }
    let cfg = SimConfig::default();
    (Simulator::new(b.build(&cfg).unwrap(), cfg), hosts)
}

fn bench_bulk_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(4_000_000));
    group.bench_function("tcp_bulk_4MB_lossless", |b| {
        b.iter_batched(
            || {
                let (mut sim, hosts) = star(2, SwitchConfig::lossless_fabric());
                let conn = sim.open_connection(
                    hosts[0],
                    hosts[1],
                    TransportKind::Tcp(TcpConfig::default()),
                );
                (sim, conn)
            },
            |(mut sim, conn)| {
                sim.send(conn, 4_000_000, 1);
                sim.run_until_idle();
                sim.stats().events_processed
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("incast_8to1_lossy", |b| {
        b.iter_batched(
            || {
                let sw = SwitchConfig {
                    shared_buffer_bytes: 64 * 1024,
                    per_port_cap_bytes: 32 * 1024,
                };
                let (mut sim, hosts) = star(9, sw);
                let conns: Vec<ConnId> = (0..8)
                    .map(|i| {
                        sim.open_connection(
                            hosts[i],
                            hosts[8],
                            TransportKind::Tcp(TcpConfig::default()),
                        )
                    })
                    .collect();
                (sim, conns)
            },
            |(mut sim, conns)| {
                for (i, c) in conns.iter().enumerate() {
                    sim.send(*c, 500_000, i as u64);
                }
                sim.run_until_idle();
                sim.stats().events_processed
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("gm_bulk_4MB", |b| {
        b.iter_batched(
            || {
                let (mut sim, hosts) = star(2, SwitchConfig::lossless_fabric());
                let conn =
                    sim.open_connection(hosts[0], hosts[1], TransportKind::Gm(GmConfig::default()));
                (sim, conn)
            },
            |(mut sim, conn)| {
                sim.send(conn, 4_000_000, 1);
                sim.run_until_idle();
                sim.stats().events_processed
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_bulk_transfer);
criterion_main!(benches);
