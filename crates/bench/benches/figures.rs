//! One benchmark per paper figure: each bench exercises the figure's
//! measurement pipeline at a reduced scale (small node counts, one
//! repetition), so `cargo bench` continuously tracks the cost and
//! viability of every reproduced experiment. The full-size data comes from
//! the `repro` binary.

use contention_lab::presets::ClusterPreset;
use contention_lab::runner::{
    calibrate_report, fit_cfg_for, measure_alltoall_curve, measure_pingpong_points, SweepConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SEED: u64 = 42;

/// Reduced stress run shared by fig2/fig3 benches.
fn mini_stress(k: usize, bytes: u64) -> simmpi::harness::StressResult {
    let preset = ClusterPreset::gigabit_ethernet();
    let mut world = preset.build_world(2 * k, SEED);
    let mut ranks: Vec<usize> = (0..2 * k).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    ranks.shuffle(&mut rng);
    let pairs: Vec<(usize, usize)> = ranks.chunks(2).map(|c| (c[0], c[1])).collect();
    simmpi::harness::stress_run(&mut world, &pairs, bytes)
}

fn mini_fit(preset: &ClusterPreset, n: usize) -> f64 {
    let sizes = [64 * 1024u64, 128 * 1024, 256 * 1024, 512 * 1024];
    calibrate_report(preset, n, &sizes, SEED)
        .map(|r| r.calibration.signature.gamma)
        .unwrap_or(f64::NAN)
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_stress_bandwidth", |b| {
        b.iter(|| mini_stress(4, 2 * 1024 * 1024).mean_throughput())
    });
    group.bench_function("fig3_stress_stragglers", |b| {
        b.iter(|| mini_stress(4, 2 * 1024 * 1024).straggler_factor())
    });
    group.bench_function("fig4_throughput_model", |b| {
        b.iter(|| {
            let stress = mini_stress(4, 2 * 1024 * 1024);
            contention_model::throughput::ThroughputModel::from_stress_times(
                300e-6,
                stress.bytes,
                &stress.times_secs,
                0.5,
            )
            .unwrap()
            .synthetic_beta()
        })
    });
    group.bench_function("fig5_smallmsg_map", |b| {
        let preset = ClusterPreset::gigabit_ethernet();
        let sizes: Vec<u64> = (1..=4).map(|i| i * 4096).collect();
        b.iter(|| {
            let cfg = SweepConfig {
                reps: 1,
                warmup: 0,
                ..fit_cfg_for(SEED)
            };
            measure_alltoall_curve(&preset, 4, &sizes, &cfg)
        })
    });
    group.bench_function("fig6_fit_fast_ethernet", |b| {
        b.iter(|| mini_fit(&ClusterPreset::fast_ethernet(), 8))
    });
    group.bench_function("fig9_fit_gigabit", |b| {
        b.iter(|| mini_fit(&ClusterPreset::gigabit_ethernet(), 8))
    });
    group.bench_function("fig12_fit_myrinet", |b| {
        b.iter(|| mini_fit(&ClusterPreset::myrinet(), 8))
    });

    // Surfaces / error grids (figs 7, 8, 10, 11, 13, 14) share the same
    // primitive: predict-and-measure at an uncalibrated node count. The
    // trunk-contended GbE preset needs a larger sample count before its
    // stall noise averages out (below saturation the fit correctly
    // refuses), hence the per-preset n_fit.
    for (id, preset, n_fit, n_eval) in [
        (
            "fig7_8_surface_fast_ethernet",
            ClusterPreset::fast_ethernet(),
            8,
            12,
        ),
        (
            "fig10_11_surface_gigabit",
            ClusterPreset::gigabit_ethernet(),
            16,
            20,
        ),
        ("fig13_14_surface_myrinet", ClusterPreset::myrinet(), 8, 12),
    ] {
        group.bench_function(id, |b| {
            let sizes = [128 * 1024u64, 256 * 1024, 384 * 1024, 512 * 1024];
            let report = calibrate_report(&preset, n_fit, &sizes, SEED).unwrap();
            b.iter(|| {
                let cfg = SweepConfig {
                    reps: 1,
                    warmup: 0,
                    ..fit_cfg_for(SEED)
                };
                let measured = measure_alltoall_curve(&preset, n_eval, &[256 * 1024], &cfg)[0].1;
                let predicted = report.calibration.signature.predict(n_eval, 256 * 1024);
                contention_model::metrics::estimation_error_percent(measured, predicted)
            })
        });
    }

    group.bench_function("params_pingpong_hockney", |b| {
        let preset = ClusterPreset::myrinet();
        b.iter(|| measure_pingpong_points(&preset, SEED))
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
