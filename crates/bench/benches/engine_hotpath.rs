//! Hot-path throughput of the packet engine: data packets per second
//! pushed through a star fabric under a full all-to-all send pattern.
//!
//! The case grid lives in `contention_bench::hotpath` so the
//! snapshot-freshness test can hold `BENCH_engine.json` to exactly the
//! benchmarks defined here. Two MTU regimes bracket the engine's per-event
//! overhead: 1460-byte TCP segments (many small events) and 4096-byte GM
//! frames (fewer, larger ones). Host counts 8–64 scale the event-queue
//! depth and the number of live transmitter bands, which is exactly what
//! the packed-packet / 16-byte-node / pooled-band hot path is built for.
//! The fabric is lossless so every run measures pure forwarding cost, not
//! loss recovery.
//!
//! `BENCH_engine.json` at the repo root records this bench's trajectory.
//! Regenerate (the bench binary runs with the package as its working
//! directory, hence the `../..`):
//!
//! ```text
//! cargo bench -p contention-bench --bench engine_hotpath -- --save-json ../../BENCH_engine.json
//! ```
//!
//! This harness deliberately sits *below* the scenario layer's `Session`
//! facade: it drives `simnet::Simulator` connections directly so the
//! tracked numbers isolate the packet engine from calibration, workload
//! generation and executor scheduling (which `scenario_batch` measures
//! end-to-end through `Session`). It has no scenario-crate call sites,
//! deprecated or otherwise.

use contention_bench::hotpath::{
    build_alltoall, build_fabric, cases, drive_alltoall, drive_fluid, event_equivalents,
    fluid_cases, Case, Fabric, DAEMON_OVERHEAD_BENCHES, FLUID_VS_PACKET_BASELINE,
    GUARD_OVERHEAD_BENCHES, RECORDER_OVERHEAD_BENCHES,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simnet::event::{Event, EventQueue, RunTemplate};
use simnet::ids::TxId;
use simnet::obs::{EngineRecorder, TelemetryConfig};
use simnet::prelude::*;
use simnet::time::SimTime;

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(10);
    for case in cases() {
        let mtu = case.transport.mtu() as u64;
        let data_packets =
            (case.hosts * (case.hosts - 1)) as u64 * case.message_bytes.div_ceil(mtu);
        group.throughput(Throughput::Elements(data_packets));
        group.bench_function(case.name, |b| {
            b.iter_batched(
                || build_alltoall(&case, NoopRecorder),
                |(mut sim, conns)| drive_alltoall(&case, &mut sim, &conns),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The fluid-vs-packet throughput gap, measured in packet-engine
/// event-equivalents (`hotpath::event_equivalents`: MTU-sized packets ×
/// route hops + delivery — acks and timers excluded, so every ratio read
/// off this group understates the real speedup). The star-32 pair is
/// like-for-like: same fabric, same 992 × 64 KiB all-to-all, same
/// denominator, packet engine vs max-min fluid solver. The fat-tree row
/// is the capacity-planning scale only the fluid tier reaches — 1024
/// hosts, 1 046 529 concurrent flows — where the packet engine would need
/// hours per run. Topologies are built once outside the timing loop; each
/// sample times a fresh solver over the prebuilt fabric, matching what a
/// `ctnsim run --backend fluid` cell pays after topology construction.
fn bench_fluid_vs_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_vs_packet");

    let baseline = Case {
        name: FLUID_VS_PACKET_BASELINE,
        fabric: Fabric::Star,
        hosts: 32,
        message_bytes: 64 * 1024,
        transport: TransportKind::Tcp(TcpConfig::default()),
    };
    let (topo, hosts) = build_fabric(baseline.fabric, baseline.hosts);
    let equiv = event_equivalents(
        &topo,
        &hosts,
        baseline.transport.mtu() as u64,
        baseline.message_bytes,
    );
    drop(topo);
    group.sample_size(10);
    group.throughput(Throughput::Elements(equiv));
    group.bench_function(baseline.name, |b| {
        b.iter_batched(
            || build_alltoall(&baseline, NoopRecorder),
            |(mut sim, conns)| drive_alltoall(&baseline, &mut sim, &conns),
            BatchSize::SmallInput,
        )
    });

    for case in fluid_cases() {
        let (topo, hosts) = build_fabric(case.fabric, case.hosts);
        let equiv = event_equivalents(&topo, &hosts, case.mtu, case.message_bytes);
        group.sample_size(case.sample_size);
        group.throughput(Throughput::Elements(equiv));
        group.bench_function(case.name, |b| b.iter(|| drive_fluid(&case, &topo, &hosts)));
    }
    group.finish();
}

/// The telemetry tax, measured: the first hot-path case with the default
/// no-op recorder (identical to `engine_hotpath/tcp_mtu1460_8hosts_64KiB`
/// — the zero-cost-when-disabled claim rides on the pair staying equal)
/// and with a recording `EngineRecorder`. The `overhead_gate` binary
/// enforces both deltas in CI; the snapshot keeps their trajectory.
fn bench_recorder_overhead(c: &mut Criterion) {
    let case = &cases()[0];
    let mtu = case.transport.mtu() as u64;
    let data_packets = (case.hosts * (case.hosts - 1)) as u64 * case.message_bytes.div_ceil(mtu);
    let mut group = c.benchmark_group("recorder_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data_packets));
    group.bench_function(RECORDER_OVERHEAD_BENCHES[0], |b| {
        b.iter_batched(
            || build_alltoall(case, NoopRecorder),
            |(mut sim, conns)| drive_alltoall(case, &mut sim, &conns),
            BatchSize::SmallInput,
        )
    });
    group.bench_function(RECORDER_OVERHEAD_BENCHES[1], |b| {
        b.iter_batched(
            || build_alltoall(case, EngineRecorder::new(TelemetryConfig::default())),
            |(mut sim, conns)| drive_alltoall(case, &mut sim, &conns),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The supervision tax, measured: the first hot-path case with no guard
/// installed (identical to `engine_hotpath/tcp_mtu1460_8hosts_64KiB`)
/// and with the guard every `Session` cell runs under by default — a
/// cancel-flag-only `RunGuard`, which makes the engine poll its
/// preemption point every `GUARD_CHECK_INTERVAL` events. The
/// `overhead_gate` binary holds the pair within 2% in CI; the snapshot
/// keeps their trajectory.
fn bench_guard_overhead(c: &mut Criterion) {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let case = &cases()[0];
    let mtu = case.transport.mtu() as u64;
    let data_packets = (case.hosts * (case.hosts - 1)) as u64 * case.message_bytes.div_ceil(mtu);
    let mut group = c.benchmark_group("guard_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data_packets));
    group.bench_function(GUARD_OVERHEAD_BENCHES[0], |b| {
        b.iter_batched(
            || build_alltoall(case, NoopRecorder),
            |(mut sim, conns)| drive_alltoall(case, &mut sim, &conns),
            BatchSize::SmallInput,
        )
    });
    group.bench_function(GUARD_OVERHEAD_BENCHES[1], |b| {
        b.iter_batched(
            || {
                let (mut sim, conns) = build_alltoall(case, NoopRecorder);
                sim.set_guard(
                    RunGuard::unlimited().with_cancel_flag(Arc::new(AtomicBool::new(false))),
                );
                (sim, conns)
            },
            |(mut sim, conns)| drive_alltoall(case, &mut sim, &conns),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The daemon's serving tax, measured: one trimmed incast cell (4
/// hosts, 16 KiB) run directly through a `Session`, and the same cell
/// round-tripped through an in-process `ctnd` daemon — HTTP submit,
/// event-stream follow, report fetch. Both sides share a pre-warmed
/// calibration cache (the daemon's own, warmed by a submission before
/// the timing loop), so the difference is queueing + HTTP framing +
/// registry bookkeeping, not model fitting. `BENCH_engine.json` keeps
/// the pair's trajectory so the tax cannot creep silently.
fn bench_daemon_overhead(c: &mut Criterion) {
    use contention_scenario::prelude::{
        CalibrationCache, LinkSpec, ScenarioBuilder, Session, SwitchSpec,
    };
    use std::sync::Arc;

    let spec = ScenarioBuilder::new("bench-daemon-overhead")
        .single_switch(4, LinkSpec::default(), SwitchSpec::default())
        .incast(1)
        .nodes([4])
        .message_bytes([16 * 1024])
        .reps(1)
        .warmup(0)
        .build()
        .expect("valid bench spec");
    let spec_toml = spec.to_toml_string();

    let mut group = c.benchmark_group("daemon_overhead");
    group.sample_size(10);

    let cache = Arc::new(CalibrationCache::new());
    Session::builder()
        .workers(2)
        .shared_cache(Arc::clone(&cache))
        .build()
        .expect("warm-up session")
        .run(&spec)
        .expect("warm-up run");
    group.bench_function(DAEMON_OVERHEAD_BENCHES[0], |b| {
        b.iter(|| {
            let session = Session::builder()
                .workers(2)
                .shared_cache(Arc::clone(&cache))
                .build()
                .expect("session");
            let report = session.run(&spec).expect("direct run");
            report.render(contention_scenario::prelude::ReportFormat::Json)
        })
    });

    let daemon = ctnd::Daemon::spawn(ctnd::DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        run_workers: 1,
        session_workers: 2,
        ..ctnd::DaemonConfig::default()
    })
    .expect("daemon binds");
    let addr = daemon.addr();
    let submit = |toml: &str| -> String {
        let resp = ctnd::client::request(
            addr,
            "POST",
            "/v1/runs",
            Some("application/toml"),
            toml.as_bytes(),
        )
        .expect("POST /v1/runs");
        assert_eq!(resp.status, 202, "{}", resp.body);
        let start = resp.body.find("\"run_id\": \"").expect("run_id") + 11;
        let end = resp.body[start..].find('"').expect("run_id close") + start;
        resp.body[start..end].to_string()
    };
    // Warm the daemon's shared cache before timing.
    let warm_id = submit(&spec_toml);
    let _ = ctnd::client::request(
        addr,
        "GET",
        &format!("/v1/runs/{warm_id}/events"),
        None,
        b"",
    );
    group.bench_function(DAEMON_OVERHEAD_BENCHES[1], |b| {
        b.iter(|| {
            let id = submit(&spec_toml);
            // The events stream blocks until the run finishes.
            ctnd::client::request(addr, "GET", &format!("/v1/runs/{id}/events"), None, b"")
                .expect("GET events");
            let report =
                ctnd::client::request(addr, "GET", &format!("/v1/runs/{id}/report"), None, b"")
                    .expect("GET report");
            assert_eq!(report.status, 200, "{}", report.body);
            report.body
        })
    });
    group.finish();
    daemon.shutdown();
}

// ---- event-queue structure benchmark ----------------------------------
//
// The injection pattern of a large All-to-All cell, isolated: every
// connection pumps its whole window as a monotone run of events (the
// burst), then the drain interleaves pops with steady re-pushes. This is
// the trace the lane-structured queue is built for — pushes to non-empty
// lanes are O(1) appends — and the in-file binary-heap reference is the
// seed engine's original queue, kept here so the structural ratio stays
// continuously measured instead of folklore. `lane_queue_runs` drives the
// same burst shape through `push_run`: one ~40-byte descriptor per
// injection burst instead of 256 nodes, the zero-jitter engine path.

/// Lanes × entries ≈ the injection burst of a 64-host × 1 MiB GM cell
/// (4032 connections × 256 segments).
const BURST_LANES: usize = 4032;
const BURST_PER_LANE: usize = 256;
/// Steady-state churn pushes interleaved into the drain.
const BURST_CHURN_EVERY: u64 = 4;

fn burst_ops() -> u64 {
    let pushes = (BURST_LANES * BURST_PER_LANE) as u64;
    // Every event is pushed once and popped once; churn adds both.
    2 * (pushes + pushes.div_ceil(BURST_CHURN_EVERY))
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn bench_lane_queue() -> u64 {
    let mut rng = 0x5EED_u64;
    let mut q = EventQueue::new();
    let lanes: Vec<_> = (0..BURST_LANES).map(|_| q.alloc_lane()).collect();
    for (i, &lane) in lanes.iter().enumerate() {
        let mut t = xorshift(&mut rng) % 2_000;
        for _ in 0..BURST_PER_LANE {
            q.push(lane, SimTime(t), Event::AppWakeup { token: i as u64 });
            t += xorshift(&mut rng) % 64;
        }
    }
    // Per-lane monotone clamp for churn re-pushes, mirroring the engine's
    // `last_*_inject` discipline (jittered times must never run a lane
    // backwards).
    let mut lane_floor = vec![0u64; BURST_LANES];
    let mut popped = 0u64;
    while let Some((t, e)) = q.pop() {
        popped += 1;
        if popped.is_multiple_of(BURST_CHURN_EVERY)
            && (popped / BURST_CHURN_EVERY) as usize
                <= BURST_LANES * BURST_PER_LANE / BURST_CHURN_EVERY as usize
        {
            let Event::AppWakeup { token } = e else {
                unreachable!()
            };
            let lane = token as usize;
            let at = (t.0 + 33_000 + xorshift(&mut rng) % 2_000).max(lane_floor[lane]);
            lane_floor[lane] = at;
            q.push(lanes[lane], SimTime(at), Event::AppWakeup { token });
        }
    }
    popped
}

/// The same burst/drain/churn trace shape, with each lane's injection
/// burst entering as one run node (`push_run`) instead of
/// `BURST_PER_LANE` individual events — the engine's zero-jitter
/// injection path. Burst element times are arithmetic (stride = the mean
/// increment of the random trace) because that is precisely the shape
/// runs compress; churn re-pushes stay individual.
fn bench_lane_queue_runs() -> u64 {
    let mut rng = 0x5EED_u64;
    let mut q = EventQueue::new();
    let lanes: Vec<_> = (0..BURST_LANES).map(|_| q.alloc_lane()).collect();
    for (i, &lane) in lanes.iter().enumerate() {
        let base = xorshift(&mut rng) % 2_000;
        q.push_run(
            lane,
            SimTime(base),
            32,
            BURST_PER_LANE as u32,
            RunTemplate {
                tx: TxId::new(i),
                pkt: PackedPacket::data(ConnId::new(i), 0, 4096, false),
                seq_stride: 4096,
            },
        );
    }
    let mut lane_floor = vec![0u64; BURST_LANES];
    let mut popped = 0u64;
    while let Some((t, e)) = q.pop() {
        popped += 1;
        if popped.is_multiple_of(BURST_CHURN_EVERY)
            && (popped / BURST_CHURN_EVERY) as usize
                <= BURST_LANES * BURST_PER_LANE / BURST_CHURN_EVERY as usize
        {
            let lane = match e {
                Event::Arrival { tx, .. } => tx.index(),
                Event::AppWakeup { token } => token as usize,
                _ => unreachable!(),
            };
            let at = (t.0 + 33_000 + xorshift(&mut rng) % 2_000).max(lane_floor[lane]);
            lane_floor[lane] = at;
            q.push(
                lanes[lane],
                SimTime(at),
                Event::AppWakeup { token: lane as u64 },
            );
        }
    }
    popped
}

/// The seed engine's queue, verbatim in spirit: one `BinaryHeap` over
/// whole events with an insertion-order tie-break.
mod heap_ref {
    use simnet::event::Event;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry {
        at: u64,
        seq: u64,
        event: Event,
    }
    impl PartialEq for Entry {
        fn eq(&self, o: &Self) -> bool {
            self.at == o.at && self.seq == o.seq
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, o: &Self) -> Ordering {
            o.at.cmp(&self.at).then_with(|| o.seq.cmp(&self.seq))
        }
    }

    #[derive(Default)]
    pub struct RefQueue {
        heap: BinaryHeap<Entry>,
        next_seq: u64,
    }

    impl RefQueue {
        pub fn push(&mut self, at: u64, event: Event) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }

        pub fn pop(&mut self) -> Option<(u64, Event)> {
            self.heap.pop().map(|e| (e.at, e.event))
        }
    }
}

fn bench_heap_ref() -> u64 {
    let mut rng = 0x5EED_u64;
    let mut q = heap_ref::RefQueue::default();
    for i in 0..BURST_LANES {
        let mut t = xorshift(&mut rng) % 2_000;
        for _ in 0..BURST_PER_LANE {
            q.push(t, Event::AppWakeup { token: i as u64 });
            t += xorshift(&mut rng) % 64;
        }
    }
    // Same trace as the lane benchmark, clamp included, so the two
    // structures are timed on identical push/pop sequences.
    let mut lane_floor = vec![0u64; BURST_LANES];
    let mut popped = 0u64;
    while let Some((t, e)) = q.pop() {
        popped += 1;
        if popped.is_multiple_of(BURST_CHURN_EVERY)
            && (popped / BURST_CHURN_EVERY) as usize
                <= BURST_LANES * BURST_PER_LANE / BURST_CHURN_EVERY as usize
        {
            let Event::AppWakeup { token } = e else {
                unreachable!()
            };
            let lane = token as usize;
            let at = (t + 33_000 + xorshift(&mut rng) % 2_000).max(lane_floor[lane]);
            lane_floor[lane] = at;
            q.push(at, Event::AppWakeup { token });
        }
    }
    popped
}

fn bench_queue_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_burst");
    group.sample_size(10);
    group.throughput(Throughput::Elements(burst_ops()));
    group.bench_function("lane_queue", |b| b.iter(bench_lane_queue));
    group.bench_function("lane_queue_runs", |b| b.iter(bench_lane_queue_runs));
    group.bench_function("binary_heap_reference", |b| b.iter(bench_heap_ref));
    group.finish();
}

criterion_group!(
    benches,
    bench_hotpath,
    bench_queue_burst,
    bench_recorder_overhead,
    bench_guard_overhead,
    bench_daemon_overhead,
    bench_fluid_vs_packet
);
criterion_main!(benches);
