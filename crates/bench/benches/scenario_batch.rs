//! Batch-executor scaling: the same small scenario grid at 1/2/4/8
//! workers, so executor-parallelism regressions show up as a flat
//! (non-decreasing) curve here. Cost-aware scheduling and the calibration
//! cache both land in this number. A torus and a dragonfly grid ride
//! along so the non-tree generators and placement policies stay on the
//! measured path.

use contention_scenario::executor::{run_batch, BatchConfig};
use contention_scenario::spec::{
    LinkSpec, MpiSpec, ScenarioSpec, SweepSpec, SwitchSpec, TopologySpec, TransportSpec,
    WorkloadSpec,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::generate::Placement;

/// A grid of eight quick cells (4–6 ranks, 16–64 KiB) on a small star —
/// enough work for sharding to matter, small enough for CI.
fn small_grid() -> ScenarioSpec {
    ScenarioSpec {
        name: "bench-small-grid".into(),
        description: "executor scaling benchmark".into(),
        topology: TopologySpec::SingleSwitch {
            hosts: 8,
            link: LinkSpec::default(),
            switch: SwitchSpec::default(),
        },
        placement: Placement::default(),
        transport: TransportSpec::default(),
        mpi: MpiSpec::default(),
        workload: WorkloadSpec::Uniform {
            algorithm: "direct".into(),
        },
        sweep: SweepSpec {
            nodes: vec![4, 5, 6, 8],
            message_bytes: vec![16 * 1024, 64 * 1024],
            warmup: 0,
            reps: 1,
        },
    }
}

/// The small grid's shape on a packed 3×3 torus (dimension-ordered
/// routing on the batch path).
fn torus_grid() -> ScenarioSpec {
    ScenarioSpec {
        name: "bench-torus-grid".into(),
        description: "executor scaling benchmark, torus fabric".into(),
        topology: TopologySpec::Torus2d {
            x: 3,
            y: 3,
            hosts_per_switch: 1,
            link: LinkSpec::default(),
            switch: SwitchSpec::default(),
        },
        placement: Placement::Pack,
        transport: TransportSpec::default(),
        mpi: MpiSpec::default(),
        workload: WorkloadSpec::Uniform {
            algorithm: "direct".into(),
        },
        sweep: SweepSpec {
            nodes: vec![4, 6, 8],
            message_bytes: vec![16 * 1024, 64 * 1024],
            warmup: 0,
            reps: 1,
        },
    }
}

/// The small grid's shape on a packed dragonfly (global-link funneling on
/// the batch path).
fn dragonfly_grid() -> ScenarioSpec {
    ScenarioSpec {
        name: "bench-dragonfly-grid".into(),
        description: "executor scaling benchmark, dragonfly fabric".into(),
        topology: TopologySpec::Dragonfly {
            groups: 3,
            routers_per_group: 3,
            hosts_per_router: 1,
            host_link: LinkSpec::default(),
            local_link: LinkSpec::default(),
            global_link: LinkSpec::default(),
            switch: SwitchSpec::default(),
        },
        placement: Placement::Pack,
        transport: TransportSpec::default(),
        mpi: MpiSpec::default(),
        workload: WorkloadSpec::Uniform {
            algorithm: "direct".into(),
        },
        sweep: SweepSpec {
            nodes: vec![4, 6, 8],
            message_bytes: vec![16 * 1024, 64 * 1024],
            warmup: 0,
            reps: 1,
        },
    }
}

fn bench_worker_scaling(c: &mut Criterion) {
    for spec in [small_grid(), torus_grid(), dragonfly_grid()] {
        let fabric = spec.topology.kind();
        let mut group = c.benchmark_group("scenario_batch");
        group.sample_size(10);
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(fabric, workers),
                &workers,
                |b, &workers| {
                    let cfg = BatchConfig {
                        workers,
                        base_seed: 42,
                        ..Default::default()
                    };
                    b.iter(|| run_batch(&spec, &cfg).expect("benchmark scenario runs"));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
