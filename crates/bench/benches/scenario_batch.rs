//! Batch-executor scaling: the same small scenario grid at 1/2/4/8
//! workers, so executor-parallelism regressions show up as a flat
//! (non-decreasing) curve here. Cost-aware scheduling and the calibration
//! cache both land in this number. A torus and a dragonfly grid ride
//! along so the non-tree generators and placement policies stay on the
//! measured path.
//!
//! The harness drives the library the way embedders do: specs come from
//! the fluent `ScenarioBuilder`, execution goes through a `Session` per
//! worker count, and all sessions share one `CalibrationCache` (the
//! session-owned replacement for the old process-global memo), so the
//! measured loop is pure executor — fits happen once, outside the timer.

use contention_scenario::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

/// A grid of eight quick cells (4–6 ranks, 16–64 KiB) on a small star —
/// enough work for sharding to matter, small enough for CI.
fn small_grid() -> ScenarioSpec {
    ScenarioBuilder::new("bench-small-grid")
        .description("executor scaling benchmark")
        .single_switch(8, LinkSpec::default(), SwitchSpec::default())
        .uniform("direct")
        .nodes([4, 5, 6, 8])
        .message_bytes([16 * 1024, 64 * 1024])
        .reps(1)
        .build()
        .expect("bench spec is valid")
}

/// The small grid's shape on a packed 3×3 torus (dimension-ordered
/// routing on the batch path).
fn torus_grid() -> ScenarioSpec {
    ScenarioBuilder::new("bench-torus-grid")
        .description("executor scaling benchmark, torus fabric")
        .torus_2d(3, 3, 1, LinkSpec::default(), SwitchSpec::default())
        .placement(Placement::Pack)
        .uniform("direct")
        .nodes([4, 6, 8])
        .message_bytes([16 * 1024, 64 * 1024])
        .reps(1)
        .build()
        .expect("bench spec is valid")
}

/// The small grid's shape on a packed dragonfly (global-link funneling on
/// the batch path).
fn dragonfly_grid() -> ScenarioSpec {
    ScenarioBuilder::new("bench-dragonfly-grid")
        .description("executor scaling benchmark, dragonfly fabric")
        .topology(TopologySpec::Dragonfly {
            groups: 3,
            routers_per_group: 3,
            hosts_per_router: 1,
            host_link: LinkSpec::default(),
            local_link: LinkSpec::default(),
            global_link: LinkSpec::default(),
            switch: SwitchSpec::default(),
        })
        .placement(Placement::Pack)
        .uniform("direct")
        .nodes([4, 6, 8])
        .message_bytes([16 * 1024, 64 * 1024])
        .reps(1)
        .build()
        .expect("bench spec is valid")
}

fn bench_worker_scaling(c: &mut Criterion) {
    let cache = Arc::new(CalibrationCache::new());
    for spec in [small_grid(), torus_grid(), dragonfly_grid()] {
        let fabric = spec.topology.kind();
        let mut group = c.benchmark_group("scenario_batch");
        group.sample_size(10);
        for workers in [1usize, 2, 4, 8] {
            let session = Session::builder()
                .workers(workers)
                .base_seed(42)
                .shared_cache(Arc::clone(&cache))
                .build()
                .expect("session builds");
            group.bench_with_input(
                BenchmarkId::new(fabric, workers),
                &workers,
                |b, &_workers| {
                    b.iter(|| session.run(&spec).expect("benchmark scenario runs"));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
