//! Bench-snapshot freshness: `BENCH_engine.json` at the repo root must
//! name exactly the benchmarks the `engine_hotpath` target defines. A
//! renamed, added or removed benchmark therefore fails CI until the
//! snapshot is regenerated:
//!
//! ```text
//! cargo bench -p contention-bench --bench engine_hotpath -- --save-json ../../BENCH_engine.json
//! ```

use std::collections::BTreeSet;

/// Pulls every `"name": "..."` value out of the snapshot. The file is
/// written by the in-repo criterion stub's `--save-json`, one benchmark
/// object per line, so plain string scanning is faithful to its format
/// (no JSON dependency in the workspace).
fn snapshot_names(json: &str) -> BTreeSet<String> {
    json.split("\"name\": \"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .map(str::to_owned)
        .collect()
}

#[test]
fn bench_snapshot_names_match_the_bench_targets() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench snapshot {path}: {e}"));
    let in_snapshot = snapshot_names(&json);
    let expected: BTreeSet<String> = contention_bench::hotpath::expected_snapshot_names()
        .into_iter()
        .collect();
    let stale: Vec<_> = in_snapshot.difference(&expected).collect();
    let missing: Vec<_> = expected.difference(&in_snapshot).collect();
    assert!(
        stale.is_empty() && missing.is_empty(),
        "BENCH_engine.json is stale.\n  names no benchmark defines: {stale:?}\n  \
         benchmarks missing from the snapshot: {missing:?}\n  \
         regenerate with: cargo bench -p contention-bench --bench engine_hotpath -- \
         --save-json ../../BENCH_engine.json"
    );
}

#[test]
fn name_extraction_reads_the_snapshot_format() {
    let sample = r#"{
  "benchmarks": [
    {"name": "a/b", "median_ns": 1, "elements_per_sec": 2.0},
    {"name": "c/d", "median_ns": 3, "elements_per_sec": 4.0}
  ]
}"#;
    let names = snapshot_names(sample);
    assert_eq!(
        names.into_iter().collect::<Vec<_>>(),
        vec!["a/b".to_string(), "c/d".to_string()]
    );
}
