//! The executor: runs per-rank programs over the network simulator with
//! blocking-MPI semantics and an eager/rendezvous point-to-point protocol.
//!
//! # Protocol
//!
//! * payload ≤ `eager_threshold`: one message of `envelope + payload` bytes;
//!   the blocking send completes locally once the sender CPU overhead has
//!   elapsed (the data is buffered, as LAM's short-message TCP path does).
//! * payload > threshold: RTS (envelope bytes) → CTS (when the receiver has
//!   posted a matching receive) → data; the blocking send completes when the
//!   data is fully acknowledged.
//!
//! The eager/rendezvous split is load-bearing for the paper's `M` cutoff:
//! eager rounds absorb skew (data queues at the receiver as "unexpected"
//! messages and a lagging rank catches up instantly), while rendezvous
//! rounds re-synchronize every pair each round, so per-round costs — control
//! round-trips and OS scheduling hiccups — accumulate into the affine `δ`
//! term only above the threshold.

use crate::config::MpiConfig;
use crate::ops::{Op, Rank};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::prelude::*;
use std::collections::{BTreeMap, HashMap};

const KIND_EAGER: u64 = 1;
const KIND_RTS: u64 = 2;
const KIND_CTS: u64 = 3;
const KIND_DATA: u64 = 4;
const SEQ_BITS: u32 = 56;

fn make_tag(kind: u64, seq: u64) -> u64 {
    debug_assert!(seq < (1 << SEQ_BITS));
    (kind << SEQ_BITS) | seq
}

fn tag_kind(tag: u64) -> u64 {
    tag >> SEQ_BITS
}

fn tag_seq(tag: u64) -> u64 {
    tag & ((1 << SEQ_BITS) - 1)
}

/// A message that arrived before its receive was posted ("unexpected" in
/// MPI terms).
#[derive(Debug, Clone, Copy)]
enum ArrivedMsg {
    Eager,
    Rts,
}

/// Deferred work attached to a scheduled wakeup token.
#[derive(Debug, Clone, Copy)]
enum WakeupAction {
    StartRank { rank: Rank },
    IssueSend { rank: Rank, to: Rank, bytes: u64 },
    CompleteHalf { rank: Rank },
}

#[derive(Debug, Default)]
struct PairState {
    /// Bulk stream (eager payloads and rendezvous data).
    data_conn: Option<ConnId>,
    /// Control stream (RTS/CTS). Kept separate so a pending megabyte of
    /// bulk data never blocks a 32-byte clear-to-send — real MPI layers
    /// interleave control between data fragments on the wire.
    ctrl_conn: Option<ConnId>,
    /// Next sequence number assigned at the sender.
    next_seq: u64,
    /// Next sequence number the receiver may match (MPI non-overtaking:
    /// messages match in the order they were sent, even though eager and
    /// rendezvous envelopes travel on different streams).
    next_match: u64,
    /// Receives posted at the destination, not yet matched.
    posted: usize,
    /// Envelopes arrived at the destination, not yet matched, by sequence.
    arrived: BTreeMap<u64, ArrivedMsg>,
}

#[derive(Debug)]
struct RankState {
    program: Vec<Op>,
    pc: usize,
    outstanding: usize,
    cpu_free: SimTime,
    finished: Option<SimTime>,
}

/// Result of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Simulated instant all ranks were released.
    pub start: SimTime,
    /// Per-rank completion instants.
    pub finished: Vec<SimTime>,
}

/// Why a supervised run returned without finishing every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunInterrupt {
    /// An installed [`RunGuard`] limit tripped (deadline, horizon,
    /// budget, or cancellation) at an engine preemption point.
    Guard(GuardStop),
    /// Every unfinished rank is blocked with nothing pending to wake it:
    /// the programs (or the fabric) deadlocked. On the packet tier this
    /// is the GM-on-finite-buffer trap — tail-dropped data with no
    /// retransmission timer — detected by the stall detector (event
    /// queue drained, connections not quiescent) instead of hanging.
    Deadlocked {
        /// Ranks that never finished.
        ranks: Vec<usize>,
        /// Human-readable diagnostic, including stalled connections
        /// where the engine can enumerate them.
        detail: String,
    },
}

impl std::fmt::Display for RunInterrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunInterrupt::Guard(stop) => write!(f, "run stopped by guard: {stop}"),
            RunInterrupt::Deadlocked { detail, .. } => write!(f, "deadlock: {detail}"),
        }
    }
}

impl RunResult {
    /// Wall-clock of the collective: last rank's finish minus start.
    pub fn duration_secs(&self) -> f64 {
        let end = self.finished.iter().copied().max().unwrap_or(self.start);
        end.since(self.start) as f64 / 1e9
    }

    /// One rank's completion time in seconds since the common start.
    pub fn rank_duration_secs(&self, rank: Rank) -> f64 {
        self.finished[rank].since(self.start) as f64 / 1e9
    }
}

/// A set of MPI ranks mapped onto simulator hosts.
///
/// The world owns the [`Simulator`] and drives it: [`World::run`] executes
/// one program per rank to completion and reports per-rank finish times.
/// Repeated runs on the same world reuse warm connections (persistent
/// sockets, as LAM keeps), with an idle gap between repetitions.
///
/// The `R` parameter is the telemetry recorder threaded into the owned
/// simulator; the default [`NoopRecorder`] costs nothing (see
/// `simnet::obs`).
pub struct World<R: Recorder = NoopRecorder> {
    sim: Simulator<R>,
    hosts: Vec<HostId>,
    mpi: MpiConfig,
    transport: TransportKind,
    n: usize,
    pairs: Vec<PairState>,
    conn_pair: Vec<(Rank, Rank)>,
    rendezvous: HashMap<(usize, u64), u64>,
    actions: Vec<WakeupAction>,
    ranks: Vec<RankState>,
    barrier_waiting: usize,
    unfinished: usize,
    rng: StdRng,
}

impl<R: Recorder> World<R> {
    /// Builds a world of `hosts.len()` ranks over an existing simulator
    /// (any recorder the simulator carries rides along).
    ///
    /// # Panics
    /// Panics if `hosts` is empty, repeats a host, or references hosts
    /// outside the simulator's topology.
    pub fn new(
        sim: Simulator<R>,
        hosts: Vec<HostId>,
        mpi: MpiConfig,
        transport: TransportKind,
    ) -> Self {
        assert!(!hosts.is_empty(), "a world needs at least one rank");
        let mut seen = vec![false; sim.n_hosts()];
        for &h in &hosts {
            assert!(h.index() < sim.n_hosts(), "host outside topology");
            assert!(!seen[h.index()], "one rank per host");
            seen[h.index()] = true;
        }
        let n = hosts.len();
        let mut pairs = Vec::with_capacity(n * n);
        pairs.resize_with(n * n, PairState::default);
        let seed = mpi.seed;
        Self {
            sim,
            hosts,
            mpi,
            transport,
            n,
            pairs,
            conn_pair: Vec::new(),
            rendezvous: HashMap::new(),
            actions: Vec::new(),
            ranks: Vec::new(),
            barrier_waiting: 0,
            unfinished: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// The underlying simulator (counters, current time).
    pub fn sim(&self) -> &Simulator<R> {
        &self.sim
    }

    /// Mutable access to the simulator (e.g. to harvest its recorder).
    pub fn sim_mut(&mut self) -> &mut Simulator<R> {
        &mut self.sim
    }

    /// MPI-layer configuration in force.
    pub fn mpi_config(&self) -> &MpiConfig {
        &self.mpi
    }

    /// Runs one program per rank to completion and returns per-rank finish
    /// times. Programs start simultaneously after an idle gap (the paper's
    /// synchronization model: "all processes start the algorithm
    /// simultaneously").
    ///
    /// # Panics
    /// Panics if `programs.len()` differs from the rank count, if the
    /// programs deadlock (every rank blocked with no events pending), or
    /// if a guard installed on the simulator trips — use
    /// [`World::try_run`] to receive those outcomes as values.
    pub fn run(&mut self, programs: Vec<Vec<Op>>) -> RunResult {
        match self.try_run(programs) {
            Ok(r) => r,
            Err(interrupt) => panic!("{interrupt}"),
        }
    }

    /// Like [`World::run`], but interruptions come back as values: a
    /// tripped [`RunGuard`] limit (install one with
    /// `world.sim_mut().set_guard(..)`) yields [`RunInterrupt::Guard`],
    /// and a genuine stall — event queue drained while ranks still wait
    /// — yields [`RunInterrupt::Deadlocked`] with a diagnostic of the
    /// blocked ranks and connections. The world is left mid-run after an
    /// interrupt; discard it rather than running again.
    ///
    /// # Panics
    /// Panics if `programs.len()` differs from the rank count.
    pub fn try_run(&mut self, programs: Vec<Vec<Op>>) -> Result<RunResult, RunInterrupt> {
        assert_eq!(programs.len(), self.n, "one program per rank");
        // Drain any traffic trailing from a previous run (late ACKs).
        self.sim.run_until_idle();
        while self.sim.poll().is_some() {}

        let start = self.sim.now() + self.mpi.rep_gap_ns;
        self.actions.clear();
        self.barrier_waiting = 0;
        self.unfinished = self.n;
        self.ranks = programs
            .into_iter()
            .map(|program| RankState {
                program,
                pc: 0,
                outstanding: 0,
                cpu_free: start,
                finished: None,
            })
            .collect();
        for rank in 0..self.n {
            let token = self.push_action(WakeupAction::StartRank { rank });
            self.sim.schedule_wakeup(start, token);
        }

        while self.unfinished > 0 {
            let Some(note) = self.sim.poll() else {
                if let Some(stop) = self.sim.take_stop() {
                    return Err(RunInterrupt::Guard(stop));
                }
                return Err(self.deadlock_interrupt());
            };
            match note {
                Notification::Wakeup { token, .. } => self.on_wakeup(token),
                Notification::Delivered { conn, tag, .. } => self.on_delivered(conn, tag),
                Notification::SendDone { conn, tag, .. } => self.on_send_done(conn, tag),
            }
        }

        Ok(RunResult {
            start,
            finished: self.ranks.iter().map(|r| r.finished.unwrap()).collect(),
        })
    }

    /// Builds the stall-detector diagnostic: which ranks never finished,
    /// and which connections hold unacknowledged bytes with nothing
    /// pending to move them (since RTO timers live in the event queue, a
    /// drained queue with unacked bytes is a genuine protocol stall, not
    /// a simulation still in flight).
    fn deadlock_interrupt(&self) -> RunInterrupt {
        let ranks: Vec<usize> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.finished.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut detail = format!("ranks {ranks:?} blocked with no pending events");
        let stalled = self.sim.blocked_connections();
        if !stalled.is_empty() {
            use std::fmt::Write as _;
            let shown = stalled.len().min(8);
            let _ = write!(detail, "; {} stalled connection(s):", stalled.len());
            for b in &stalled[..shown] {
                let _ = write!(
                    detail,
                    " conn{} host{}→host{} ({} B unacked)",
                    b.conn.index(),
                    b.src.index(),
                    b.dst.index(),
                    b.unacked_bytes
                );
            }
            if stalled.len() > shown {
                let _ = write!(detail, " …");
            }
        }
        RunInterrupt::Deadlocked { ranks, detail }
    }

    fn push_action(&mut self, action: WakeupAction) -> u64 {
        let token = self.actions.len() as u64;
        self.actions.push(action);
        token
    }

    fn pair_idx(&self, src: Rank, dst: Rank) -> usize {
        src * self.n + dst
    }

    fn conn_for(&mut self, src: Rank, dst: Rank, ctrl: bool) -> ConnId {
        let idx = self.pair_idx(src, dst);
        let existing = if ctrl {
            self.pairs[idx].ctrl_conn
        } else {
            self.pairs[idx].data_conn
        };
        if let Some(c) = existing {
            return c;
        }
        let c = self
            .sim
            .open_connection(self.hosts[src], self.hosts[dst], self.transport);
        debug_assert_eq!(c.index(), self.conn_pair.len());
        self.conn_pair.push((src, dst));
        if ctrl {
            self.pairs[idx].ctrl_conn = Some(c);
        } else {
            self.pairs[idx].data_conn = Some(c);
        }
        c
    }

    /// Occupies the rank's CPU for `base_ns` plus jitter (plus an optional
    /// OS scheduling hiccup) and schedules `action` at the end.
    fn schedule_cpu(&mut self, rank: Rank, base_ns: u64, action: WakeupAction) {
        let jitter = if self.mpi.overhead_jitter_ns > 0 {
            self.rng.gen_range(0..=self.mpi.overhead_jitter_ns)
        } else {
            0
        };
        let hiccup = if self.mpi.hiccup_probability > 0.0
            && self.rng.gen_bool(self.mpi.hiccup_probability)
        {
            let mean = self.mpi.hiccup_mean_ns;
            self.rng.gen_range(mean / 2..=mean + mean / 2)
        } else {
            0
        };
        let begin = self.ranks[rank].cpu_free.max(self.sim.now());
        let end = begin + base_ns + jitter + hiccup;
        self.ranks[rank].cpu_free = end;
        let token = self.push_action(action);
        self.sim.schedule_wakeup(end, token);
    }

    fn on_wakeup(&mut self, token: u64) {
        let action = self.actions[token as usize];
        match action {
            WakeupAction::StartRank { rank } => self.issue_current_op(rank),
            WakeupAction::CompleteHalf { rank } => self.complete_half(rank),
            WakeupAction::IssueSend { rank, to, bytes } => {
                let idx = self.pair_idx(rank, to);
                let seq = self.pairs[idx].next_seq;
                self.pairs[idx].next_seq += 1;
                if bytes <= self.mpi.eager_threshold {
                    let conn = self.conn_for(rank, to, false);
                    let wire = bytes + self.mpi.envelope_bytes;
                    self.sim.send(conn, wire, make_tag(KIND_EAGER, seq));
                    // Eager blocking send completes locally once buffered.
                    self.complete_half(rank);
                } else {
                    self.rendezvous.insert((idx, seq), bytes);
                    let conn = self.conn_for(rank, to, true);
                    self.sim
                        .send(conn, self.mpi.envelope_bytes, make_tag(KIND_RTS, seq));
                }
            }
        }
    }

    fn issue_current_op(&mut self, rank: Rank) {
        loop {
            let state = &self.ranks[rank];
            if state.pc >= state.program.len() {
                self.ranks[rank].finished = Some(self.sim.now());
                self.unfinished -= 1;
                return;
            }
            let op = state.program[state.pc].clone();
            match op {
                Op::Transfer { sends, recvs } => {
                    let parts = sends.len() + recvs.len();
                    if parts == 0 {
                        self.ranks[rank].pc += 1;
                        continue;
                    }
                    self.ranks[rank].outstanding = parts;
                    // Receives post first (instantaneous state change) so a
                    // sendrecv against the same peer cannot deadlock.
                    for from in recvs {
                        assert_ne!(from, rank, "self-receives are local copies");
                        self.post_recv(from, rank);
                    }
                    for (to, bytes) in sends {
                        assert_ne!(to, rank, "self-sends are local copies");
                        self.schedule_cpu(
                            rank,
                            self.mpi.send_overhead_ns,
                            WakeupAction::IssueSend { rank, to, bytes },
                        );
                    }
                    return;
                }
                Op::Barrier => {
                    self.ranks[rank].outstanding = 1;
                    self.barrier_waiting += 1;
                    if self.barrier_waiting == self.n {
                        self.barrier_waiting = 0;
                        let now = self.sim.now();
                        for r in 0..self.n {
                            let token = self.push_action(WakeupAction::CompleteHalf { rank: r });
                            self.sim.schedule_wakeup(now, token);
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Rank `dst` posts a blocking receive for one message from `src`.
    fn post_recv(&mut self, src: Rank, dst: Rank) {
        let idx = self.pair_idx(src, dst);
        self.pairs[idx].posted += 1;
        self.drain_matches(src, dst);
    }

    /// Matches posted receives against arrived envelopes strictly in
    /// sequence order (MPI non-overtaking), dispatching each match.
    fn drain_matches(&mut self, src: Rank, dst: Rank) {
        let idx = self.pair_idx(src, dst);
        loop {
            let pair = &mut self.pairs[idx];
            if pair.posted == 0 {
                break;
            }
            let next = pair.next_match;
            let Some(msg) = pair.arrived.remove(&next) else {
                break;
            };
            pair.posted -= 1;
            pair.next_match += 1;
            match msg {
                ArrivedMsg::Eager => self.schedule_cpu(
                    dst,
                    self.mpi.recv_overhead_ns,
                    WakeupAction::CompleteHalf { rank: dst },
                ),
                ArrivedMsg::Rts => self.grant_cts(src, dst, next),
            }
        }
    }

    /// The receiver clears a rendezvous sender to transmit.
    fn grant_cts(&mut self, src: Rank, dst: Rank, seq: u64) {
        let conn = self.conn_for(dst, src, true);
        let cts = self.mpi.cts_bytes;
        self.sim.send(conn, cts, make_tag(KIND_CTS, seq));
    }

    fn on_delivered(&mut self, conn: ConnId, tag: u64) {
        let (a, b) = self.conn_pair[conn.index()];
        let (kind, seq) = (tag_kind(tag), tag_seq(tag));
        match kind {
            KIND_EAGER => self.recv_arrival(a, b, seq, ArrivedMsg::Eager),
            KIND_RTS => self.recv_arrival(a, b, seq, ArrivedMsg::Rts),
            KIND_CTS => {
                // CTS flows receiver→sender: the rendezvous pair is (b→a).
                let idx = self.pair_idx(b, a);
                let bytes = *self
                    .rendezvous
                    .get(&(idx, seq))
                    .expect("CTS for an unknown rendezvous");
                let conn = self.conn_for(b, a, false);
                self.sim.send(conn, bytes, make_tag(KIND_DATA, seq));
            }
            KIND_DATA => {
                // The receive slot was consumed when the RTS matched; the
                // payload's arrival completes the receive after overhead.
                self.schedule_cpu(
                    b,
                    self.mpi.recv_overhead_ns,
                    WakeupAction::CompleteHalf { rank: b },
                );
            }
            other => unreachable!("unknown message kind {other}"),
        }
    }

    fn recv_arrival(&mut self, src: Rank, dst: Rank, seq: u64, msg: ArrivedMsg) {
        let idx = self.pair_idx(src, dst);
        let prev = self.pairs[idx].arrived.insert(seq, msg);
        debug_assert!(prev.is_none(), "duplicate envelope sequence");
        self.drain_matches(src, dst);
    }

    fn on_send_done(&mut self, conn: ConnId, tag: u64) {
        if tag_kind(tag) != KIND_DATA {
            return; // eager/control completions are local, already counted
        }
        let (src, dst) = self.conn_pair[conn.index()];
        let idx = self.pair_idx(src, dst);
        let seq = tag_seq(tag);
        if self.rendezvous.remove(&(idx, seq)).is_some() {
            self.complete_half(src);
        }
    }

    fn complete_half(&mut self, rank: Rank) {
        let state = &mut self.ranks[rank];
        debug_assert!(state.outstanding > 0, "completion without a pending op");
        state.outstanding -= 1;
        if state.outstanding == 0 {
            state.pc += 1;
            self.issue_current_op(rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::AllToAllAlgorithm;

    fn star_world(n: usize, mpi: MpiConfig) -> World {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        let cfg = SimConfig::default();
        let sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
        World::new(sim, hosts, mpi, TransportKind::Tcp(TcpConfig::default()))
    }

    #[test]
    fn pingpong_roundtrip_has_sane_time() {
        let mut w = star_world(2, MpiConfig::default());
        let programs = vec![
            vec![Op::send(1, 1000), Op::recv(1)],
            vec![Op::recv(0), Op::send(0, 1000)],
        ];
        let r = w.run(programs);
        let rtt = r.rank_duration_secs(0);
        // Two crossings of ~2×25 µs latency plus overheads: at least 100 µs,
        // well under 5 ms on an idle network.
        assert!(rtt > 100e-6, "rtt = {rtt}");
        assert!(rtt < 5e-3, "rtt = {rtt}");
    }

    #[test]
    fn eager_send_completes_before_receiver_posts() {
        // Rank 0 sends eagerly and finishes; rank 1 computes (no-op here),
        // then receives. No deadlock, and the data waits as unexpected.
        let mut w = star_world(2, MpiConfig::default());
        let programs = vec![vec![Op::send(1, 100)], vec![Op::recv(0)]];
        let r = w.run(programs);
        assert!(r.finished[0] <= r.finished[1]);
    }

    #[test]
    fn rendezvous_send_blocks_until_received() {
        let mpi = MpiConfig {
            eager_threshold: 1024,
            ..MpiConfig::default()
        };
        let mut w = star_world(2, mpi);
        // 1 MB is far above the threshold: sender must wait for the
        // receiver's CTS, so both finish together-ish.
        let programs = vec![vec![Op::send(1, 1_000_000)], vec![Op::recv(0)]];
        let r = w.run(programs);
        let send_done = r.rank_duration_secs(0);
        let ideal = 1_000_000.0 / 125e6;
        assert!(send_done > ideal, "blocking send spans the transfer");
    }

    #[test]
    fn sendrecv_pair_exchanges_without_deadlock() {
        let mpi = MpiConfig {
            eager_threshold: 1024,
            ..MpiConfig::default()
        };
        let mut w = star_world(2, mpi);
        let programs = vec![
            vec![Op::sendrecv(1, 500_000, 1)],
            vec![Op::sendrecv(0, 500_000, 0)],
        ];
        let r = w.run(programs);
        assert!(r.duration_secs() > 0.0);
    }

    #[test]
    fn barrier_releases_all_ranks_at_the_last_arrival() {
        let mut w = star_world(4, MpiConfig::default());
        // Rank 0 does extra work before the barrier; everyone leaves after
        // rank 0 arrives.
        let programs = vec![
            vec![Op::send(1, 200_000), Op::Barrier],
            vec![Op::recv(0), Op::Barrier],
            vec![Op::Barrier],
            vec![Op::Barrier],
        ];
        let r = w.run(programs);
        let min = r.finished.iter().min().unwrap();
        let max = r.finished.iter().max().unwrap();
        assert!(max.since(*min) < 1_000_000, "all release within 1 ms");
    }

    #[test]
    fn alltoall_direct_completes_for_various_sizes() {
        for &m in &[512u64, 8 * 1024, 64 * 1024] {
            let mut w = star_world(5, MpiConfig::default());
            let progs = AllToAllAlgorithm::DirectExchange.programs(5, m);
            let r = w.run(progs);
            assert!(r.duration_secs() > 0.0, "m={m}");
            assert_eq!(
                w.sim().stats().messages_delivered as usize % (5 * 4),
                0,
                "every pair exchanged (m={m})"
            );
        }
    }

    #[test]
    fn alltoall_all_algorithms_complete() {
        for algo in AllToAllAlgorithm::all() {
            let n = 8; // power of two so pairwise works
            let mut w = star_world(n, MpiConfig::default());
            let progs = algo.programs(n, 4096);
            let r = w.run(progs);
            assert!(r.duration_secs() > 0.0, "{}", algo.name());
        }
    }

    #[test]
    fn repeated_runs_reuse_warm_connections() {
        let mut w = star_world(4, MpiConfig::default());
        let progs = AllToAllAlgorithm::DirectExchange.programs(4, 16 * 1024);
        let r1 = w.run(progs.clone());
        let r2 = w.run(progs);
        assert!(r2.start > r1.finished.iter().copied().max().unwrap());
        assert!(r2.duration_secs() > 0.0);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut w = star_world(4, MpiConfig::default());
        let small = w.run(AllToAllAlgorithm::DirectExchange.programs(4, 1024));
        let big = w.run(AllToAllAlgorithm::DirectExchange.programs(4, 512 * 1024));
        assert!(big.duration_secs() > small.duration_secs());
    }

    #[test]
    fn mismatched_programs_deadlock_with_diagnostic() {
        let mpi = MpiConfig {
            eager_threshold: 10, // force rendezvous so the send blocks
            ..MpiConfig::default()
        };
        let mut w = star_world(2, mpi);
        // Rank 0 sends to 1, but rank 1 never posts a receive.
        let programs = vec![vec![Op::send(1, 1000)], vec![]];
        match w.try_run(programs) {
            Err(RunInterrupt::Deadlocked { ranks, detail }) => {
                assert_eq!(ranks, vec![0]);
                assert!(detail.contains("blocked"), "{detail}");
            }
            other => panic!("expected a deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_still_panics_on_deadlock() {
        let mpi = MpiConfig {
            eager_threshold: 10,
            ..MpiConfig::default()
        };
        let mut w = star_world(2, mpi);
        let _ = w.run(vec![vec![Op::send(1, 1000)], vec![]]);
    }

    #[test]
    fn guard_interrupt_surfaces_as_a_typed_outcome() {
        let mut w = star_world(4, MpiConfig::default());
        w.sim_mut()
            .set_guard(RunGuard::unlimited().with_event_budget(0));
        let progs = AllToAllAlgorithm::DirectExchange.programs(4, 64 * 1024);
        match w.try_run(progs) {
            Err(RunInterrupt::Guard(GuardStop::Budget { budget: 0 })) => {}
            other => panic!("expected a budget stop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "one rank per host")]
    fn duplicate_hosts_rejected() {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(2);
        let sw = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        let cfg = SimConfig::default();
        let sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
        let _ = World::new(
            sim,
            vec![hosts[0], hosts[0]],
            MpiConfig::default(),
            TransportKind::Tcp(TcpConfig::default()),
        );
    }

    #[test]
    fn determinism_same_seed_same_timings() {
        let run_once = || {
            let mut w = star_world(6, MpiConfig::default());
            let progs = AllToAllAlgorithm::DirectExchange.programs(6, 32 * 1024);
            w.run(progs).duration_secs()
        };
        assert_eq!(run_once(), run_once());
    }
}
