//! Per-rank operations with blocking-MPI semantics.

use serde::{Deserialize, Serialize};

/// A rank index within a world.
pub type Rank = usize;

/// One blocking operation in a rank's program.
///
/// A [`Op::Transfer`] posts all its receives, then issues all its sends
/// (each preceded by the sender CPU overhead), and completes when every
/// half has completed — covering `MPI_Send`/`MPI_Recv` (one entry),
/// `MPI_Sendrecv` (one of each) and a post-all + waitall (many of each).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Exchange messages: `sends` are `(destination, payload bytes)`;
    /// `recvs` name expected source ranks.
    Transfer {
        /// Destinations and payload sizes, issued in order.
        sends: Vec<(Rank, u64)>,
        /// Source ranks to receive one message from, matched FIFO per
        /// source.
        recvs: Vec<Rank>,
    },
    /// Synchronize all ranks (idealized zero-cost release at the instant
    /// the last rank arrives).
    Barrier,
}

impl Op {
    /// A blocking send of `bytes` to `to`.
    pub fn send(to: Rank, bytes: u64) -> Self {
        Op::Transfer {
            sends: vec![(to, bytes)],
            recvs: vec![],
        }
    }

    /// A blocking receive from `from`.
    pub fn recv(from: Rank) -> Self {
        Op::Transfer {
            sends: vec![],
            recvs: vec![from],
        }
    }

    /// A sendrecv: send `bytes` to `to` while receiving from `from`.
    pub fn sendrecv(to: Rank, bytes: u64, from: Rank) -> Self {
        Op::Transfer {
            sends: vec![(to, bytes)],
            recvs: vec![from],
        }
    }

    /// Number of sub-completions this operation waits on.
    pub fn pending_parts(&self) -> usize {
        match self {
            Op::Transfer { sends, recvs } => sends.len() + recvs.len(),
            Op::Barrier => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shape_ops() {
        assert_eq!(Op::send(3, 10).pending_parts(), 1);
        assert_eq!(Op::recv(2).pending_parts(), 1);
        assert_eq!(Op::sendrecv(1, 5, 2).pending_parts(), 2);
        assert_eq!(Op::Barrier.pending_parts(), 1);
    }
}
